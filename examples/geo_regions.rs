//! Geographic regions: the paper's §2 motivation, executed.
//!
//! Builds the figure-style staircase region, runs the FO-definable
//! topological operators (interior / closure / boundary), and decides
//! region connectivity — the query Theorem 4.3 proves is *not* linear and
//! Theorem 4.4 places in Datalog¬ — with both back-ends.
//!
//! Run with: `cargo run --example geo_regions`

use dco::geo::connectivity::{component_count, is_connected, is_connected_via_datalog};
use dco::geo::instances::{broken_staircase, staircase};
use dco::geo::region::Region;
use dco::geo::topology::{boundary, closure, interior};
use dco::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The §2 figure: a staircase of rectangles plus isolated points,
    //    all finitely represented with dense-order constraints.
    // ------------------------------------------------------------------
    let fig = Region::paper_figure();
    println!("the paper-figure region:");
    println!("  representation: {} disjuncts", fig.relation().len());
    for (x, y, expect) in [(1, 1, true), (5, 3, true), (1, 5, true), (1, 3, false)] {
        println!(
            "  contains ({x},{y})? {} (expected {expect})",
            fig.contains(x, y)
        );
    }

    // ------------------------------------------------------------------
    // 2. Topology, definable in FO over dense order (§3): interior,
    //    closure, boundary of a closed box — each answer is again a
    //    finitely representable region.
    // ------------------------------------------------------------------
    let b = Region::closed_box(0, 2, 0, 2);
    let int = interior(&b);
    let cl = closure(&Region::open_box(0, 2, 0, 2));
    let bd = boundary(&b);
    println!("\ntopology of [0,2]²:");
    println!(
        "  interior contains (1,1)? {}   (0,1)? {}",
        int.contains(1, 1),
        int.contains(0, 1)
    );
    println!("  closure of (0,2)² contains (0,0)? {}", cl.contains(0, 0));
    println!(
        "  boundary contains (0,1)? {}   (1,1)? {}",
        bd.contains(0, 1),
        bd.contains(1, 1)
    );

    // ------------------------------------------------------------------
    // 3. Region connectivity (Theorem 4.3/4.4): staircases.
    // ------------------------------------------------------------------
    let good = staircase(3);
    let bad = broken_staircase(3, 0);
    println!("\nregion connectivity:");
    println!(
        "  staircase(3): connected? {} (components: {})",
        is_connected(&good),
        component_count(&good)
    );
    println!(
        "  broken_staircase(3, 0): connected? {} (components: {})",
        is_connected(&bad),
        component_count(&bad)
    );
    println!(
        "  Datalog¬ back-end agrees? {} / {}",
        is_connected_via_datalog(&good) == is_connected(&good),
        is_connected_via_datalog(&bad) == is_connected(&bad),
    );

    // ------------------------------------------------------------------
    // 4. A rainfall-style thematic query (the paper's motivating kind):
    //    which x-coordinates of the figure receive the isolated stations?
    // ------------------------------------------------------------------
    let db = Database::new(Schema::new().with("region", 2)).with("region", fig.relation().clone());
    let q = dco::fo::eval_str(&db, "exists y . (region(x, y) & y > 4)").unwrap();
    println!(
        "\nx-coordinates with region points above y = 4: {}",
        q.relation
    );

    println!("\ngeo_regions complete.");
}
