//! The algebra face of the engine: explicit relational-algebra plans and
//! formula normal forms.
//!
//! \[KKR90\]'s closed-form evaluation theorem is algebraic: every operator
//! preserves finite representability. This example drives the plan IR
//! directly (scan/select/project/join/difference), shows the optimizer's
//! selection pushdown, and round-trips a calculus query through NNF and
//! prenex normal form.
//!
//! Run with: `cargo run --example algebra_plans`

use dco::core::algebra::Plan;
use dco::logic::{from_prenex, prenex_rank, to_nnf, to_prenex};
use dco::prelude::*;

fn main() {
    // A small sensor database: readings(station, value), stations(id).
    let readings = GeneralizedRelation::from_raw(
        2,
        vec![
            RawAtom::new(Term::cst(rat(1, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(4, 1))),
            RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)), // value ≥ station id
            RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(20, 1))),
        ],
    );
    let stations = GeneralizedRelation::from_points(
        1,
        vec![vec![rat(1, 1)], vec![rat(3, 1)], vec![rat(9, 1)]],
    );
    let db = Database::new(Schema::new().with("readings", 2).with("stations", 1))
        .with("readings", readings)
        .with("stations", stations);

    // ------------------------------------------------------------------
    // 1. A plan: stations that have a reading above 10.
    //    π_{0}( σ_{value > 10}( readings ⋈_{readings.0 = stations.0} stations ) )
    // ------------------------------------------------------------------
    let plan = Plan::scan("readings")
        .join_on(Plan::scan("stations"), &[(0, 0)])
        .select(RawAtom::new(Term::var(1), RawOp::Gt, Term::cst(rat(10, 1))))
        .project(&[0]);
    let out = plan.execute(&db).unwrap();
    println!("stations with a reading > 10: {out}");
    assert!(out.contains_point(&[rat(3, 1)]));
    assert!(!out.contains_point(&[rat(9, 1)])); // station 9 not in [1,4]

    // ------------------------------------------------------------------
    // 2. The optimizer pushes selections; semantics are preserved.
    // ------------------------------------------------------------------
    let optimized = plan.clone().optimize();
    let out2 = optimized.execute(&db).unwrap();
    println!("optimized plan agrees: {}", out2.equivalent(&out));

    // ------------------------------------------------------------------
    // 3. Normal forms: NNF and prenex of a calculus query, evaluated to
    //    the same relation as the original.
    // ------------------------------------------------------------------
    let f = parse_formula("!(exists v . (readings(s, v) & !(v < 10))) -> stations(s)").unwrap();
    let nnf = to_nnf(&f);
    let (prefix, matrix) = to_prenex(&f);
    let prenex = from_prenex(&prefix, &matrix);
    println!("\noriginal: {f}");
    println!("NNF:      {nnf}");
    println!("prenex:   {prenex}   (rank {})", prenex_rank(&prefix));
    let a = dco::fo::eval(&db, &f).unwrap().relation;
    let b = dco::fo::eval(&db, &nnf).unwrap().relation;
    let c = dco::fo::eval(&db, &prenex).unwrap().relation;
    println!(
        "all three evaluate to the same relation: {}",
        a.equivalent(&b) && b.equivalent(&c)
    );

    println!("\nalgebra_plans complete.");
}
