//! Inexpressibility witnesses (Theorems 4.2 and 4.3) via EF games.
//!
//! For each quantifier rank r, exhibits pairs of structures with opposite
//! connectivity/parity that Duplicator r-round-wins — the finite core of
//! the paper's proofs that these queries are not first-order — while the
//! Datalog¬ engine (Theorem 4.4) distinguishes every pair instantly.
//!
//! Run with: `cargo run --example inexpressibility`

use dco::datalog::programs::is_connected as datalog_connected;
use dco::ef::structure::generators::{cycle, linear_order, two_cycles};
use dco::ef::{ef_equivalent, encode_binary};
use dco::geo::instances::{broken_staircase, staircase};
use dco::geo::is_connected as region_connected;
use dco::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Parity (Theorem 4.2): linear orders of sizes 2^r−1 vs 2^r are
    //    r-round EF-equivalent although their parities differ.
    // ------------------------------------------------------------------
    println!("parity is not FO: rank-r-indistinguishable pairs of opposite parity");
    println!(
        "  {:>4} {:>8} {:>8} {:>14}",
        "rank", "|A|", "|B|", "EF-equivalent?"
    );
    for r in 1..=3usize {
        let n = (1 << r) - 1; // 2^r − 1
        let a = linear_order(n);
        let b = linear_order(n + 1);
        let eq = ef_equivalent(&a, &b, r);
        println!("  {:>4} {:>8} {:>8} {:>14}", r, n, n + 1, eq);
        assert!(eq, "orders of size ≥ 2^r − 1 are r-equivalent");
    }

    // ------------------------------------------------------------------
    // 2. Graph connectivity (Theorem 4.2): a long cycle vs two cycles.
    // ------------------------------------------------------------------
    println!("\ngraph connectivity is not FO: C_n vs C_a ⊎ C_b");
    println!(
        "  {:>4} {:>12} {:>14} {:>10} {:>10}",
        "rank", "connected", "disconnected", "EF-equiv?", "Datalog¬"
    );
    for (r, n, a, b) in [(2usize, 7usize, 3usize, 4usize), (2, 10, 5, 5)] {
        let one = cycle(n);
        let two = two_cycles(a, b);
        let eq = ef_equivalent(&one, &two, r);
        // Datalog¬ tells them apart (vertices 0..n as rational points):
        let verts = |k: usize| {
            GeneralizedRelation::from_points(
                1,
                (0..k).map(|i| vec![rat(i as i128, 1)]).collect::<Vec<_>>(),
            )
        };
        let edges = |s: &dco::ef::FinStructure| {
            GeneralizedRelation::from_points(
                2,
                s.tuples("e")
                    .unwrap()
                    .iter()
                    .map(|t| vec![rat(t[0] as i128, 1), rat(t[1] as i128, 1)])
                    .collect::<Vec<_>>(),
            )
        };
        let c1 = datalog_connected(&verts(n), &edges(&one)).unwrap();
        let c2 = datalog_connected(&verts(a + b), &edges(&two)).unwrap();
        println!(
            "  {:>4} {:>12} {:>14} {:>10} {:>10}",
            r,
            format!("C{n}"),
            format!("C{a}+C{b}"),
            eq,
            format!("{c1}/{c2}")
        );
        assert!(eq && c1 && !c2);
    }

    // ------------------------------------------------------------------
    // 3. Region connectivity (Theorem 4.3): staircases vs broken
    //    staircases, through the finite slot encoding of §3.
    // ------------------------------------------------------------------
    println!("\nregion connectivity is not linear: staircase(n) vs broken_staircase(n)");
    println!(
        "  {:>4} {:>6} {:>12} {:>10}",
        "rank", "steps", "EF-equiv?", "engine"
    );
    for (r, n) in [(1usize, 4usize), (2, 8)] {
        let good = staircase(n);
        let bad = broken_staircase(n, n / 2 - 1);
        let eg = encode_binary(good.relation()).expect("staircases are boxy");
        let eb = encode_binary(bad.relation()).expect("staircases are boxy");
        let eq = ef_equivalent(&eg, &eb, r);
        let (cg, cb) = (region_connected(&good), region_connected(&bad));
        println!(
            "  {:>4} {:>6} {:>12} {:>10}",
            r,
            n,
            eq,
            format!("{cg}/{cb}")
        );
        assert!(cg && !cb);
    }

    println!("\ninexpressibility complete.");
}
