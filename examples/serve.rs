//! Serve: a durable constraint database behind a TCP query server.
//!
//! Opens a store on disk, loads the paper's triangle example, serves it
//! over loopback TCP, and queries it from a second thread — the whole
//! client/server round trip in one process. Every write is WAL-logged
//! and fsynced before it is acknowledged, so killing this process at any
//! instant loses at most the unacknowledged operation; reopening the
//! store replays the log over the latest snapshot.
//!
//! Run with: `cargo run --example serve`

use dco::prelude::*;
use dco::store::{serve, Client, Store, StoreOptions};

fn main() {
    let dir = std::env::temp_dir().join(format!("dco-serve-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ------------------------------------------------------------------
    // 1. Open (create) the store and load the triangle relation. Each
    //    call is one WAL entry; the returned seq is the generation.
    // ------------------------------------------------------------------
    let store = Store::open(&dir, StoreOptions::default()).expect("open store");
    store.create("R", 2).expect("create R");
    let triangle = GeneralizedRelation::from_raw(
        2,
        vec![
            RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
            RawAtom::new(Term::var(0), RawOp::Ge, Term::cst(rat(0, 1))),
            RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
        ],
    );
    let seq = store.insert("R", triangle).expect("insert triangle");
    println!("loaded triangle as R at generation {seq}");

    // ------------------------------------------------------------------
    // 2. Serve it. Port 0 picks an ephemeral port; the handle reports
    //    the bound address.
    // ------------------------------------------------------------------
    let handle = serve(store.clone(), "127.0.0.1:0").expect("bind server");
    let addr = handle.addr();
    println!("serving on {addr}");

    // ------------------------------------------------------------------
    // 3. Query from a second thread over TCP. The same formula twice:
    //    the first evaluation is cold, the second is answered by the
    //    prepared-query cache (same fingerprint, same generation).
    // ------------------------------------------------------------------
    let client_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.ping().expect("ping");
        for round in 1..=2 {
            let out = client.query("exists y . (R(x, y) & x < y)").expect("query");
            println!(
                "round {round}: generation {}, columns {:?}, cached: {}",
                out.generation, out.columns, out.cached
            );
            println!("  answer: {}", out.relation);
        }
        println!("server stats: {}", client.stats().expect("stats"));
        client.close().expect("close");
    });
    client_thread.join().expect("client thread");

    // ------------------------------------------------------------------
    // 4. Shut down, snapshot, and prove recovery: reopen and check the
    //    catalog survived.
    // ------------------------------------------------------------------
    handle.shutdown();
    let bytes = store.snapshot().expect("snapshot");
    println!("snapshot written: {bytes} bytes (standard-encoding size of the catalog)");
    drop(store);

    let reopened = Store::open(&dir, StoreOptions::default()).expect("reopen");
    let generation = reopened.read();
    println!(
        "reopened at generation {} with {} relation(s); R = {}",
        generation.seq,
        generation.db.schema().relations().count(),
        generation.db.get("R").expect("R survived")
    );
    let _ = std::fs::remove_dir_all(&dir);
}
