//! Quickstart: finitely representable databases and first-order queries.
//!
//! Reproduces the flavor of §2–§4 of *Dense-Order Constraint Databases*
//! (Grumbach & Su, PODS 1995) end to end: build an infinite database from
//! constraints, query it with FO, watch closure and genericity in action.
//!
//! Run with: `cargo run --example quickstart`

use dco::fo::{check_generic, eval_str, GenericityOutcome};
use dco::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. A generalized relation: the paper's triangle x ≤ y ∧ x ≥ 0 ∧ y ≤ 10
    //    — one "generalized tuple" denoting infinitely many points of Q².
    // ------------------------------------------------------------------
    let triangle = GeneralizedRelation::from_raw(
        2,
        vec![
            RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
            RawAtom::new(Term::var(0), RawOp::Ge, Term::cst(rat(0, 1))),
            RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
        ],
    );
    println!("R = {triangle}");
    println!(
        "  contains (1, 2)?    {}",
        triangle.contains_point(&[rat(1, 1), rat(2, 1)])
    );
    println!(
        "  contains (2, 1)?    {}",
        triangle.contains_point(&[rat(2, 1), rat(1, 1)])
    );
    println!("  a witness point:    {:?}", triangle.witness().unwrap());

    let db = Database::new(Schema::new().with("R", 2)).with("R", triangle);

    // ------------------------------------------------------------------
    // 2. FO queries, evaluated bottom-up in closed form [KKR90]: the answer
    //    is again a finitely representable relation.
    // ------------------------------------------------------------------
    for (desc, src) in [
        ("shadow of R on the x axis", "exists y . R(x, y)"),
        ("strict part of the shadow", "exists y . (R(x, y) & x < y)"),
        (
            "points whose whole R-row is above 5",
            "forall y . (R(x, y) -> y >= 5)",
        ),
    ] {
        let q = eval_str(&db, src).unwrap();
        println!("\n  {desc}:\n    {src}\n    = {}", q.relation);
    }

    // Boolean sentences (arity-0 answers):
    let dense = eval_str(
        &db,
        "forall x y . ((R(x, x) & R(y, y) & x < y) -> exists z . (x < z & z < y))",
    )
    .unwrap();
    println!("\n  density sentence holds? {:?}", dense.as_bool());

    // ------------------------------------------------------------------
    // 3. Genericity (Definition 3.1): queries commute with every order
    //    automorphism of Q. The harness samples random piecewise-linear
    //    automorphisms and verifies Q(π(D)) = π(Q(D)).
    // ------------------------------------------------------------------
    let f = parse_formula("exists y . (R(x, y) & x < y)").unwrap();
    let outcome = check_generic(&db, 8, 42, |d| dco::fo::eval(d, &f).unwrap().relation);
    println!("\n  genericity check over 8 random automorphisms: {outcome:?}");
    assert_eq!(outcome, GenericityOutcome::Generic);

    // ------------------------------------------------------------------
    // 4. Closure feeding composition: use an answer as the next input.
    // ------------------------------------------------------------------
    let shadow = eval_str(&db, "exists y . R(x, y)")
        .unwrap()
        .relation
        .narrow(1);
    let db2 = Database::new(Schema::new().with("S", 1)).with("S", shadow);
    let filtered = eval_str(&db2, "S(x) & x > 5").unwrap();
    println!(
        "\n  composed query over the previous answer: {}",
        filtered.relation
    );

    println!("\nquickstart complete.");
}
