//! Recursion over infinite relations: inflationary Datalog¬ (Theorem 4.4).
//!
//! Runs transitive closure over a *finite* graph and over an *infinite*
//! dense edge relation, shows the inflationary-negation semantics, and the
//! order-based parity computation — all queries FO cannot express but
//! Datalog¬ (= PTIME, Theorem 4.4) can.
//!
//! Run with: `cargo run --example datalog_reachability`

use dco::datalog::programs::{cardinality_is_even, is_connected};
use dco::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Transitive closure of a finite path graph.
    // ------------------------------------------------------------------
    let program = parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .unwrap();
    let edges = GeneralizedRelation::from_points(
        2,
        (1..6)
            .map(|i| vec![rat(i, 1), rat(i + 1, 1)])
            .collect::<Vec<_>>(),
    );
    let db = Database::new(Schema::new().with("e", 2)).with("e", edges);
    let fix = run_datalog(&program, &db).unwrap();
    println!("transitive closure of the 6-vertex path:");
    println!("  stages to fixpoint: {}", fix.stats.stages);
    println!("  body evaluations:   {}", fix.stats.body_evals);
    let tc = fix.database.get("tc").unwrap();
    println!(
        "  (1 → 6) derived? {}",
        tc.contains_point(&[rat(1, 1), rat(6, 1)])
    );
    println!(
        "  (6 → 1) derived? {}",
        tc.contains_point(&[rat(6, 1), rat(1, 1)])
    );

    // ------------------------------------------------------------------
    // 2. The same program over an INFINITE edge relation: e = the dense
    //    strip { (x, y) | 0 ≤ x < y ≤ x + 1 ≤ 10 }... here the simpler
    //    upper-triangle; the fixpoint is reached in closed form, on the
    //    finite representation — no enumeration of points.
    // ------------------------------------------------------------------
    let dense_edges = GeneralizedRelation::from_raw(
        2,
        vec![
            RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1)),
            RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
        ],
    );
    let db = Database::new(Schema::new().with("e", 2)).with("e", dense_edges.clone());
    let fix = run_datalog(&program, &db).unwrap();
    let tc = fix.database.get("tc").unwrap();
    println!("\ntransitive closure of an infinite dense relation:");
    println!(
        "  converged in {} stages; closed form: {}",
        fix.stats.stages, tc
    );
    println!(
        "  equals the input (already transitive)? {}",
        tc.equivalent(&dense_edges)
    );

    // ------------------------------------------------------------------
    // 3. Graph connectivity — not FO (Theorem 4.2), easily Datalog¬.
    // ------------------------------------------------------------------
    let v =
        GeneralizedRelation::from_points(1, (1..=6).map(|i| vec![rat(i, 1)]).collect::<Vec<_>>());
    let path_edges = GeneralizedRelation::from_points(
        2,
        (1..6)
            .map(|i| vec![rat(i, 1), rat(i + 1, 1)])
            .collect::<Vec<_>>(),
    );
    let two_comp = GeneralizedRelation::from_points(
        2,
        vec![
            vec![rat(1, 1), rat(2, 1)],
            vec![rat(2, 1), rat(3, 1)],
            vec![rat(4, 1), rat(5, 1)],
            vec![rat(5, 1), rat(6, 1)],
        ],
    );
    println!("\ngraph connectivity via Datalog¬:");
    println!(
        "  path graph connected?        {}",
        is_connected(&v, &path_edges).unwrap()
    );
    println!(
        "  two-component graph?         {}",
        is_connected(&v, &two_comp).unwrap()
    );

    // ------------------------------------------------------------------
    // 4. Parity via the dense order — the other Theorem 4.2 query.
    // ------------------------------------------------------------------
    println!("\nparity of finite sets via order-successor chains:");
    for n in 1..=6 {
        let s = GeneralizedRelation::from_points(
            1,
            (0..n).map(|i| vec![rat(i * 7 - 3, 2)]).collect::<Vec<_>>(),
        );
        println!("  |S| = {n}: even? {}", cardinality_is_even(&s).unwrap());
    }

    println!("\ndatalog_reachability complete.");
}
