//! Complex constraint objects and C-CALC (§5).
//!
//! Demonstrates the active-domain semantics: set variables range over
//! finitely many c-objects built from the input's cells. Shows the
//! Theorem 5.2 lower-bound construction (PTIME reachability with one set
//! variable) and the hyper-exponential active-domain growth behind the
//! set-height hierarchy (Theorems 5.3–5.5).
//!
//! Run with: `cargo run --example complex_objects`

use dco::complex::{CCalc, CFormula, RatTerm, SetRef};
use dco::prelude::*;

/// reach(a, b) := ∀S [ a ∈ S ∧ ∀u∀v (u ∈ S ∧ e(u,v) → v ∈ S) → b ∈ S ]
fn reach(a: i64, b: i64) -> CFormula {
    use CFormula as F;
    let closed = F::ForallRat(
        "u".into(),
        Box::new(F::ForallRat(
            "v".into(),
            Box::new(CFormula::implies(
                F::And(vec![
                    F::MemTuple(vec![RatTerm::var("u")], SetRef::Var("S".into())),
                    F::Pred("e".into(), vec![RatTerm::var("u"), RatTerm::var("v")]),
                ]),
                F::MemTuple(vec![RatTerm::var("v")], SetRef::Var("S".into())),
            )),
        )),
    );
    F::ForallSet(
        "S".into(),
        1,
        Box::new(CFormula::implies(
            F::And(vec![
                F::MemTuple(
                    vec![RatTerm::cst(rat(a as i128, 1))],
                    SetRef::Var("S".into()),
                ),
                closed,
            ]),
            F::MemTuple(
                vec![RatTerm::cst(rat(b as i128, 1))],
                SetRef::Var("S".into()),
            ),
        )),
    )
}

fn main() {
    // ------------------------------------------------------------------
    // 1. A finite graph as a constraint database.
    // ------------------------------------------------------------------
    let e = GeneralizedRelation::from_points(
        2,
        vec![
            vec![rat(1, 1), rat(2, 1)],
            vec![rat(2, 1), rat(3, 1)],
            vec![rat(5, 1), rat(4, 1)],
        ],
    );
    let db = Database::new(Schema::new().with("e", 2)).with("e", e);

    // ------------------------------------------------------------------
    // 2. Reachability in C-CALC₁: a PTIME query expressed with one level
    //    of set nesting (Theorem 5.2, lower bound). Note the evaluation
    //    cost — every union of 1-cells is enumerated.
    // ------------------------------------------------------------------
    let mut ev = CCalc::new(&db);
    println!("C-CALC₁ reachability over the graph 1→2→3, 5→4:");
    for (a, b) in [(1, 3), (1, 2), (3, 1), (5, 4), (1, 4)] {
        let f = reach(a, b);
        println!(
            "  reach({a}, {b})  [set-height {}] = {}",
            f.set_height(),
            ev.eval_sentence(&f).unwrap()
        );
    }
    println!(
        "  enumerated {} set candidates, {} rational samples",
        ev.stats().set_candidates,
        ev.stats().rat_samples
    );

    // ------------------------------------------------------------------
    // 3. Set terms: {x | ∃y e(x,y)} — a c-object output.
    // ------------------------------------------------------------------
    use CFormula as F;
    let body = F::ExistsRat(
        "y".into(),
        Box::new(F::Pred(
            "e".into(),
            vec![RatTerm::var("x"), RatTerm::var("y")],
        )),
    );
    let domain = ev.eval_set_term(&["x".to_string()], &body).unwrap();
    println!("\nset term {{x | ∃y e(x,y)}} = {domain}");

    // ------------------------------------------------------------------
    // 4. The hierarchy, measured: cells(k), 2^cells (height 1),
    //    2^2^cells (height 2) for growing constant counts.
    // ------------------------------------------------------------------
    println!("\nactive-domain sizes (the H_i hierarchy of Theorems 5.3-5.5):");
    println!(
        "  {:>10} {:>8} {:>14} {:>20}",
        "#constants", "1-cells", "height-1 dom", "height-2 dom (log2)"
    );
    for m in 1..=5u32 {
        let pts = GeneralizedRelation::from_points(
            1,
            (0..m).map(|i| vec![rat(i as i128, 1)]).collect::<Vec<_>>(),
        );
        let db = Database::new(Schema::new().with("s", 1)).with("s", pts);
        let ev = CCalc::new(&db);
        let c = ev.cells(1);
        println!(
            "  {:>10} {:>8} {:>14} {:>20}",
            m,
            c,
            format!("2^{c}"),
            format!("2^(2^{c})")
        );
    }

    // ------------------------------------------------------------------
    // 5. C-CALC + fixpoint (Theorem 5.6): the same reachability computed
    //    by the inflationary fixpoint construct — polynomially many stages
    //    instead of enumerating all set candidates.
    // ------------------------------------------------------------------
    let fix_body = F::Or(vec![
        F::Compare(RatTerm::var("x"), RawOp::Eq, RatTerm::cst(rat(1, 1))),
        F::ExistsRat(
            "u".into(),
            Box::new(F::And(vec![
                F::MemTuple(vec![RatTerm::var("u")], SetRef::Var("S".into())),
                F::Pred("e".into(), vec![RatTerm::var("u"), RatTerm::var("x")]),
            ])),
        ),
    ]);
    let reach_fix = ev
        .eval_fixpoint("S", &["x".to_string()], &fix_body)
        .unwrap();
    println!("\nfix S. {{x | x=1 ∨ ∃u (u∈S ∧ e(u,x))}} = {reach_fix}");

    println!("\ncomplex_objects complete.");
}
