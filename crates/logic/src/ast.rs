//! Abstract syntax for first-order constraint queries.
//!
//! One AST serves both query languages of Section 4:
//!
//! * **FO** — first-order logic over `{=, ≤} ∪ Q`: atoms compare two terms,
//!   each a variable or a rational constant;
//! * **FO+** — FO with a built-in addition: atoms compare *linear
//!   expressions* `Σ aᵢ·xᵢ + c`.
//!
//! Dense-order atoms are exactly the linear atoms whose sides are "simple"
//! (one variable with coefficient 1, or a constant); [`Formula::is_dense_order`]
//! checks the syntactic restriction, and the FO evaluator rejects formulas
//! outside it. Predicates refer to database relations by name.

use dco_core::prelude::{Rational, RawOp};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A linear expression `Σ coeffs[v]·v + constant` over named variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LinExpr {
    /// Per-variable coefficients; zero coefficients are not stored.
    pub coeffs: BTreeMap<String, Rational>,
    /// The constant term.
    pub constant: Rational,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: Rational::ZERO,
        }
    }

    /// A lone variable.
    pub fn var(name: &str) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.to_string(), Rational::ONE);
        LinExpr {
            coeffs,
            constant: Rational::ZERO,
        }
    }

    /// A constant expression.
    pub fn cst(c: impl Into<Rational>) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: c.into(),
        }
    }

    /// Add two expressions.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for (v, c) in &other.coeffs {
            let entry = out.coeffs.entry(v.clone()).or_insert(Rational::ZERO);
            *entry = &*entry + c;
        }
        out.coeffs.retain(|_, c| !c.is_zero());
        out.constant = out.constant + other.constant;
        out
    }

    /// Subtract.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(&Rational::from_int(-1)))
    }

    /// Scale by a rational.
    pub fn scale(&self, s: &Rational) -> LinExpr {
        if s.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|(v, c)| (v.clone(), c * s))
                .collect(),
            constant: &self.constant * s,
        }
    }

    /// If the expression is a single variable with coefficient 1 (and no
    /// constant), its name.
    pub fn as_simple_var(&self) -> Option<&str> {
        if self.constant.is_zero() && self.coeffs.len() == 1 {
            let (v, c) = self.coeffs.iter().next().unwrap();
            if *c == Rational::ONE {
                return Some(v);
            }
        }
        None
    }

    /// If the expression is a constant, its value.
    pub fn as_const(&self) -> Option<Rational> {
        if self.coeffs.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Whether the expression is "simple": a bare variable or a constant —
    /// the dense-order fragment.
    pub fn is_simple(&self) -> bool {
        self.as_simple_var().is_some() || self.as_const().is_some()
    }

    /// Variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.coeffs.keys().map(|s| s.as_str())
    }

    /// Rename a variable (capture-free at this level).
    pub fn rename_var(&self, from: &str, to: &str) -> LinExpr {
        if !self.coeffs.contains_key(from) {
            return self.clone();
        }
        let mut out = self.clone();
        let c = out.coeffs.remove(from).expect("checked above");
        let entry = out.coeffs.entry(to.to_string()).or_insert(Rational::ZERO);
        *entry = *entry + c;
        if entry.is_zero() {
            out.coeffs.remove(to);
        }
        out
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if first {
                if *c == Rational::ONE {
                    write!(f, "{v}")?;
                } else if *c == Rational::from_int(-1) {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}*{v}")?;
                }
                first = false;
            } else if c.is_negative() {
                let a = c.abs();
                if a == Rational::ONE {
                    write!(f, " - {v}")?;
                } else {
                    write!(f, " - {a}*{v}")?;
                }
            } else if *c == Rational::ONE {
                write!(f, " + {v}")?;
            } else {
                write!(f, " + {c}*{v}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant.is_positive() {
            write!(f, " + {}", self.constant)?;
        } else if self.constant.is_negative() {
            write!(f, " - {}", self.constant.abs())?;
        }
        Ok(())
    }
}

/// An argument of a predicate: a variable or a constant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ArgTerm {
    /// A named variable.
    Var(String),
    /// A rational constant.
    Const(Rational),
}

impl fmt::Display for ArgTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgTerm::Var(v) => write!(f, "{v}"),
            ArgTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A first-order formula over constraint atoms and database predicates.
#[derive(Clone, PartialEq, Debug)]
pub enum Formula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// A comparison of two linear expressions.
    Compare(LinExpr, RawOp, LinExpr),
    /// A database predicate `R(t₁, …, t_k)`.
    Pred(String, Vec<ArgTerm>),
    /// Negation.
    Not(Box<Formula>),
    /// n-ary conjunction.
    And(Vec<Formula>),
    /// n-ary disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Bi-implication.
    Iff(Box<Formula>, Box<Formula>),
    /// Existential quantification over a block of variables.
    Exists(Vec<String>, Box<Formula>),
    /// Universal quantification over a block of variables.
    Forall(Vec<String>, Box<Formula>),
}

impl Formula {
    /// Convenience: binary conjunction.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(vec![a, b])
    }

    /// Convenience: binary disjunction.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(vec![a, b])
    }

    /// Convenience: negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Formula) -> Formula {
        Formula::Not(Box::new(a))
    }

    /// Convenience: `∃x. φ`.
    pub fn exists(vars: &[&str], body: Formula) -> Formula {
        Formula::Exists(vars.iter().map(|s| s.to_string()).collect(), Box::new(body))
    }

    /// Convenience: `∀x. φ`.
    pub fn forall(vars: &[&str], body: Formula) -> Formula {
        Formula::Forall(vars.iter().map(|s| s.to_string()).collect(), Box::new(body))
    }

    /// Convenience: a dense-order comparison of two variables.
    pub fn cmp_vars(a: &str, op: RawOp, b: &str) -> Formula {
        Formula::Compare(LinExpr::var(a), op, LinExpr::var(b))
    }

    /// Convenience: compare a variable with a constant.
    pub fn cmp_const(a: &str, op: RawOp, c: impl Into<Rational>) -> Formula {
        Formula::Compare(LinExpr::var(a), op, LinExpr::cst(c))
    }

    /// Convenience: predicate over variables.
    pub fn pred(name: &str, vars: &[&str]) -> Formula {
        Formula::Pred(
            name.to_string(),
            vars.iter().map(|v| ArgTerm::Var(v.to_string())).collect(),
        )
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut BTreeSet<String>, out: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Compare(l, _, r) => {
                for v in l.vars().chain(r.vars()) {
                    if !bound.contains(v) {
                        out.insert(v.to_string());
                    }
                }
            }
            Formula::Pred(_, args) => {
                for a in args {
                    if let ArgTerm::Var(v) = a {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => {
                let added: Vec<String> = vs
                    .iter()
                    .filter(|v| bound.insert((*v).clone()))
                    .cloned()
                    .collect();
                f.collect_free(bound, out);
                for v in added {
                    bound.remove(&v);
                }
            }
        }
    }

    /// All predicate names used, with the arities they are used at.
    pub fn predicates(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        self.walk(&mut |f| {
            if let Formula::Pred(name, args) = f {
                out.insert(name.clone(), args.len());
            }
        });
        out
    }

    /// Visit every subformula (preorder).
    pub fn walk(&self, visit: &mut impl FnMut(&Formula)) {
        visit(self);
        match self {
            Formula::True | Formula::False | Formula::Compare(..) | Formula::Pred(..) => {}
            Formula::Not(f) => f.walk(visit),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.walk(visit);
                }
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.walk(visit),
        }
    }

    /// Is the formula in the dense-order fragment (every comparison between
    /// simple terms — no genuine addition or scaling)?
    pub fn is_dense_order(&self) -> bool {
        let mut ok = true;
        self.walk(&mut |f| {
            if let Formula::Compare(l, _, r) = f {
                if !(l.is_simple() && r.is_simple()) {
                    ok = false;
                }
            }
        });
        ok
    }

    /// Quantifier rank (maximum nesting depth of quantifier blocks, counting
    /// each variable in a block — the measure EF games bound).
    pub fn quantifier_rank(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Compare(..) | Formula::Pred(..) => 0,
            Formula::Not(f) => f.quantifier_rank(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(|f| f.quantifier_rank()).max().unwrap_or(0)
            }
            Formula::Implies(a, b) | Formula::Iff(a, b) => {
                a.quantifier_rank().max(b.quantifier_rank())
            }
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => vs.len() + f.quantifier_rank(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Compare(l, op, r) => write!(f, "{l} {op} {r}"),
            Formula::Pred(name, args) => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{name}({})", parts.join(", "))
            }
            Formula::Not(x) => write!(f, "!({x})"),
            Formula::And(fs) => {
                let parts: Vec<String> = fs.iter().map(|x| format!("({x})")).collect();
                write!(f, "{}", parts.join(" & "))
            }
            Formula::Or(fs) => {
                let parts: Vec<String> = fs.iter().map(|x| format!("({x})")).collect();
                write!(f, "{}", parts.join(" | "))
            }
            Formula::Implies(a, b) => write!(f, "({a}) -> ({b})"),
            Formula::Iff(a, b) => write!(f, "({a}) <-> ({b})"),
            Formula::Exists(vs, x) => write!(f, "exists {} . ({x})", vs.join(" ")),
            Formula::Forall(vs, x) => write!(f, "forall {} . ({x})", vs.join(" ")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_core::prelude::rat;

    #[test]
    fn linexpr_arithmetic() {
        let e = LinExpr::var("x").add(&LinExpr::var("y").scale(&rat(2, 1)));
        assert_eq!(e.coeffs.len(), 2);
        let e2 = e.sub(&LinExpr::var("x"));
        assert_eq!(e2.coeffs.len(), 1);
        assert_eq!(e2.coeffs["y"], rat(2, 1));
        // cancel everything
        let z = e2.sub(&LinExpr::var("y").scale(&rat(2, 1)));
        assert!(z.coeffs.is_empty());
        assert_eq!(z.as_const(), Some(Rational::ZERO));
    }

    #[test]
    fn simple_detection() {
        assert!(LinExpr::var("x").is_simple());
        assert!(LinExpr::cst(rat(5, 2)).is_simple());
        assert!(!LinExpr::var("x").scale(&rat(2, 1)).is_simple());
        assert!(!LinExpr::var("x").add(&LinExpr::cst(rat(1, 1))).is_simple());
    }

    #[test]
    fn free_vars_respect_binding() {
        // exists y. (R(x, y) & x < y)  — free: {x}
        let f = Formula::exists(
            &["y"],
            Formula::and(
                Formula::pred("R", &["x", "y"]),
                Formula::cmp_vars("x", RawOp::Lt, "y"),
            ),
        );
        let fv = f.free_vars();
        assert_eq!(fv.into_iter().collect::<Vec<_>>(), vec!["x".to_string()]);
    }

    #[test]
    fn shadowing() {
        // x free in outer compare, bound in inner exists
        let f = Formula::and(
            Formula::cmp_const("x", RawOp::Lt, rat(1, 1)),
            Formula::exists(&["x"], Formula::cmp_const("x", RawOp::Gt, rat(5, 1))),
        );
        assert_eq!(f.free_vars().len(), 1);
    }

    #[test]
    fn quantifier_rank_counts_block_vars() {
        let f = Formula::exists(
            &["a", "b"],
            Formula::forall(&["c"], Formula::cmp_vars("a", RawOp::Lt, "c")),
        );
        assert_eq!(f.quantifier_rank(), 3);
    }

    #[test]
    fn dense_order_fragment() {
        let f = Formula::cmp_vars("x", RawOp::Le, "y");
        assert!(f.is_dense_order());
        let g = Formula::Compare(
            LinExpr::var("x").add(&LinExpr::var("y")),
            RawOp::Eq,
            LinExpr::cst(rat(1, 1)),
        );
        assert!(!g.is_dense_order());
    }

    #[test]
    fn predicates_collected() {
        let f = Formula::and(Formula::pred("R", &["x", "y"]), Formula::pred("S", &["z"]));
        let ps = f.predicates();
        assert_eq!(ps["R"], 2);
        assert_eq!(ps["S"], 1);
    }

    #[test]
    fn display_readable() {
        let f = Formula::exists(
            &["y"],
            Formula::and(
                Formula::pred("R", &["x", "y"]),
                Formula::cmp_vars("x", RawOp::Lt, "y"),
            ),
        );
        let s = f.to_string();
        assert!(s.contains("exists y"));
        assert!(s.contains("R(x, y)"));
        assert!(s.contains("x < y"));
    }

    #[test]
    fn rename_var_merges_coefficients() {
        let e = LinExpr::var("x").add(&LinExpr::var("y"));
        let r = e.rename_var("x", "y");
        assert_eq!(r.coeffs["y"], rat(2, 1));
        let r2 = LinExpr::var("x")
            .sub(&LinExpr::var("y"))
            .rename_var("x", "y");
        assert!(r2.coeffs.is_empty());
    }
}
