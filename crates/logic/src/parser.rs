//! A recursive-descent parser for the textual query syntax.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! formula  := iff
//! iff      := implies ( '<->' implies )*
//! implies  := or ( '->' implies )?            (right associative)
//! or       := and ( ('|' | 'or') and )*
//! and      := unary ( ('&' | 'and') unary )*
//! unary    := ('!' | 'not') unary
//!           | ('exists' | 'E') ident+ '.' unary
//!           | ('forall' | 'A') ident+ '.' unary
//!           | primary
//! primary  := '(' formula ')' | 'true' | 'false'
//!           | ident '(' args ')'              (predicate)
//!           | linexpr cmp linexpr             (comparison)
//! linexpr  := ['-'] term ( ('+' | '-') term )*
//! term     := number '*' ident | number | ident
//! number   := integer | integer '/' integer | decimal
//! cmp      := '<' | '<=' | '=' | '!=' | '<>' | '>=' | '>'
//! ```
//!
//! Examples accepted:
//!
//! ```text
//! exists y . (R(x, y) & x < y)
//! forall u v . (S(u) -> u <= v)
//! 2*x + 3 <= y - 1/2            (FO+ only)
//! R(x, 5) & !(x = 1/3)
//! ```

use crate::ast::{ArgTerm, Formula, LinExpr};
use dco_core::prelude::{rat, Rational, RawOp};
use std::fmt;

/// A parse error with a byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(Rational),
    LParen,
    RParen,
    Comma,
    Dot,
    Amp,
    Pipe,
    Bang,
    Star,
    Plus,
    Minus,
    Arrow,  // ->
    DArrow, // <->
    Lt,
    Le,
    Eq,
    Ne,
    Ge,
    Gt,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: msg.into(),
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Tok)>, ParseError> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let b = self.src[self.pos];
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'(' => {
                    self.pos += 1;
                    out.push((start, Tok::LParen));
                }
                b')' => {
                    self.pos += 1;
                    out.push((start, Tok::RParen));
                }
                b',' => {
                    self.pos += 1;
                    out.push((start, Tok::Comma));
                }
                b'.' => {
                    self.pos += 1;
                    out.push((start, Tok::Dot));
                }
                b'&' => {
                    self.pos += 1;
                    out.push((start, Tok::Amp));
                }
                b'|' => {
                    self.pos += 1;
                    out.push((start, Tok::Pipe));
                }
                b'*' => {
                    self.pos += 1;
                    out.push((start, Tok::Star));
                }
                b'+' => {
                    self.pos += 1;
                    out.push((start, Tok::Plus));
                }
                b'!' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        out.push((start, Tok::Ne));
                    } else {
                        out.push((start, Tok::Bang));
                    }
                }
                b'-' => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        out.push((start, Tok::Arrow));
                    } else {
                        out.push((start, Tok::Minus));
                    }
                }
                b'<' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'=') => {
                            self.pos += 1;
                            out.push((start, Tok::Le));
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            out.push((start, Tok::Ne));
                        }
                        Some(b'-') if self.peek2() == Some(b'>') => {
                            self.pos += 2;
                            out.push((start, Tok::DArrow));
                        }
                        _ => out.push((start, Tok::Lt)),
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        out.push((start, Tok::Ge));
                    } else {
                        out.push((start, Tok::Gt));
                    }
                }
                b'=' => {
                    self.pos += 1;
                    out.push((start, Tok::Eq));
                }
                b'0'..=b'9' => {
                    let n = self.lex_number()?;
                    out.push((start, Tok::Number(n)));
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let id = self.lex_ident();
                    out.push((start, Tok::Ident(id)));
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)))
                }
            }
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn lex_int(&mut self) -> Result<i128, ParseError> {
        let start = self.pos;
        while self.peek().map(|b| b.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.error("non-UTF-8 bytes in number"))?
            .parse()
            .map_err(|_| self.error("integer literal overflows"))
    }

    fn lex_number(&mut self) -> Result<Rational, ParseError> {
        let int = self.lex_int()?;
        match self.peek() {
            Some(b'/') if self.peek2().map(|b| b.is_ascii_digit()).unwrap_or(false) => {
                self.pos += 1;
                let den = self.lex_int()?;
                Rational::new(int, den).map_err(|e| self.error(e.to_string()))
            }
            Some(b'.') if self.peek2().map(|b| b.is_ascii_digit()).unwrap_or(false) => {
                self.pos += 1;
                let start = self.pos;
                let frac = self.lex_int()?;
                let digits = (self.pos - start) as u32;
                let scale = 10i128
                    .checked_pow(digits)
                    .ok_or_else(|| self.error("decimal literal too long"))?;
                let num = int
                    .checked_mul(scale)
                    .and_then(|w| w.checked_add(frac))
                    .ok_or_else(|| self.error("decimal literal overflows"))?;
                Rational::new(num, scale).map_err(|e| self.error(e.to_string()))
            }
            _ => Ok(rat(int, 1)),
        }
    }

    fn lex_ident(&mut self) -> String {
        let start = self.pos;
        while self
            .peek()
            .map(|b| b.is_ascii_alphanumeric() || b == b'_')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        // Only ASCII alphanumerics and '_' were consumed, so this cannot
        // produce invalid UTF-8; substitute rather than panic regardless.
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

/// Parse a formula from the textual syntax.
pub fn parse_formula(src: &str) -> Result<Formula, ParseError> {
    let tokens = Lexer::new(src).tokens()?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end: src.len(),
    };
    let f = p.formula()?;
    if p.pos != p.tokens.len() {
        return Err(p.error("trailing input after formula"));
    }
    Ok(f)
}

struct Parser {
    tokens: Vec<(usize, Tok)>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn error(&self, msg: impl Into<String>) -> ParseError {
        let position = self
            .tokens
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(self.end);
        ParseError {
            position,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        self.iff()
    }

    fn iff(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.implies()?;
        while self.peek() == Some(&Tok::DArrow) {
            self.pos += 1;
            let rhs = self.implies()?;
            lhs = Formula::Iff(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        if self.peek() == Some(&Tok::Arrow) {
            self.pos += 1;
            let rhs = self.implies()?; // right associative
            Ok(Formula::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.and()?];
        loop {
            match self.peek() {
                Some(Tok::Pipe) => {
                    self.pos += 1;
                }
                Some(Tok::Ident(s)) if s == "or" => {
                    self.pos += 1;
                }
                _ => break,
            }
            parts.push(self.and()?);
        }
        Ok(match (parts.pop(), parts.is_empty()) {
            (Some(only), true) => only,
            (Some(last), false) => {
                parts.push(last);
                Formula::Or(parts)
            }
            (None, _) => Formula::False,
        })
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary()?];
        loop {
            match self.peek() {
                Some(Tok::Amp) => {
                    self.pos += 1;
                }
                Some(Tok::Ident(s)) if s == "and" => {
                    self.pos += 1;
                }
                _ => break,
            }
            parts.push(self.unary()?);
        }
        Ok(match (parts.pop(), parts.is_empty()) {
            (Some(only), true) => only,
            (Some(last), false) => {
                parts.push(last);
                Formula::And(parts)
            }
            (None, _) => Formula::True,
        })
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.pos += 1;
                Ok(Formula::not(self.unary()?))
            }
            Some(Tok::Ident(s)) if s == "not" => {
                self.pos += 1;
                Ok(Formula::not(self.unary()?))
            }
            Some(Tok::Ident(s)) if s == "exists" || s == "E" => {
                self.pos += 1;
                let vars = self.var_block()?;
                Ok(Formula::Exists(vars, Box::new(self.unary()?)))
            }
            Some(Tok::Ident(s)) if s == "forall" || s == "A" => {
                self.pos += 1;
                let vars = self.var_block()?;
                Ok(Formula::Forall(vars, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    /// `ident+ '.'`
    fn var_block(&mut self) -> Result<Vec<String>, ParseError> {
        let mut vars = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Ident(s))
                    if !matches!(s.as_str(), "exists" | "forall" | "and" | "or" | "not") =>
                {
                    vars.push(s.clone());
                    self.pos += 1;
                }
                Some(Tok::Dot) if !vars.is_empty() => {
                    self.pos += 1;
                    return Ok(vars);
                }
                _ => {
                    return Err(self.error(if vars.is_empty() {
                        "expected quantified variable"
                    } else {
                        "expected '.' after quantified variables"
                    }))
                }
            }
        }
    }

    fn primary(&mut self) -> Result<Formula, ParseError> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                // Could be a parenthesized formula OR a parenthesized
                // linear expression starting a comparison. Try formula
                // first; on failure, backtrack to comparison.
                let save = self.pos;
                self.pos += 1;
                if let Ok(f) = self.formula() {
                    if self.peek() == Some(&Tok::RParen) {
                        self.pos += 1;
                        // If a comparison operator follows, this was
                        // actually an expression — only possible if f was a
                        // comparison, which can't be an operand; reject.
                        if matches!(
                            self.peek(),
                            Some(Tok::Lt | Tok::Le | Tok::Eq | Tok::Ne | Tok::Ge | Tok::Gt)
                        ) {
                            return Err(self.error("comparison chaining is not supported"));
                        }
                        return Ok(f);
                    }
                }
                self.pos = save;
                self.comparison()
            }
            Some(Tok::Ident(s)) if s == "true" => {
                self.pos += 1;
                Ok(Formula::True)
            }
            Some(Tok::Ident(s)) if s == "false" => {
                self.pos += 1;
                Ok(Formula::False)
            }
            Some(Tok::Ident(_)) => {
                // predicate if followed by '(' and then not a comparison;
                // otherwise a comparison starting with a variable.
                if self.tokens.get(self.pos + 1).map(|(_, t)| t) == Some(&Tok::LParen) {
                    self.predicate()
                } else {
                    self.comparison()
                }
            }
            Some(Tok::Number(_)) | Some(Tok::Minus) => self.comparison(),
            _ => Err(self.error("expected a formula")),
        }
    }

    fn predicate(&mut self) -> Result<Formula, ParseError> {
        let name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            _ => return Err(self.error("expected predicate name")),
        };
        self.expect(&Tok::LParen, "'('")?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                args.push(self.arg_term()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(Formula::Pred(name, args))
    }

    fn arg_term(&mut self) -> Result<ArgTerm, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(ArgTerm::Var(s)),
            Some(Tok::Number(n)) => Ok(ArgTerm::Const(n)),
            Some(Tok::Minus) => match self.bump() {
                Some(Tok::Number(n)) => Ok(ArgTerm::Const(
                    n.checked_neg().map_err(|e| self.error(e.to_string()))?,
                )),
                _ => Err(self.error("expected number after '-'")),
            },
            _ => Err(self.error("expected predicate argument")),
        }
    }

    fn comparison(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.linexpr()?;
        let op = match self.bump() {
            Some(Tok::Lt) => RawOp::Lt,
            Some(Tok::Le) => RawOp::Le,
            Some(Tok::Eq) => RawOp::Eq,
            Some(Tok::Ne) => RawOp::Ne,
            Some(Tok::Ge) => RawOp::Ge,
            Some(Tok::Gt) => RawOp::Gt,
            _ => return Err(self.error("expected comparison operator")),
        };
        let rhs = self.linexpr()?;
        Ok(Formula::Compare(lhs, op, rhs))
    }

    fn linexpr(&mut self) -> Result<LinExpr, ParseError> {
        let mut acc;
        if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            acc = self.lin_term()?.scale(&Rational::from_int(-1));
        } else {
            acc = self.lin_term()?;
        }
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    let t = self.lin_term()?;
                    acc = acc.add(&t);
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    let t = self.lin_term()?;
                    acc = acc.sub(&t);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn lin_term(&mut self) -> Result<LinExpr, ParseError> {
        match self.bump() {
            Some(Tok::Number(n)) => {
                if self.peek() == Some(&Tok::Star) {
                    self.pos += 1;
                    match self.bump() {
                        Some(Tok::Ident(v)) => Ok(LinExpr::var(&v).scale(&n)),
                        _ => Err(self.error("expected variable after '*'")),
                    }
                } else {
                    Ok(LinExpr::cst(n))
                }
            }
            Some(Tok::Ident(v)) => Ok(LinExpr::var(&v)),
            Some(Tok::LParen) => {
                let e = self.linexpr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            _ => Err(self.error("expected a term")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Formula as F;

    #[test]
    fn parses_quantified_conjunction() {
        let f = parse_formula("exists y . (R(x, y) & x < y)").unwrap();
        assert_eq!(f.free_vars().into_iter().collect::<Vec<_>>(), vec!["x"]);
        assert!(f.is_dense_order());
        match f {
            F::Exists(vs, body) => {
                assert_eq!(vs, vec!["y"]);
                assert!(matches!(*body, F::And(_)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn parses_multi_var_block() {
        let f = parse_formula("forall u v . (u <= v | v < u)").unwrap();
        assert_eq!(f.quantifier_rank(), 2);
        assert!(f.free_vars().is_empty());
    }

    #[test]
    fn parses_linear_arithmetic() {
        let f = parse_formula("2*x + 3 <= y - 1/2").unwrap();
        assert!(!f.is_dense_order());
        match f {
            F::Compare(l, RawOp::Le, r) => {
                assert_eq!(l.coeffs["x"], rat(2, 1));
                assert_eq!(l.constant, rat(3, 1));
                assert_eq!(r.coeffs["y"], rat(1, 1));
                assert_eq!(r.constant, rat(-1, 2));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_predicates_with_constants() {
        let f = parse_formula("R(x, 5) & S(-1/2, y)").unwrap();
        let preds = f.predicates();
        assert_eq!(preds["R"], 2);
        assert_eq!(preds["S"], 2);
    }

    #[test]
    fn operator_precedence() {
        // & binds tighter than |, -> is lowest
        let f = parse_formula("a < 1 & b < 1 | c < 1 -> d < 1").unwrap();
        assert!(matches!(f, F::Implies(_, _)));
        if let F::Implies(lhs, _) = f {
            assert!(matches!(*lhs, F::Or(_)));
        }
    }

    #[test]
    fn arrow_right_associative() {
        let f = parse_formula("a < 1 -> b < 1 -> c < 1").unwrap();
        if let F::Implies(_, rhs) = f {
            assert!(matches!(*rhs, F::Implies(_, _)));
        } else {
            panic!("expected implication");
        }
    }

    #[test]
    fn negation_and_keywords() {
        let f = parse_formula("not (x = 1) and y != 2").unwrap();
        assert!(matches!(f, F::And(_)));
        let g = parse_formula("!(x = 1) & y <> 2").unwrap();
        assert_eq!(format!("{f}"), format!("{g}"));
    }

    #[test]
    fn decimals_and_fractions() {
        let f = parse_formula("x = 1.25").unwrap();
        if let F::Compare(_, _, r) = f {
            assert_eq!(r.as_const(), Some(rat(5, 4)));
        } else {
            panic!();
        }
        let f = parse_formula("x = 5/4").unwrap();
        if let F::Compare(_, _, r) = f {
            assert_eq!(r.as_const(), Some(rat(5, 4)));
        } else {
            panic!();
        }
    }

    #[test]
    fn parenthesized_formula_vs_expression() {
        let f = parse_formula("(x < y)").unwrap();
        assert!(matches!(f, F::Compare(..)));
        let f = parse_formula("(x + 1) < y").unwrap();
        assert!(matches!(f, F::Compare(..)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_formula("").is_err());
        assert!(parse_formula("R(x").is_err());
        assert!(parse_formula("x <").is_err());
        assert!(parse_formula("exists . x < 1").is_err());
        assert!(parse_formula("x < 1 extra").is_err());
        assert!(parse_formula("x # y").is_err());
    }

    #[test]
    fn display_reparses() {
        for src in [
            "exists y . (R(x, y) & x < y)",
            "forall u . (S(u) -> u <= 3)",
            "x = 1/2 | x = 2 | x > 10",
            "!(x < y) <-> y <= x",
        ] {
            let f = parse_formula(src).unwrap();
            let g = parse_formula(&f.to_string()).unwrap();
            assert_eq!(format!("{f}"), format!("{g}"), "roundtrip of {src}");
        }
    }

    use dco_core::prelude::{rat, RawOp};
}
