//! Formula transformations: negation normal form and prenex normal form.
//!
//! The paper's §4 complexity arguments (and most textbook treatments of
//! quantifier elimination) assume formulas in **prenex normal form** —
//! a quantifier prefix over a quantifier-free matrix. These classical
//! rewritings are provided here, semantics-preserving over any structure,
//! and property-tested against the evaluators downstream:
//!
//! * [`to_nnf`] — push negations to the atoms (eliminating `→` and `↔`);
//! * [`to_prenex`] — extract quantifiers to a prefix, alpha-renaming to
//!   avoid capture;
//! * [`prenex_rank`] — the length of the resulting prefix, an upper bound
//!   used when relating formulas to EF-game ranks.

use crate::ast::{ArgTerm, Formula};
use std::collections::BTreeSet;

/// Negation normal form: negations only on atoms, no `→`/`↔`.
pub fn to_nnf(f: &Formula) -> Formula {
    nnf(f, false)
}

fn nnf(f: &Formula, neg: bool) -> Formula {
    match f {
        Formula::True => {
            if neg {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if neg {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Compare(l, op, r) => {
            if neg {
                Formula::Compare(l.clone(), op.negate(), r.clone())
            } else {
                f.clone()
            }
        }
        Formula::Pred(..) => {
            if neg {
                Formula::Not(Box::new(f.clone()))
            } else {
                f.clone()
            }
        }
        Formula::Not(g) => nnf(g, !neg),
        Formula::And(gs) => {
            let parts = gs.iter().map(|g| nnf(g, neg)).collect();
            if neg {
                Formula::Or(parts)
            } else {
                Formula::And(parts)
            }
        }
        Formula::Or(gs) => {
            let parts = gs.iter().map(|g| nnf(g, neg)).collect();
            if neg {
                Formula::And(parts)
            } else {
                Formula::Or(parts)
            }
        }
        Formula::Implies(a, b) => {
            // a → b ≡ ¬a ∨ b
            let rewritten = Formula::Or(vec![Formula::not((**a).clone()), (**b).clone()]);
            nnf(&rewritten, neg)
        }
        Formula::Iff(a, b) => {
            // a ↔ b ≡ (a ∧ b) ∨ (¬a ∧ ¬b)
            let rewritten = Formula::Or(vec![
                Formula::And(vec![(**a).clone(), (**b).clone()]),
                Formula::And(vec![
                    Formula::not((**a).clone()),
                    Formula::not((**b).clone()),
                ]),
            ]);
            nnf(&rewritten, neg)
        }
        Formula::Exists(vs, g) => {
            let inner = nnf(g, neg);
            if neg {
                Formula::Forall(vs.clone(), Box::new(inner))
            } else {
                Formula::Exists(vs.clone(), Box::new(inner))
            }
        }
        Formula::Forall(vs, g) => {
            let inner = nnf(g, neg);
            if neg {
                Formula::Exists(vs.clone(), Box::new(inner))
            } else {
                Formula::Forall(vs.clone(), Box::new(inner))
            }
        }
    }
}

/// A prenex quantifier block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Quantifier {
    /// Existential block.
    Exists(Vec<String>),
    /// Universal block.
    Forall(Vec<String>),
}

/// Prenex normal form: `(prefix, matrix)` with a quantifier-free matrix,
/// semantically equivalent to the input. The input is first brought to
/// NNF; bound variables are renamed apart as needed.
pub fn to_prenex(f: &Formula) -> (Vec<Quantifier>, Formula) {
    let nnf = to_nnf(f);
    let mut used: BTreeSet<String> = nnf.free_vars();
    collect_bound(&nnf, &mut used);
    let mut counter = 0usize;
    prenex(&nnf, &mut used, &mut counter)
}

/// Reassemble a prenex pair into a formula.
pub fn from_prenex(prefix: &[Quantifier], matrix: &Formula) -> Formula {
    let mut f = matrix.clone();
    for q in prefix.iter().rev() {
        f = match q {
            Quantifier::Exists(vs) => Formula::Exists(vs.clone(), Box::new(f)),
            Quantifier::Forall(vs) => Formula::Forall(vs.clone(), Box::new(f)),
        };
    }
    f
}

/// Number of quantified variables in a prenex prefix.
pub fn prenex_rank(prefix: &[Quantifier]) -> usize {
    prefix
        .iter()
        .map(|q| match q {
            Quantifier::Exists(vs) | Quantifier::Forall(vs) => vs.len(),
        })
        .sum()
}

fn collect_bound(f: &Formula, out: &mut BTreeSet<String>) {
    f.walk(&mut |g| {
        if let Formula::Exists(vs, _) | Formula::Forall(vs, _) = g {
            out.extend(vs.iter().cloned());
        }
    });
}

fn fresh(base: &str, used: &mut BTreeSet<String>, counter: &mut usize) -> String {
    loop {
        *counter += 1;
        let cand = format!("{base}_p{counter}");
        if used.insert(cand.clone()) {
            return cand;
        }
    }
}

fn prenex(
    f: &Formula,
    used: &mut BTreeSet<String>,
    counter: &mut usize,
) -> (Vec<Quantifier>, Formula) {
    match f {
        Formula::True
        | Formula::False
        | Formula::Compare(..)
        | Formula::Pred(..)
        | Formula::Not(_) => (Vec::new(), f.clone()),
        Formula::And(gs) | Formula::Or(gs) => {
            let is_and = matches!(f, Formula::And(_));
            let mut prefix = Vec::new();
            let mut parts = Vec::new();
            for g in gs {
                let (mut p, m) = prenex(g, used, counter);
                // rename this subformula's bound vars apart from everything
                let (p2, m2) = rename_apart(&mut p, m, used, counter);
                prefix.extend(p2);
                parts.push(m2);
            }
            let matrix = if is_and {
                Formula::And(parts)
            } else {
                Formula::Or(parts)
            };
            (prefix, matrix)
        }
        Formula::Implies(..) | Formula::Iff(..) => {
            // NNF input never contains these
            unreachable!("to_prenex runs on NNF input")
        }
        Formula::Exists(vs, g) => {
            let (mut prefix, matrix) = prenex(g, used, counter);
            let mut all = vec![Quantifier::Exists(vs.clone())];
            all.append(&mut prefix);
            (all, matrix)
        }
        Formula::Forall(vs, g) => {
            let (mut prefix, matrix) = prenex(g, used, counter);
            let mut all = vec![Quantifier::Forall(vs.clone())];
            all.append(&mut prefix);
            (all, matrix)
        }
    }
}

/// Rename the variables of a prefix to globally fresh names (capture
/// avoidance when hoisting past sibling subformulas).
fn rename_apart(
    prefix: &mut Vec<Quantifier>,
    mut matrix: Formula,
    used: &mut BTreeSet<String>,
    counter: &mut usize,
) -> (Vec<Quantifier>, Formula) {
    let mut out = Vec::with_capacity(prefix.len());
    for q in prefix.drain(..) {
        let (vs, exists) = match q {
            Quantifier::Exists(vs) => (vs, true),
            Quantifier::Forall(vs) => (vs, false),
        };
        let mut new_vs = Vec::with_capacity(vs.len());
        for v in vs {
            let nv = fresh(&v, used, counter);
            matrix = rename_free_var(&matrix, &v, &nv);
            new_vs.push(nv);
        }
        out.push(if exists {
            Quantifier::Exists(new_vs)
        } else {
            Quantifier::Forall(new_vs)
        });
    }
    (out, matrix)
}

/// Rename free occurrences of a variable (the matrix is quantifier-free up
/// to `Not` of atoms, so capture cannot occur).
fn rename_free_var(f: &Formula, from: &str, to: &str) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Compare(l, op, r) => {
            Formula::Compare(l.rename_var(from, to), *op, r.rename_var(from, to))
        }
        Formula::Pred(n, args) => Formula::Pred(
            n.clone(),
            args.iter()
                .map(|a| match a {
                    ArgTerm::Var(v) if v == from => ArgTerm::Var(to.to_string()),
                    o => o.clone(),
                })
                .collect(),
        ),
        Formula::Not(g) => Formula::not(rename_free_var(g, from, to)),
        Formula::And(gs) => Formula::And(gs.iter().map(|g| rename_free_var(g, from, to)).collect()),
        Formula::Or(gs) => Formula::Or(gs.iter().map(|g| rename_free_var(g, from, to)).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(rename_free_var(a, from, to)),
            Box::new(rename_free_var(b, from, to)),
        ),
        Formula::Iff(a, b) => Formula::Iff(
            Box::new(rename_free_var(a, from, to)),
            Box::new(rename_free_var(b, from, to)),
        ),
        Formula::Exists(vs, g) if !vs.iter().any(|v| v == from) => {
            Formula::Exists(vs.clone(), Box::new(rename_free_var(g, from, to)))
        }
        Formula::Forall(vs, g) if !vs.iter().any(|v| v == from) => {
            Formula::Forall(vs.clone(), Box::new(rename_free_var(g, from, to)))
        }
        shadowed => shadowed.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn is_nnf(f: &Formula) -> bool {
        let mut ok = true;
        f.walk(&mut |g| match g {
            Formula::Implies(..) | Formula::Iff(..) => ok = false,
            Formula::Not(inner) if !matches!(**inner, Formula::Pred(..)) => ok = false,
            _ => {}
        });
        ok
    }

    fn is_quantifier_free(f: &Formula) -> bool {
        let mut ok = true;
        f.walk(&mut |g| {
            if matches!(g, Formula::Exists(..) | Formula::Forall(..)) {
                ok = false;
            }
        });
        ok
    }

    #[test]
    fn nnf_eliminates_connectives() {
        for src in [
            "!(x < 1 & y < 2)",
            "(x < 1) -> (y < 2)",
            "(R(x, y) <-> x < y)",
            "!(exists z . (R(x, z) & !(z = y)))",
            "!!(x < 1)",
        ] {
            let f = parse_formula(src).unwrap();
            let g = to_nnf(&f);
            assert!(is_nnf(&g), "{src} → {g}");
            assert_eq!(f.free_vars(), g.free_vars(), "{src}");
        }
    }

    #[test]
    fn nnf_flips_quantifiers_under_negation() {
        let f = parse_formula("!(forall x . x < 1)").unwrap();
        let g = to_nnf(&f);
        assert!(matches!(g, Formula::Exists(..)), "{g}");
    }

    #[test]
    fn prenex_produces_quantifier_free_matrix() {
        for src in [
            "exists y . (R(x, y) & forall z . (R(y, z) -> z < 3))",
            "(exists a . R(a, x)) & (exists a . R(x, a))",
            "!(exists z . R(z, z)) | (forall w . w <= w)",
        ] {
            let f = parse_formula(src).unwrap();
            let (prefix, matrix) = to_prenex(&f);
            assert!(is_quantifier_free(&matrix), "{src} matrix {matrix}");
            let back = from_prenex(&prefix, &matrix);
            assert_eq!(back.free_vars(), f.free_vars(), "{src}");
        }
    }

    #[test]
    fn prenex_renames_clashing_bound_vars() {
        let f = parse_formula("(exists a . R(a, x)) & (exists a . R(x, a))").unwrap();
        let (prefix, _) = to_prenex(&f);
        let mut names = Vec::new();
        for q in &prefix {
            match q {
                Quantifier::Exists(vs) | Quantifier::Forall(vs) => names.extend(vs.clone()),
            }
        }
        let unique: BTreeSet<&String> = names.iter().collect();
        assert_eq!(
            unique.len(),
            names.len(),
            "prefix has duplicates: {names:?}"
        );
        assert_eq!(prenex_rank(&prefix), 2);
    }

    #[test]
    fn prenex_rank_counts_all_blocks() {
        let f = parse_formula("exists a b . forall c . R(a, b) & c <= c").unwrap();
        let (prefix, _) = to_prenex(&f);
        assert_eq!(prenex_rank(&prefix), 3);
    }
}
