//! # dco-logic — formula AST and parser
//!
//! The shared first-order syntax for the query languages of *Dense-Order
//! Constraint Databases* (Grumbach & Su, PODS 1995): FO (dense-order atoms)
//! and FO+ (linear atoms with built-in addition). Datalog¬ rule bodies and
//! the C-CALC calculus reuse these atoms and terms.
//!
//! ```
//! use dco_logic::parse_formula;
//!
//! let f = parse_formula("exists y . (R(x, y) & x < y)").unwrap();
//! assert!(f.is_dense_order());
//! assert_eq!(f.quantifier_rank(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod datalog;
pub mod parser;
pub mod transform;

pub use ast::{ArgTerm, Formula, LinExpr};
pub use datalog::{parse_program, DatalogParseError, Literal, Program, ProgramError, Rule};
pub use parser::{parse_formula, ParseError};
pub use transform::{from_prenex, prenex_rank, to_nnf, to_prenex, Quantifier};
