//! Abstract syntax and parser for inflationary Datalog¬ with dense-order
//! constraints.
//!
//! Following §4 of the paper: a program is a set of rules
//!
//! ```text
//! R(x̄) :- L₁, …, L_n.
//! ```
//!
//! where each `Lᵢ` is a positive or negated predicate atom over variables
//! and rational constants, or a dense-order constraint (`x < y`, `x ≤ 3`, …).
//! Negation is permitted in rule bodies; the semantics is **inflationary**:
//! facts derived at each stage are added to the store and never retracted,
//! which guarantees a polynomial-step fixpoint over the finite lattice of
//! cell-definable relations (the engine in `dco-datalog`).
//!
//! This module lives in `dco-logic` (rather than `dco-datalog`) so that
//! static analysis over rules and formulas can share one crate without a
//! dependency cycle; `dco-datalog` re-exports everything here under its
//! historical paths.
//!
//! ## Textual syntax
//!
//! ```text
//! % transitive closure with a constraint and negation
//! tc(x, y) :- e(x, y).
//! tc(x, y) :- tc(x, z), e(z, y).
//! small(x)  :- tc(x, x), not e(x, x), x < 3.
//! ```
//!
//! * `%` or `//` start a comment to end of line;
//! * body literals are separated by `,`;
//! * `not L` or `!L` negates a predicate literal;
//! * constraints use the comparison syntax of the formula parser
//!   (`x < y`, `x <= 1/2`, `x != y`, …);
//! * constants may appear in predicate arguments and in heads
//!   (`p(x, 3) :- …` desugars the head constant to a fresh constrained
//!   variable).

use crate::ast::{ArgTerm, Formula, LinExpr};
use dco_core::prelude::{Rational, RawOp};
use std::collections::BTreeMap;
use std::fmt;

/// A body literal.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    /// A positive predicate atom `R(t̄)`.
    Pos(String, Vec<ArgTerm>),
    /// A negated predicate atom `¬R(t̄)` (inflationary negation).
    Neg(String, Vec<ArgTerm>),
    /// A dense-order constraint between simple terms.
    Constraint(LinExpr, RawOp, LinExpr),
}

impl Literal {
    /// Variables mentioned by the literal.
    pub fn vars(&self) -> Vec<String> {
        match self {
            Literal::Pos(_, args) | Literal::Neg(_, args) => args
                .iter()
                .filter_map(|a| match a {
                    ArgTerm::Var(v) => Some(v.clone()),
                    ArgTerm::Const(_) => None,
                })
                .collect(),
            Literal::Constraint(l, _, r) => {
                l.vars().chain(r.vars()).map(|s| s.to_string()).collect()
            }
        }
    }

    /// Lower to a formula for evaluation by the FO machinery.
    pub fn to_formula(&self) -> Formula {
        match self {
            Literal::Pos(name, args) => Formula::Pred(name.clone(), args.clone()),
            Literal::Neg(name, args) => Formula::not(Formula::Pred(name.clone(), args.clone())),
            Literal::Constraint(l, op, r) => Formula::Compare(l.clone(), *op, r.clone()),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(name, args) => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{name}({})", parts.join(", "))
            }
            Literal::Neg(name, args) => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "not {name}({})", parts.join(", "))
            }
            Literal::Constraint(l, op, r) => write!(f, "{l} {op} {r}"),
        }
    }
}

/// A rule `head(vars) :- body`.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Head predicate name.
    pub head: String,
    /// Head variables (constants in heads are expressed via body
    /// constraints; the parser desugars them).
    pub head_vars: Vec<String>,
    /// Body literals (conjunction).
    pub body: Vec<Literal>,
    /// 1-based source line the rule was parsed from; `0` when the rule was
    /// built programmatically. Diagnostics use this as the rule's span.
    pub line: usize,
}

impl Rule {
    /// Build a rule with no source location.
    pub fn new(head: impl Into<String>, head_vars: Vec<String>, body: Vec<Literal>) -> Rule {
        Rule {
            head: head.into(),
            head_vars,
            body,
            line: 0,
        }
    }

    /// Attach a 1-based source line.
    pub fn at_line(mut self, line: usize) -> Rule {
        self.line = line;
        self
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body: Vec<String> = self.body.iter().map(|l| l.to_string()).collect();
        write!(
            f,
            "{}({}) :- {}.",
            self.head,
            self.head_vars.join(", "),
            body.join(", ")
        )
    }
}

/// A Datalog¬ program: rules plus the inferred predicate signature.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

/// Errors found during validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Predicate used at two different arities.
    InconsistentArity(String),
    /// Head variable not bound anywhere in the body (unsafe only for
    /// *negated-only* occurrences; pure constraint binding is fine in the
    /// constraint model, but a variable appearing nowhere is rejected).
    UnboundHeadVar {
        /// Rule (display form).
        rule: String,
        /// Variable name.
        var: String,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::InconsistentArity(p) => {
                write!(f, "predicate {p} used at inconsistent arities")
            }
            ProgramError::UnboundHeadVar { rule, var } => {
                write!(
                    f,
                    "head variable {var} does not occur in the body of: {rule}"
                )
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Build and validate a program.
    pub fn new(rules: Vec<Rule>) -> Result<Program, ProgramError> {
        let p = Program { rules };
        p.validate()?;
        Ok(p)
    }

    /// All predicates with arities (heads and body atoms).
    pub fn arities(&self) -> Result<BTreeMap<String, u32>, ProgramError> {
        let mut out: BTreeMap<String, u32> = BTreeMap::new();
        let mut put = |name: &str, arity: usize| -> Result<(), ProgramError> {
            match out.get(name) {
                Some(a) if *a as usize != arity => {
                    Err(ProgramError::InconsistentArity(name.to_string()))
                }
                Some(_) => Ok(()),
                None => {
                    out.insert(name.to_string(), arity as u32);
                    Ok(())
                }
            }
        };
        for r in &self.rules {
            put(&r.head, r.head_vars.len())?;
            for l in &r.body {
                match l {
                    Literal::Pos(name, args) | Literal::Neg(name, args) => {
                        put(name, args.len())?;
                    }
                    Literal::Constraint(..) => {}
                }
            }
        }
        Ok(out)
    }

    /// Intensional predicates: those appearing in some head.
    pub fn idb_predicates(&self) -> Vec<String> {
        let mut v: Vec<String> = self.rules.iter().map(|r| r.head.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Extensional predicates: used in bodies but never defined.
    pub fn edb_predicates(&self) -> Vec<String> {
        let idb = self.idb_predicates();
        let mut v = Vec::new();
        for r in &self.rules {
            for l in &r.body {
                if let Literal::Pos(name, _) | Literal::Neg(name, _) = l {
                    if !idb.contains(name) && !v.contains(name) {
                        v.push(name.clone());
                    }
                }
            }
        }
        v.sort();
        v
    }

    fn validate(&self) -> Result<(), ProgramError> {
        self.arities()?;
        for r in &self.rules {
            let body_vars: Vec<String> = r.body.iter().flat_map(|l| l.vars()).collect();
            for v in &r.head_vars {
                if !body_vars.contains(v) {
                    return Err(ProgramError::UnboundHeadVar {
                        rule: r.to_string(),
                        var: v.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

/// Errors from parsing a program.
#[derive(Debug, Clone, PartialEq)]
pub enum DatalogParseError {
    /// Syntax error with line number (1-based) and message.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// The parsed program failed validation.
    Invalid(ProgramError),
}

impl fmt::Display for DatalogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogParseError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            DatalogParseError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for DatalogParseError {}

/// Parse a Datalog¬ program.
pub fn parse_program(src: &str) -> Result<Program, DatalogParseError> {
    let mut rules = Vec::new();
    let mut fresh = 0usize;
    // Rules end with '.'; a rule must fit on one physical line.
    for (lineno, raw_line) in src.lines().enumerate() {
        let text = strip_comment(raw_line).trim();
        if text.is_empty() {
            continue;
        }
        let line = lineno + 1;
        let Some(rule_text) = text.strip_suffix('.') else {
            return Err(DatalogParseError::Syntax {
                line,
                message: "rule must end with '.'".to_string(),
            });
        };
        rules.push(parse_rule(rule_text, line, &mut fresh)?);
    }
    Program::new(rules).map_err(DatalogParseError::Invalid)
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find('%').unwrap_or(line.len());
    let cut2 = line.find("//").unwrap_or(line.len());
    &line[..cut.min(cut2)]
}

fn parse_rule(text: &str, line: usize, fresh: &mut usize) -> Result<Rule, DatalogParseError> {
    let syntax = |message: String| DatalogParseError::Syntax { line, message };
    let (head_text, body_text) = match text.split_once(":-") {
        Some((h, b)) => (h.trim(), b.trim()),
        None => (text.trim(), ""),
    };
    // Head: name(args)
    let (head, raw_args) = parse_atom_shape(head_text).map_err(&syntax)?;
    let mut head_vars = Vec::new();
    let mut extra_constraints: Vec<Literal> = Vec::new();
    for arg in raw_args {
        match parse_arg(&arg).map_err(&syntax)? {
            ArgTerm::Var(v) => head_vars.push(v),
            ArgTerm::Const(c) => {
                // desugar head constant: fresh var pinned by a constraint
                *fresh += 1;
                let v = format!("_h{fresh}");
                extra_constraints.push(Literal::Constraint(
                    LinExpr::var(&v),
                    RawOp::Eq,
                    LinExpr::cst(c),
                ));
                head_vars.push(v);
            }
        }
    }
    let mut body = Vec::new();
    if !body_text.is_empty() {
        for lit_text in split_top_level(body_text) {
            body.push(parse_literal(lit_text.trim(), line)?);
        }
    }
    body.extend(extra_constraints);
    Ok(Rule {
        head,
        head_vars,
        body,
        line,
    })
}

/// Split a body on commas not nested in parentheses.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0;
    let mut start = 0;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => depth -= 1,
            b',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

fn parse_literal(text: &str, line: usize) -> Result<Literal, DatalogParseError> {
    let syntax = |message: String| DatalogParseError::Syntax { line, message };
    let (negated, text) = if let Some(rest) = text.strip_prefix("not ") {
        (true, rest.trim())
    } else if let Some(rest) = text.strip_prefix('!') {
        (true, rest.trim())
    } else {
        (false, text)
    };
    // Predicate literal?  name(...) with nothing after the closing paren.
    if looks_like_atom(text) {
        let (name, raw_args) = parse_atom_shape(text).map_err(&syntax)?;
        let args = raw_args
            .into_iter()
            .map(|a| parse_arg(&a))
            .collect::<Result<Vec<_>, _>>()
            .map_err(&syntax)?;
        return Ok(if negated {
            Literal::Neg(name, args)
        } else {
            Literal::Pos(name, args)
        });
    }
    if negated {
        return Err(syntax(
            "'not' applies only to predicate literals".to_string(),
        ));
    }
    // Constraint: reuse the formula parser.
    match crate::parser::parse_formula(text) {
        Ok(Formula::Compare(l, op, r)) => Ok(Literal::Constraint(l, op, r)),
        Ok(_) => Err(syntax(format!(
            "expected a constraint or literal, got: {text}"
        ))),
        Err(e) => Err(syntax(format!("bad constraint {text:?}: {e}"))),
    }
}

fn looks_like_atom(text: &str) -> bool {
    match text.find('(') {
        None => false,
        Some(i) => {
            let name = text[..i].trim();
            !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && text.trim_end().ends_with(')')
                && balanced_until_end(&text[i..])
        }
    }
}

/// Is the parenthesized segment balanced exactly at the final char?
fn balanced_until_end(s: &str) -> bool {
    let mut depth = 0;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return s[i + 1..].trim().is_empty();
                }
            }
            _ => {}
        }
    }
    false
}

/// Parse `name(a, b, c)` into name + raw argument strings.
fn parse_atom_shape(text: &str) -> Result<(String, Vec<String>), String> {
    let open = text
        .find('(')
        .ok_or_else(|| format!("expected atom, got {text:?}"))?;
    let name = text[..open].trim();
    if name.is_empty() {
        return Err(format!("missing predicate name in {text:?}"));
    }
    let rest = text[open..].trim();
    if !rest.starts_with('(') || !rest.ends_with(')') {
        return Err(format!("malformed atom {text:?}"));
    }
    let inner = &rest[1..rest.len() - 1];
    let args = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|s| s.trim().to_string()).collect()
    };
    Ok((name.to_string(), args))
}

fn parse_arg(text: &str) -> Result<ArgTerm, String> {
    let t = text.trim();
    let Some(first) = t.chars().next() else {
        return Err("empty argument".to_string());
    };
    if first.is_ascii_digit() || first == '-' {
        let r: Rational = t
            .parse()
            .map_err(|_| format!("bad constant argument {t:?}"))?;
        Ok(ArgTerm::Const(r))
    } else if t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Ok(ArgTerm::Var(t.to_string()))
    } else {
        Err(format!("bad argument {t:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_core::prelude::rat;

    fn tc_program() -> Program {
        // tc(x,y) :- e(x,y).  tc(x,y) :- tc(x,z), e(z,y).
        Program::new(vec![
            Rule::new(
                "tc",
                vec!["x".into(), "y".into()],
                vec![Literal::Pos(
                    "e".into(),
                    vec![ArgTerm::Var("x".into()), ArgTerm::Var("y".into())],
                )],
            ),
            Rule::new(
                "tc",
                vec!["x".into(), "y".into()],
                vec![
                    Literal::Pos(
                        "tc".into(),
                        vec![ArgTerm::Var("x".into()), ArgTerm::Var("z".into())],
                    ),
                    Literal::Pos(
                        "e".into(),
                        vec![ArgTerm::Var("z".into()), ArgTerm::Var("y".into())],
                    ),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn edb_idb_split() {
        let p = tc_program();
        assert_eq!(p.idb_predicates(), vec!["tc"]);
        assert_eq!(p.edb_predicates(), vec!["e"]);
        assert_eq!(p.arities().unwrap()["tc"], 2);
        assert_eq!(p.arities().unwrap()["e"], 2);
    }

    #[test]
    fn inconsistent_arity_rejected() {
        let bad = Program::new(vec![Rule::new(
            "p",
            vec!["x".into()],
            vec![Literal::Pos(
                "p".into(),
                vec![ArgTerm::Var("x".into()), ArgTerm::Var("x".into())],
            )],
        )]);
        assert!(matches!(bad, Err(ProgramError::InconsistentArity(_))));
    }

    #[test]
    fn unbound_head_var_rejected() {
        let bad = Program::new(vec![Rule::new(
            "p",
            vec!["x".into(), "y".into()],
            vec![Literal::Pos("q".into(), vec![ArgTerm::Var("x".into())])],
        )]);
        assert!(matches!(bad, Err(ProgramError::UnboundHeadVar { .. })));
    }

    #[test]
    fn display_roundtrips_visually() {
        let p = tc_program();
        let s = p.to_string();
        assert!(s.contains("tc(x, y) :- e(x, y)."));
        assert!(s.contains("tc(x, y) :- tc(x, z), e(z, y)."));
    }

    #[test]
    fn parses_transitive_closure() {
        let p = parse_program(
            "% classic TC\n\
             tc(x, y) :- e(x, y).\n\
             tc(x, y) :- tc(x, z), e(z, y).\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.idb_predicates(), vec!["tc"]);
        assert_eq!(p.edb_predicates(), vec!["e"]);
    }

    #[test]
    fn parsed_rules_carry_line_numbers() {
        let p = parse_program(
            "% comment\n\
             tc(x, y) :- e(x, y).\n\
             \n\
             tc(x, y) :- tc(x, z), e(z, y).\n",
        )
        .unwrap();
        assert_eq!(p.rules[0].line, 2);
        assert_eq!(p.rules[1].line, 4);
    }

    #[test]
    fn parses_negation_and_constraints() {
        let p = parse_program("q(x) :- e(x, y), not e(y, x), x < 3, y != 1/2.\n").unwrap();
        let r = &p.rules[0];
        assert_eq!(r.body.len(), 4);
        assert!(matches!(r.body[0], Literal::Pos(..)));
        assert!(matches!(r.body[1], Literal::Neg(..)));
        assert!(matches!(r.body[2], Literal::Constraint(..)));
        assert!(matches!(r.body[3], Literal::Constraint(..)));
    }

    #[test]
    fn bang_negation() {
        let p = parse_program("q(x) :- e(x, x), !f(x).\n").unwrap();
        assert!(matches!(p.rules[0].body[1], Literal::Neg(..)));
    }

    #[test]
    fn head_constants_desugar() {
        let p = parse_program("q(x, 3) :- e(x, x).\n").unwrap();
        let r = &p.rules[0];
        assert_eq!(r.head_vars.len(), 2);
        // last body literal pins the fresh variable to 3
        assert!(matches!(r.body.last(), Some(Literal::Constraint(..))));
    }

    #[test]
    fn constant_arguments() {
        let p = parse_program("q(x) :- e(x, 5), e(-1/2, x).\n").unwrap();
        match &p.rules[0].body[0] {
            Literal::Pos(_, args) => {
                assert!(matches!(args[1], ArgTerm::Const(c) if c == rat(5, 1)))
            }
            _ => panic!(),
        }
        match &p.rules[0].body[1] {
            Literal::Pos(_, args) => {
                assert!(matches!(args[0], ArgTerm::Const(c) if c == rat(-1, 2)))
            }
            _ => panic!(),
        }
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = parse_program("\n% comment\n// another\n  q(x) :- e(x, x). % trailing\n").unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn missing_dot_is_error() {
        assert!(matches!(
            parse_program("q(x) :- e(x, x)"),
            Err(DatalogParseError::Syntax { .. })
        ));
    }

    #[test]
    fn negated_constraint_rejected() {
        assert!(parse_program("q(x) :- e(x, x), not x < 3.\n").is_err());
    }

    #[test]
    fn facts_allowed() {
        // a rule with empty body is a "fact scheme" — constants only
        let p = parse_program("base(1, 2).\nbase(3, 4).\nq(x) :- base(x, y).\n");
        // head constants desugar to constrained fresh vars; the pinning
        // constraints bind them, so validation passes.
        let p = p.unwrap();
        assert_eq!(p.rules.len(), 3);
    }
}
