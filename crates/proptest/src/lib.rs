//! A small, self-contained property-testing harness exposing the subset of
//! the `proptest` crate's API that this workspace uses: `Strategy`,
//! `prop_map`/`boxed`, `Just`, integer-range and tuple strategies,
//! `prop::collection::vec`, `prop::bool::ANY`, weighted `prop_oneof!`, and
//! the `proptest!`/`prop_assert*` macros.
//!
//! It exists so the workspace builds in hermetic environments where no
//! package registry is reachable. Generation is deterministic (seeded per
//! test name and case index) and there is no shrinking: a failing case
//! reports the panic from `prop_assert!` directly.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Map, Strategy, Union};
pub use test_runner::{ProptestConfig, TestRng};

/// Namespaced strategy constructors (`prop::collection::vec`,
/// `prop::bool::ANY`), mirroring the upstream module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
    /// Boolean strategies.
    pub mod bool {
        pub use crate::strategy::BoolStrategy;
        /// Uniformly random `bool`.
        pub const ANY: BoolStrategy = BoolStrategy;
    }
}

/// Everything a property test needs, via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each function runs its body against
/// `ProptestConfig::cases` generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng =
                        $crate::TestRng::deterministic(stringify!($name), case);
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}
