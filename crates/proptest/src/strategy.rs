//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of `Self::Value`.
///
/// Object safe: `generate` takes `&self`, and the combinators are gated on
/// `Self: Sized`, so `dyn Strategy<Value = T>` works (that is what
/// [`BoxedStrategy`] wraps).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            source: self,
            func: f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.func)(self.source.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Weighted choice among alternatives (built by `prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs; weights must not all be zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.options {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

/// Uniformly random `bool` (see `prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                let off = rng.below(span as u64) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                let off = rng.below(span as u64) as i128;
                ((*self.start() as i128) + off) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, usize);

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// How many elements `vec` should generate.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max_excl: *r.end() + 1,
        }
    }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_excl - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s of `elem` values with a length drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges", 0);
        for _ in 0..200 {
            let v = (-6i64..6).generate(&mut rng);
            assert!((-6..6).contains(&v));
            let u = (0u32..3).generate(&mut rng);
            assert!(u < 3);
            let w = (-3i64..=3).generate(&mut rng);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn union_respects_zero_weight_ordering() {
        let mut rng = TestRng::deterministic("union", 0);
        let s = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut saw = [false; 3];
        for _ in 0..100 {
            saw[s.generate(&mut rng) as usize] = true;
        }
        assert!(saw[1] && saw[2]);
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::deterministic("vec", 0);
        for _ in 0..100 {
            let v = vec(0i32..5, 2..4).generate(&mut rng);
            assert!(v.len() == 2 || v.len() == 3);
            let exact = vec(0i32..5, 3usize).generate(&mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_generates_and_runs(a in 0i64..10, (b, flip) in (0i64..10, prop::bool::ANY)) {
            prop_assert!(a < 10 && b < 10);
            let picked = if flip { a } else { b };
            prop_assert!((0..10).contains(&picked));
        }
    }
}
