//! Deterministic RNG and per-test configuration.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A deterministic xorshift64* generator. Seeded from the test name and
/// case index so failures reproduce exactly across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name and case index (FNV-1a over the name).
    pub fn deterministic(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_differ() {
        let mut a = TestRng::deterministic("t", 0);
        let mut b = TestRng::deterministic("t", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
