//! The standard encoding of §3: databases as bit strings.
//!
//! "The 'data complexity' of queries is defined as usual based on
//! computational devices and 'standard encodings' of the input and output.
//! We first introduce the standard encoding of a database, which is obtained
//! by encoding the quantifier-free formula representing it."
//!
//! We implement a concrete, deterministic byte-level encoding of the
//! quantifier-free DNF representation — relation by relation, tuple by
//! tuple, atom by atom, numerals in decimal. Its length is the paper's
//! input-size measure `n`; the scaling experiments (E1, E4, E8) plot cost
//! against exactly this quantity. A paired decoder makes it a lossless
//! interchange format, and [`encoded_size`] is the cheap size-only probe.

use dco_core::prelude::*;
use std::fmt::Write as _;

/// Encode a database as the canonical byte string of its quantifier-free
/// representation.
pub fn encode(db: &Database) -> String {
    let mut out = String::new();
    for (name, rel) in db.relations() {
        let _ = writeln!(out, "#{name}/{}", rel.arity());
        let mut tuples: Vec<String> = rel
            .tuples()
            .iter()
            .map(|t| {
                if t.is_empty() {
                    return "T".to_string();
                }
                let atoms: Vec<String> = t
                    .atoms()
                    .iter()
                    .map(|a| {
                        format!(
                            "{}{}{}",
                            enc_term(&a.lhs()),
                            enc_op(a.op()),
                            enc_term(&a.rhs())
                        )
                    })
                    .collect();
                atoms.join("&")
            })
            .collect();
        tuples.sort();
        for t in tuples {
            let _ = writeln!(out, "{t}");
        }
    }
    out
}

/// Length (in bytes) of the standard encoding — the data-complexity `n`.
pub fn encoded_size(db: &Database) -> usize {
    encode(db).len()
}

fn enc_term(t: &Term) -> String {
    match t {
        Term::Var(v) => format!("x{}", v.0),
        Term::Const(c) => format!("{c}"),
    }
}

fn enc_op(op: CompOp) -> &'static str {
    match op {
        CompOp::Lt => "<",
        CompOp::Le => "<=",
        CompOp::Eq => "=",
    }
}

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Decode a standard encoding back into a database.
pub fn decode(src: &str) -> Result<Database, DecodeError> {
    let mut schema = Schema::new();
    let mut rels: Vec<(String, u32, Vec<GeneralizedTuple>)> = Vec::new();
    for line in src.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('#') {
            let (name, arity) = header
                .split_once('/')
                .ok_or_else(|| DecodeError(format!("bad header {line:?}")))?;
            let arity: u32 = arity
                .parse()
                .map_err(|_| DecodeError(format!("bad arity in {line:?}")))?;
            schema = schema.with(name, arity);
            rels.push((name.to_string(), arity, Vec::new()));
        } else {
            let (_, arity, tuples) = rels
                .last_mut()
                .ok_or_else(|| DecodeError("tuple before any header".to_string()))?;
            let mut atoms = Vec::new();
            if line.trim() != "T" {
                for atom_text in line.split('&') {
                    atoms.push(dec_atom(atom_text, *arity)?);
                }
            }
            tuples.push(GeneralizedTuple::from_atoms(*arity, atoms));
        }
    }
    let mut db = Database::new(schema);
    for (name, arity, tuples) in rels {
        db.set(&name, GeneralizedRelation::from_tuples(arity, tuples))
            .map_err(|e| DecodeError(e.to_string()))?;
    }
    Ok(db)
}

fn dec_atom(text: &str, arity: u32) -> Result<Atom, DecodeError> {
    // operator: "<=" before "<", then "="
    let (lhs, op, rhs) = if let Some((l, r)) = text.split_once("<=") {
        (l, CompOp::Le, r)
    } else if let Some((l, r)) = text.split_once('<') {
        (l, CompOp::Lt, r)
    } else if let Some((l, r)) = text.split_once('=') {
        (l, CompOp::Eq, r)
    } else {
        return Err(DecodeError(format!("no operator in atom {text:?}")));
    };
    let lhs = dec_term(lhs, arity)?;
    let rhs = dec_term(rhs, arity)?;
    match Atom::normalized(lhs, op, rhs) {
        Some(v) if v.len() == 1 => Ok(v[0]),
        other => Err(DecodeError(format!(
            "atom {text:?} does not normalize to a single atom: {other:?}"
        ))),
    }
}

fn dec_term(text: &str, arity: u32) -> Result<Term, DecodeError> {
    let t = text.trim();
    if let Some(ix) = t.strip_prefix('x') {
        if let Ok(i) = ix.parse::<u32>() {
            if i >= arity {
                return Err(DecodeError(format!("column {i} out of arity {arity}")));
            }
            return Ok(Term::var(i));
        }
    }
    let r: Rational = t
        .parse()
        .map_err(|_| DecodeError(format!("bad term {t:?}")))?;
    Ok(Term::Const(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        );
        let pts = GeneralizedRelation::from_points(1, vec![vec![rat(1, 2)], vec![rat(-5, 3)]]);
        Database::new(Schema::new().with("R", 2).with("S", 1))
            .with("R", tri)
            .with("S", pts)
    }

    #[test]
    fn roundtrip() {
        let db = sample_db();
        let enc = encode(&db);
        let back = decode(&enc).unwrap();
        assert!(back.equivalent(&db));
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = encode(&sample_db());
        let b = encode(&sample_db());
        assert_eq!(a, b);
    }

    #[test]
    fn size_grows_with_content() {
        let small = Database::new(Schema::new().with("S", 1)).with(
            "S",
            GeneralizedRelation::from_points(1, vec![vec![rat(1, 1)]]),
        );
        let big = Database::new(Schema::new().with("S", 1)).with(
            "S",
            GeneralizedRelation::from_points(
                1,
                (0..50).map(|i| vec![rat(i, 1)]).collect::<Vec<_>>(),
            ),
        );
        assert!(encoded_size(&big) > encoded_size(&small));
    }

    #[test]
    fn decode_errors() {
        assert!(decode("x0<x1").is_err()); // tuple before header
        assert!(decode("#R/2\nx0?x1").is_err()); // bad operator
        assert!(decode("#R/2\nx5<x1").is_err()); // column out of range
        assert!(decode("#R/zz").is_err()); // bad arity
    }

    #[test]
    fn empty_relation_encodes() {
        let db = Database::new(Schema::new().with("E", 3));
        let enc = encode(&db);
        let back = decode(&enc).unwrap();
        assert!(back.get("E").unwrap().is_empty());
        assert_eq!(back.get("E").unwrap().arity(), 3);
    }

    #[test]
    fn top_tuple_roundtrips() {
        // A relation containing the unconstrained tuple (whole plane).
        let db =
            Database::new(Schema::new().with("U", 2)).with("U", GeneralizedRelation::universe(2));
        let back = decode(&encode(&db)).unwrap();
        assert!(back
            .get("U")
            .unwrap()
            .contains_point(&[rat(9, 1), rat(-9, 1)]));
    }
}
