//! The compact rectangle encoding of §2.
//!
//! "It is important to note that these particular shaped objects can be
//! represented by four constants along with a flag indicating the shape
//! (and boundary conditions). This lead[s] to efficient encoding of
//! dense-order constraint databases."
//!
//! A binary generalized tuple whose constraints only bound each coordinate
//! by constants denotes an axis-aligned rectangle (possibly unbounded or
//! degenerate). [`BoxEncoding`] stores exactly the paper's compact form —
//! four optional constants plus boundary flags — and converts losslessly to
//! and from such tuples. [`compress`] encodes a whole relation, falling
//! back to the generic representation for non-box tuples, and reports the
//! size ratio the paper alludes to (measured by experiment E7).

use dco_core::prelude::*;

/// One side of a box: unbounded, open at a constant, or closed at one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// No bound.
    Unbounded,
    /// Strict bound (endpoint excluded).
    Open(Rational),
    /// Weak bound (endpoint included).
    Closed(Rational),
}

/// An axis-aligned rectangle: the paper's "four constants along with a
/// flag indicating the shape (and boundary conditions)".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BoxEncoding {
    /// Lower x bound.
    pub x_lo: Side,
    /// Upper x bound.
    pub x_hi: Side,
    /// Lower y bound.
    pub y_lo: Side,
    /// Upper y bound.
    pub y_hi: Side,
}

impl BoxEncoding {
    /// The closed box `[x0, x1] × [y0, y1]`.
    pub fn closed(x0: i64, x1: i64, y0: i64, y1: i64) -> BoxEncoding {
        BoxEncoding {
            x_lo: Side::Closed(Rational::from_int(x0)),
            x_hi: Side::Closed(Rational::from_int(x1)),
            y_lo: Side::Closed(Rational::from_int(y0)),
            y_hi: Side::Closed(Rational::from_int(y1)),
        }
    }

    /// Convert to a generalized tuple over columns (x, y) = (0, 1).
    pub fn to_tuple(&self) -> GeneralizedTuple {
        let mut raws = Vec::new();
        let mut bound = |var: u32, side: &Side, lower: bool| match side {
            Side::Unbounded => {}
            Side::Open(c) => raws.push(if lower {
                RawAtom::new(Term::Const(*c), RawOp::Lt, Term::var(var))
            } else {
                RawAtom::new(Term::var(var), RawOp::Lt, Term::Const(*c))
            }),
            Side::Closed(c) => raws.push(if lower {
                RawAtom::new(Term::Const(*c), RawOp::Le, Term::var(var))
            } else {
                RawAtom::new(Term::var(var), RawOp::Le, Term::Const(*c))
            }),
        };
        bound(0, &self.x_lo, true);
        bound(0, &self.x_hi, false);
        bound(1, &self.y_lo, true);
        bound(1, &self.y_hi, false);
        let mut ts = GeneralizedTuple::from_raw(2, raws);
        assert!(ts.len() <= 1, "box constraints never split");
        ts.pop().unwrap_or_else(|| {
            // Empty box (contradictory bounds): represent as an
            // unsatisfiable tuple.
            GeneralizedTuple::from_atoms(
                2,
                Atom::normalized(Term::var(0), CompOp::Lt, Term::var(0)).unwrap_or_default(),
            )
        })
    }

    /// Try to recover a box from a generalized tuple. Returns `None` when
    /// the tuple involves variable-variable constraints (like the triangle
    /// `x ≤ y`) — those are not axis-aligned boxes.
    pub fn from_tuple(t: &GeneralizedTuple) -> Option<BoxEncoding> {
        if t.arity() != 2 {
            return None;
        }
        let mut b = BoxEncoding {
            x_lo: Side::Unbounded,
            x_hi: Side::Unbounded,
            y_lo: Side::Unbounded,
            y_hi: Side::Unbounded,
        };
        for a in t.atoms() {
            let (var, c, is_lower, strict) = match (a.lhs(), a.rhs(), a.op()) {
                (Term::Var(v), Term::Const(c), CompOp::Lt) => (v, c, false, true),
                (Term::Var(v), Term::Const(c), CompOp::Le) => (v, c, false, false),
                (Term::Const(c), Term::Var(v), CompOp::Lt) => (v, c, true, true),
                (Term::Const(c), Term::Var(v), CompOp::Le) => (v, c, true, false),
                (Term::Var(v), Term::Const(c), CompOp::Eq)
                | (Term::Const(c), Term::Var(v), CompOp::Eq) => {
                    // x = c: both bounds closed at c
                    let side = Side::Closed(c);
                    match v.0 {
                        0 => {
                            b.x_lo = tighten(b.x_lo, side, true)?;
                            b.x_hi = tighten(b.x_hi, side, false)?;
                        }
                        1 => {
                            b.y_lo = tighten(b.y_lo, side, true)?;
                            b.y_hi = tighten(b.y_hi, side, false)?;
                        }
                        _ => return None,
                    }
                    continue;
                }
                _ => return None, // var-var atom: not a box
            };
            let side = if strict {
                Side::Open(c)
            } else {
                Side::Closed(c)
            };
            match (var.0, is_lower) {
                (0, true) => b.x_lo = tighten(b.x_lo, side, true)?,
                (0, false) => b.x_hi = tighten(b.x_hi, side, false)?,
                (1, true) => b.y_lo = tighten(b.y_lo, side, true)?,
                (1, false) => b.y_hi = tighten(b.y_hi, side, false)?,
                _ => return None,
            }
        }
        Some(b)
    }
}

fn side_key(s: &Side) -> Option<(Rational, bool)> {
    match s {
        Side::Unbounded => None,
        Side::Open(c) => Some((*c, true)),
        Side::Closed(c) => Some((*c, false)),
    }
}

/// Tighten a bound: keep the more restrictive of two sides.
fn tighten(cur: Side, new: Side, lower: bool) -> Option<Side> {
    let result = match (side_key(&cur), side_key(&new)) {
        (None, _) => new,
        (_, None) => cur,
        (Some((a, sa)), Some((b, sb))) => {
            let pick_new = if lower {
                b > a || (b == a && sb && !sa)
            } else {
                b < a || (b == a && sb && !sa)
            };
            if pick_new {
                new
            } else {
                cur
            }
        }
    };
    Some(result)
}

/// A compressed relation: boxes where possible, raw tuples elsewhere.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedRelation {
    /// Box-encoded disjuncts.
    pub boxes: Vec<BoxEncoding>,
    /// Disjuncts that are not boxes, kept in generic form.
    pub residual: Vec<GeneralizedTuple>,
}

impl CompressedRelation {
    /// Decompress back to a generalized relation.
    pub fn to_relation(&self) -> GeneralizedRelation {
        GeneralizedRelation::from_tuples(
            2,
            self.boxes
                .iter()
                .map(|b| b.to_tuple())
                .chain(self.residual.iter().cloned()),
        )
    }

    /// Size measure: boxes count 4 (four constants + flag ≈ O(1) beyond the
    /// constants), residual tuples count their atom count.
    pub fn size(&self) -> usize {
        self.boxes.len() * 4 + self.residual.iter().map(|t| t.len().max(1)).sum::<usize>()
    }
}

/// Compress a binary relation into box form where possible.
pub fn compress(rel: &GeneralizedRelation) -> CompressedRelation {
    assert_eq!(rel.arity(), 2, "box compression is for binary relations");
    let mut boxes = Vec::new();
    let mut residual = Vec::new();
    for t in rel.tuples() {
        match BoxEncoding::from_tuple(&t.simplify()) {
            Some(b) => boxes.push(b),
            None => residual.push(t.clone()),
        }
    }
    CompressedRelation { boxes, residual }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_box_roundtrip() {
        let b = BoxEncoding::closed(0, 2, 1, 3);
        let t = b.to_tuple();
        assert!(t.contains_point(&[rat(1, 1), rat(2, 1)]));
        assert!(t.contains_point(&[rat(0, 1), rat(1, 1)]));
        assert!(!t.contains_point(&[rat(3, 1), rat(2, 1)]));
        let back = BoxEncoding::from_tuple(&t).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn open_and_unbounded_sides() {
        let b = BoxEncoding {
            x_lo: Side::Open(rat(0, 1)),
            x_hi: Side::Unbounded,
            y_lo: Side::Unbounded,
            y_hi: Side::Closed(rat(5, 1)),
        };
        let t = b.to_tuple();
        assert!(t.contains_point(&[rat(1, 1), rat(5, 1)]));
        assert!(!t.contains_point(&[rat(0, 1), rat(5, 1)]));
        assert!(t.contains_point(&[rat(100, 1), rat(-100, 1)]));
        assert_eq!(BoxEncoding::from_tuple(&t).unwrap(), b);
    }

    #[test]
    fn point_is_a_degenerate_box() {
        let t = GeneralizedTuple::point(&[rat(3, 1), rat(4, 1)]);
        let b = BoxEncoding::from_tuple(&t).unwrap();
        assert_eq!(b.x_lo, Side::Closed(rat(3, 1)));
        assert_eq!(b.x_hi, Side::Closed(rat(3, 1)));
        let back = b.to_tuple();
        assert!(back.contains_point(&[rat(3, 1), rat(4, 1)]));
        assert!(!back.contains_point(&[rat(3, 1), rat(5, 1)]));
    }

    #[test]
    fn triangle_is_not_a_box() {
        let tri = GeneralizedTuple::from_raw(
            2,
            vec![RawAtom::new(Term::var(0), RawOp::Le, Term::var(1))],
        )
        .pop()
        .unwrap();
        assert!(BoxEncoding::from_tuple(&tri).is_none());
    }

    #[test]
    fn compress_mixed_relation() {
        let boxy = BoxEncoding::closed(0, 1, 0, 1).to_tuple();
        let tri = GeneralizedTuple::from_raw(
            2,
            vec![RawAtom::new(Term::var(0), RawOp::Le, Term::var(1))],
        )
        .pop()
        .unwrap();
        let rel = GeneralizedRelation::from_tuples(2, vec![boxy, tri]);
        let c = compress(&rel);
        assert_eq!(c.boxes.len(), 1);
        assert_eq!(c.residual.len(), 1);
        assert!(c.to_relation().equivalent(&rel));
    }

    #[test]
    fn redundant_bounds_tighten() {
        // x <= 5 ∧ x <= 3 ∧ x >= 0: box with x_hi = 3
        let t = GeneralizedTuple::from_raw(
            2,
            vec![
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(5, 1))),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(3, 1))),
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
            ],
        )
        .pop()
        .unwrap();
        let b = BoxEncoding::from_tuple(&t).unwrap();
        assert_eq!(b.x_hi, Side::Closed(rat(3, 1)));
    }
}
