//! JSON interchange for databases and experiment output.
//!
//! Not part of the paper — an engineering convenience: databases, relations
//! and experiment tables serialize to JSON for inspection and for the
//! experiment harness's machine-readable output.

use dco_core::prelude::Database;
use serde::{Deserialize, Serialize};

/// Serialize a database to pretty JSON.
pub fn to_json(db: &Database) -> serde_json::Result<String> {
    serde_json::to_string_pretty(db)
}

/// Deserialize a database from JSON.
pub fn from_json(src: &str) -> serde_json::Result<Database> {
    serde_json::from_str(src)
}

/// One row of an experiment table (used by `dco-bench`'s `experiments`
/// binary to emit machine-readable results next to the printed tables).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// Experiment id, e.g. "E4".
    pub experiment: String,
    /// Row label (instance description).
    pub label: String,
    /// Named measurements.
    pub values: Vec<(String, f64)>,
}

/// Serialize experiment rows.
pub fn rows_to_json(rows: &[ExperimentRow]) -> serde_json::Result<String> {
    serde_json::to_string_pretty(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_core::prelude::*;

    #[test]
    fn database_json_roundtrip() {
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
            ],
        );
        let db = Database::new(Schema::new().with("R", 2)).with("R", tri);
        let json = to_json(&db).unwrap();
        let back = from_json(&json).unwrap();
        assert!(back.equivalent(&db));
    }

    #[test]
    fn rational_constants_survive() {
        let pts = GeneralizedRelation::from_points(1, vec![vec![rat(-7, 3)]]);
        let db = Database::new(Schema::new().with("S", 1)).with("S", pts);
        let back = from_json(&to_json(&db).unwrap()).unwrap();
        assert!(back.get("S").unwrap().contains_point(&[rat(-7, 3)]));
    }

    #[test]
    fn experiment_rows_serialize() {
        let rows = vec![ExperimentRow {
            experiment: "E4".into(),
            label: "path n=8".into(),
            values: vec![("stages".into(), 8.0), ("size".into(), 120.0)],
        }];
        let json = rows_to_json(&rows).unwrap();
        assert!(json.contains("E4"));
        let back: Vec<ExperimentRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
    }
}
