//! JSON interchange for databases and experiment output.
//!
//! Not part of the paper — an engineering convenience: databases, relations
//! and experiment tables serialize to JSON for inspection and for the
//! experiment harness's machine-readable output.
//!
//! The writer and reader are self-contained: the grammar needed here is
//! tiny and fixed — objects, arrays, strings, numbers — and keeping it
//! in-tree lets the engine build in hermetic environments where no
//! package registry is reachable.

use dco_core::prelude::{
    Atom, CompOp, Database, GeneralizedRelation, GeneralizedTuple, Rational, Schema, Term,
};
use dco_linear::{LinAtom, LinRelation, LinTuple, NormalizedAtom};
use std::fmt;

/// Errors while reading or writing the JSON interchange format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the problem was found (writing: 0).
    pub position: usize,
}

impl JsonError {
    fn new(message: impl Into<String>, position: usize) -> JsonError {
        JsonError {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Result alias for JSON interchange operations.
pub type Result<T> = std::result::Result<T, JsonError>;

// ---------------------------------------------------------------------
// A minimal JSON value tree.
// ---------------------------------------------------------------------

/// An in-memory JSON value (the subset this module emits and accepts).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The `null` literal.
    Null,
    /// A string.
    Str(String),
    /// A number (stored as f64; integers round-trip exactly up to 2^53).
    Num(f64),
    /// An ordered list.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object (`None` for other variants).
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// True if this is the `null` literal.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad1 = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Str(s) => write_json_string(out, s),
            Json::Num(n) => write_number(out, *n),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad1);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad1);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Pretty-printed string form (two-space indentation).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Str(s) => write_json_string(out, s),
            Json::Num(n) => write_number(out, *n),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Single-line string form with no insignificant whitespace — the wire
    /// form used by `dco-store`'s line-oriented server protocol.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

/// Parse a JSON document (strings, numbers, arrays, objects).
pub fn parse_json(src: &str) -> Result<Json> {
    let mut p = JsonParser {
        src: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(JsonError::new("trailing input after document", p.pos));
    }
    Ok(v)
}

struct JsonParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(JsonError::new(msg, self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b'n') => {
                for b in *b"null" {
                    self.expect(b)?;
                }
                Ok(Json::Null)
            }
            _ => self.err("expected a JSON value"),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.src.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.src[self.pos + 1..self.pos + 5])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => out.push(c),
                                None => return self.err("bad \\u escape"),
                            }
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; continuation bytes follow the
                    // leading byte, and the input came from a &str so the
                    // sequence is valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.src.len() && (self.src[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.src[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8 in string"),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| JsonError::new("invalid number bytes", start))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("bad number {text:?}"), start))
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Database <-> JSON.
// ---------------------------------------------------------------------

fn term_to_string(t: &Term) -> String {
    match t.as_var() {
        Some(v) => format!("v{}", v.0),
        None => t.as_const().expect("term is var or const").to_string(),
    }
}

fn term_from_string(s: &str) -> Result<Term> {
    if let Some(idx) = s.strip_prefix('v') {
        if let Ok(i) = idx.parse::<u32>() {
            return Ok(Term::var(i));
        }
    }
    s.parse::<Rational>()
        .map(Term::cst)
        .map_err(|e| JsonError::new(format!("bad term {s:?}: {e}"), 0))
}

fn op_to_str(op: CompOp) -> &'static str {
    match op {
        CompOp::Lt => "<",
        CompOp::Le => "<=",
        CompOp::Eq => "=",
    }
}

fn op_from_str(s: &str) -> Result<CompOp> {
    match s {
        "<" => Ok(CompOp::Lt),
        "<=" => Ok(CompOp::Le),
        "=" => Ok(CompOp::Eq),
        other => Err(JsonError::new(format!("bad operator {other:?}"), 0)),
    }
}

fn atom_to_json(a: &Atom) -> Json {
    Json::Arr(vec![
        Json::Str(term_to_string(&a.lhs())),
        Json::Str(op_to_str(a.op()).to_string()),
        Json::Str(term_to_string(&a.rhs())),
    ])
}

fn atom_from_json(v: &Json) -> Result<Vec<Atom>> {
    let items = v
        .as_arr()
        .filter(|a| a.len() == 3)
        .ok_or_else(|| JsonError::new("atom must be a [lhs, op, rhs] triple", 0))?;
    let get = |i: usize| -> Result<&str> {
        items[i]
            .as_str()
            .ok_or_else(|| JsonError::new("atom component must be a string", 0))
    };
    let lhs = term_from_string(get(0)?)?;
    let op = op_from_str(get(1)?)?;
    let rhs = term_from_string(get(2)?)?;
    // Already-normalized atoms written by `atom_to_json` re-normalize to
    // themselves, so a write/read cycle is the identity.
    Atom::normalized(lhs, op, rhs).ok_or_else(|| JsonError::new("atom is trivially false", 0))
}

/// Serialize one generalized relation to a [`Json`] value (for embedding
/// inside larger documents — e.g. the store server's query responses).
pub fn relation_to_json(rel: &GeneralizedRelation) -> Json {
    Json::Obj(vec![
        ("arity".to_string(), Json::Num(rel.arity() as f64)),
        (
            "tuples".to_string(),
            Json::Arr(
                rel.tuples()
                    .iter()
                    .map(|t| Json::Arr(t.atoms().iter().map(atom_to_json).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// Inverse of [`relation_to_json`].
pub fn relation_from_json(v: &Json) -> Result<GeneralizedRelation> {
    let arity = v
        .get("arity")
        .and_then(Json::as_num)
        .ok_or_else(|| JsonError::new("relation missing numeric arity", 0))? as u32;
    let tuples = v
        .get("tuples")
        .and_then(Json::as_arr)
        .ok_or_else(|| JsonError::new("relation missing tuples array", 0))?;
    let mut parsed = Vec::with_capacity(tuples.len());
    for t in tuples {
        let atoms = t
            .as_arr()
            .ok_or_else(|| JsonError::new("tuple must be an array of atoms", 0))?;
        let mut flat = Vec::new();
        for a in atoms {
            flat.extend(atom_from_json(a)?);
        }
        parsed.push(GeneralizedTuple::from_atoms(arity, flat));
    }
    Ok(GeneralizedRelation::from_tuples(arity, parsed))
}

/// Serialize one generalized relation to JSON (compact form).
pub fn relation_to_json_str(rel: &GeneralizedRelation) -> String {
    relation_to_json(rel).compact()
}

/// Deserialize one generalized relation from JSON.
pub fn relation_from_json_str(src: &str) -> Result<GeneralizedRelation> {
    relation_from_json(&parse_json(src)?)
}

/// Serialize a database to pretty JSON.
pub fn to_json(db: &Database) -> Result<String> {
    let schema = Json::Obj(
        db.schema()
            .relations()
            .map(|(n, a)| (n.to_string(), Json::Num(a as f64)))
            .collect(),
    );
    let relations = Json::Obj(
        db.relations()
            .map(|(n, r)| (n.to_string(), relation_to_json(r)))
            .collect(),
    );
    let doc = Json::Obj(vec![
        ("schema".to_string(), schema),
        ("relations".to_string(), relations),
    ]);
    Ok(doc.pretty())
}

/// Deserialize a database from JSON.
pub fn from_json(src: &str) -> Result<Database> {
    let doc = parse_json(src)?;
    let schema_obj = doc
        .get("schema")
        .ok_or_else(|| JsonError::new("document missing schema", 0))?;
    let Json::Obj(schema_fields) = schema_obj else {
        return Err(JsonError::new("schema must be an object", 0));
    };
    let mut schema = Schema::new();
    for (name, arity) in schema_fields {
        let a = arity
            .as_num()
            .ok_or_else(|| JsonError::new(format!("arity of {name} must be a number"), 0))?;
        schema = schema.with(name, a as u32);
    }
    let mut db = Database::new(schema);
    if let Some(Json::Obj(rels)) = doc.get("relations") {
        for (name, rel_json) in rels {
            let rel = relation_from_json(rel_json)?;
            db.set(name, rel)
                .map_err(|e| JsonError::new(e.to_string(), 0))?;
        }
    }
    Ok(db)
}

// ---------------------------------------------------------------------
// Linear (FO+) tuples and relations <-> JSON.
// ---------------------------------------------------------------------

fn lin_atom_to_json(a: &LinAtom) -> Json {
    Json::Obj(vec![
        (
            "coeffs".to_string(),
            Json::Arr(
                a.coeffs()
                    .iter()
                    .map(|c| Json::Str(c.to_string()))
                    .collect(),
            ),
        ),
        ("constant".to_string(), Json::Str(a.constant().to_string())),
        ("op".to_string(), Json::Str(op_to_str(a.op()).to_string())),
    ])
}

fn rational_from_json(v: &Json) -> Result<Rational> {
    let s = v
        .as_str()
        .ok_or_else(|| JsonError::new("rational must be a string", 0))?;
    s.parse::<Rational>()
        .map_err(|e| JsonError::new(format!("bad rational {s:?}: {e}"), 0))
}

fn lin_atom_from_json(v: &Json) -> Result<LinAtom> {
    let coeffs = v
        .get("coeffs")
        .and_then(Json::as_arr)
        .ok_or_else(|| JsonError::new("linear atom missing coeffs array", 0))?
        .iter()
        .map(rational_from_json)
        .collect::<Result<Vec<_>>>()?;
    let constant = rational_from_json(
        v.get("constant")
            .ok_or_else(|| JsonError::new("linear atom missing constant", 0))?,
    )?;
    let op = op_from_str(
        v.get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::new("linear atom missing op", 0))?,
    )?;
    // Atoms written by `lin_atom_to_json` are already normalized (genuine
    // constraints, canonical scaling), so normalization is the identity on
    // a write/read cycle; trivially true/false atoms are rejected because
    // the writer can never produce them.
    match LinAtom::normalize(coeffs, constant, op) {
        NormalizedAtom::Atom(a) => Ok(a),
        _ => Err(JsonError::new("linear atom is trivially true/false", 0)),
    }
}

/// Serialize a linear tuple (conjunction of linear atoms) to a JSON value.
pub fn lin_tuple_to_json(t: &LinTuple) -> Json {
    Json::Obj(vec![
        ("arity".to_string(), Json::Num(t.arity() as f64)),
        (
            "atoms".to_string(),
            Json::Arr(t.atoms().iter().map(lin_atom_to_json).collect()),
        ),
    ])
}

/// Deserialize a linear tuple from a JSON value.
pub fn lin_tuple_from_json(v: &Json) -> Result<LinTuple> {
    let arity =
        v.get("arity")
            .and_then(Json::as_num)
            .ok_or_else(|| JsonError::new("linear tuple missing numeric arity", 0))? as u32;
    let atoms = v
        .get("atoms")
        .and_then(Json::as_arr)
        .ok_or_else(|| JsonError::new("linear tuple missing atoms array", 0))?
        .iter()
        .map(lin_atom_from_json)
        .collect::<Result<Vec<_>>>()?;
    Ok(LinTuple::from_atoms(arity, atoms))
}

/// Serialize a linear relation (union of linear tuples) to JSON text.
pub fn lin_relation_to_json(rel: &LinRelation) -> String {
    Json::Obj(vec![
        ("arity".to_string(), Json::Num(rel.arity() as f64)),
        (
            "tuples".to_string(),
            Json::Arr(rel.tuples().iter().map(lin_tuple_to_json).collect()),
        ),
    ])
    .pretty()
}

/// Deserialize a linear relation from JSON text.
pub fn lin_relation_from_json(src: &str) -> Result<LinRelation> {
    let doc = parse_json(src)?;
    let arity = doc
        .get("arity")
        .and_then(Json::as_num)
        .ok_or_else(|| JsonError::new("linear relation missing numeric arity", 0))?
        as u32;
    let tuples = doc
        .get("tuples")
        .and_then(Json::as_arr)
        .ok_or_else(|| JsonError::new("linear relation missing tuples array", 0))?
        .iter()
        .map(lin_tuple_from_json)
        .collect::<Result<Vec<_>>>()?;
    Ok(LinRelation::from_tuples(arity, tuples))
}

// ---------------------------------------------------------------------
// Experiment rows.
// ---------------------------------------------------------------------

/// One row of an experiment table (used by `dco-bench`'s `experiments`
/// binary to emit machine-readable results next to the printed tables).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRow {
    /// Experiment id, e.g. "E4".
    pub experiment: String,
    /// Row label (instance description).
    pub label: String,
    /// Named measurements.
    pub values: Vec<(String, f64)>,
}

/// Serialize experiment rows.
pub fn rows_to_json(rows: &[ExperimentRow]) -> Result<String> {
    let doc = Json::Arr(
        rows.iter()
            .map(|r| {
                Json::Obj(vec![
                    ("experiment".to_string(), Json::Str(r.experiment.clone())),
                    ("label".to_string(), Json::Str(r.label.clone())),
                    (
                        "values".to_string(),
                        Json::Arr(
                            r.values
                                .iter()
                                .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Num(*v)]))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    Ok(doc.pretty())
}

/// Deserialize experiment rows.
pub fn rows_from_json(src: &str) -> Result<Vec<ExperimentRow>> {
    let doc = parse_json(src)?;
    let rows = doc
        .as_arr()
        .ok_or_else(|| JsonError::new("expected an array of rows", 0))?;
    rows.iter()
        .map(|r| {
            let experiment = r
                .get("experiment")
                .and_then(Json::as_str)
                .ok_or_else(|| JsonError::new("row missing experiment", 0))?
                .to_string();
            let label = r
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| JsonError::new("row missing label", 0))?
                .to_string();
            let mut values = Vec::new();
            if let Some(items) = r.get("values").and_then(Json::as_arr) {
                for item in items {
                    let pair = item
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| JsonError::new("value must be a [name, num] pair", 0))?;
                    let k = pair[0]
                        .as_str()
                        .ok_or_else(|| JsonError::new("value name must be a string", 0))?;
                    let v = pair[1]
                        .as_num()
                        .ok_or_else(|| JsonError::new("value must be numeric", 0))?;
                    values.push((k.to_string(), v));
                }
            }
            Ok(ExperimentRow {
                experiment,
                label,
                values,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_core::prelude::*;

    #[test]
    fn database_json_roundtrip() {
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
            ],
        );
        let db = Database::new(Schema::new().with("R", 2)).with("R", tri);
        let json = to_json(&db).unwrap();
        let back = from_json(&json).unwrap();
        assert!(back.equivalent(&db));
    }

    #[test]
    fn rational_constants_survive() {
        let pts = GeneralizedRelation::from_points(1, vec![vec![rat(-7, 3)]]);
        let db = Database::new(Schema::new().with("S", 1)).with("S", pts);
        let back = from_json(&to_json(&db).unwrap()).unwrap();
        assert!(back.get("S").unwrap().contains_point(&[rat(-7, 3)]));
    }

    #[test]
    fn experiment_rows_serialize() {
        let rows = vec![ExperimentRow {
            experiment: "E4".into(),
            label: "path n=8".into(),
            values: vec![("stages".into(), 8.0), ("size".into(), 120.0)],
        }];
        let json = rows_to_json(&rows).unwrap();
        assert!(json.contains("E4"));
        let back = rows_from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].values[0], ("stages".to_string(), 8.0));
    }

    #[test]
    fn parser_reports_errors_with_position() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
        let err = parse_json("[1, #]").unwrap_err();
        assert!(err.position > 0);
    }

    #[test]
    fn null_roundtrips_in_both_writers() {
        let doc = Json::Obj(vec![
            ("a".to_string(), Json::Null),
            ("b".to_string(), Json::Arr(vec![Json::Null, Json::Num(1.0)])),
        ]);
        assert_eq!(doc.compact(), "{\"a\":null,\"b\":[null,1]}");
        assert_eq!(parse_json(&doc.compact()).unwrap(), doc);
        assert_eq!(parse_json(&doc.pretty()).unwrap(), doc);
        assert!(parse_json("nul").is_err());
        assert!(parse_json("nullx").is_err());
    }

    #[test]
    fn strings_escape_roundtrip() {
        let doc = Json::Obj(vec![(
            "k\"ey".to_string(),
            Json::Str("line1\nline2\tqu\"ote\\ λ".to_string()),
        )]);
        let back = parse_json(&doc.pretty()).unwrap();
        assert_eq!(back, doc);
    }
}
