//! Bit-level standard encoding.
//!
//! The complexity results of §3–§4 are stated against Turing-machine inputs
//! — *bit strings*. [`crate::standard`] gives the human-readable byte
//! encoding; this module gives the actual bit-level format with a
//! self-delimiting prefix code, so the experiments can report the paper's
//! `n` exactly:
//!
//! * numerals in Elias-gamma-coded magnitude with a sign bit;
//! * terms, operators, atoms, tuples and relations delimited by 2-bit tags;
//! * everything packed MSB-first into bytes.
//!
//! The decoder inverts the format exactly; round-tripping is property-
//! tested in the crate's test suite.

use dco_core::prelude::*;

/// A growable MSB-first bit buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    bits: Vec<bool>,
}

impl BitVec {
    /// Empty buffer.
    pub fn new() -> BitVec {
        BitVec::default()
    }

    /// Number of bits — the paper's input size `n`.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    fn push(&mut self, b: bool) {
        self.bits.push(b);
    }

    /// Pack into bytes (final partial byte zero-padded).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len().div_ceil(8)];
        for (i, &b) in self.bits.iter().enumerate() {
            if b {
                out[i / 8] |= 1 << (7 - i % 8);
            }
        }
        out
    }

    /// Rehydrate from [`BitVec::to_bytes`] output. `len` is the exact bit
    /// length (the byte form zero-pads the final partial byte, so the
    /// length cannot be recovered from the bytes alone). Returns `None` if
    /// `len` does not fit in `bytes`.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Option<BitVec> {
        if len > bytes.len() * 8 {
            return None;
        }
        let bits = (0..len)
            .map(|i| bytes[i / 8] & (1 << (7 - i % 8)) != 0)
            .collect();
        Some(BitVec { bits })
    }
}

/// Bit reader over a [`BitVec`].
struct Reader<'a> {
    bits: &'a [bool],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self) -> Result<bool, BitDecodeError> {
        let b = self
            .bits
            .get(self.pos)
            .copied()
            .ok_or(BitDecodeError("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take_n(&mut self, n: usize) -> Result<u64, BitDecodeError> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.take()? as u64;
        }
        Ok(v)
    }
}

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitDecodeError(pub &'static str);

impl std::fmt::Display for BitDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit decode error: {}", self.0)
    }
}

impl std::error::Error for BitDecodeError {}

/// Elias-gamma code for `n ≥ 1`: ⌊log₂n⌋ zeros, then n's binary digits.
fn put_gamma(out: &mut BitVec, n: u64) {
    debug_assert!(n >= 1);
    let width = 64 - n.leading_zeros() as usize;
    for _ in 0..width - 1 {
        out.push(false);
    }
    for i in (0..width).rev() {
        out.push((n >> i) & 1 == 1);
    }
}

fn get_gamma(r: &mut Reader) -> Result<u64, BitDecodeError> {
    let mut zeros = 0;
    loop {
        if r.take()? {
            break;
        }
        zeros += 1;
        if zeros > 64 {
            return Err(BitDecodeError("gamma code too long"));
        }
    }
    let rest = r.take_n(zeros)?;
    Ok((1u64 << zeros) | rest)
}

/// Signed integer: sign bit + gamma(|n| + 1).
fn put_int(out: &mut BitVec, n: i128) {
    out.push(n < 0);
    put_gamma(out, n.unsigned_abs() as u64 + 1);
}

fn get_int(r: &mut Reader) -> Result<i128, BitDecodeError> {
    let neg = r.take()?;
    let mag = get_gamma(r)? - 1;
    let v = mag as i128;
    Ok(if neg { -v } else { v })
}

fn put_rational(out: &mut BitVec, q: &Rational) {
    put_int(out, q.numer());
    put_gamma(out, q.denom() as u64);
}

fn get_rational(r: &mut Reader) -> Result<Rational, BitDecodeError> {
    let num = get_int(r)?;
    let den = get_gamma(r)? as i128;
    Rational::new(num, den).map_err(|_| BitDecodeError("invalid rational"))
}

fn put_term(out: &mut BitVec, t: &Term) {
    match t {
        Term::Var(v) => {
            out.push(false);
            put_gamma(out, v.0 as u64 + 1);
        }
        Term::Const(c) => {
            out.push(true);
            put_rational(out, c);
        }
    }
}

fn get_term(r: &mut Reader) -> Result<Term, BitDecodeError> {
    if r.take()? {
        Ok(Term::Const(get_rational(r)?))
    } else {
        Ok(Term::var((get_gamma(r)? - 1) as u32))
    }
}

fn put_op(out: &mut BitVec, op: CompOp) {
    match op {
        CompOp::Lt => {
            out.push(false);
            out.push(false);
        }
        CompOp::Le => {
            out.push(false);
            out.push(true);
        }
        CompOp::Eq => {
            out.push(true);
            out.push(false);
        }
    }
}

fn get_op(r: &mut Reader) -> Result<CompOp, BitDecodeError> {
    match (r.take()?, r.take()?) {
        (false, false) => Ok(CompOp::Lt),
        (false, true) => Ok(CompOp::Le),
        (true, false) => Ok(CompOp::Eq),
        (true, true) => Err(BitDecodeError("invalid operator tag")),
    }
}

/// Encode a relation to bits.
pub fn encode_relation(rel: &GeneralizedRelation) -> BitVec {
    let mut out = BitVec::new();
    put_gamma(&mut out, rel.arity() as u64 + 1);
    put_gamma(&mut out, rel.len() as u64 + 1);
    for t in rel.tuples() {
        put_gamma(&mut out, t.len() as u64 + 1);
        for a in t.atoms() {
            put_term(&mut out, &a.lhs());
            put_op(&mut out, a.op());
            put_term(&mut out, &a.rhs());
        }
    }
    out
}

/// Decode a relation from bits.
pub fn decode_relation(bits: &BitVec) -> Result<GeneralizedRelation, BitDecodeError> {
    let mut r = Reader {
        bits: &bits.bits,
        pos: 0,
    };
    let arity = (get_gamma(&mut r)? - 1) as u32;
    let ntuples = (get_gamma(&mut r)? - 1) as usize;
    let mut rel = GeneralizedRelation::empty(arity);
    for _ in 0..ntuples {
        let natoms = (get_gamma(&mut r)? - 1) as usize;
        let mut atoms = Vec::with_capacity(natoms);
        for _ in 0..natoms {
            let lhs = get_term(&mut r)?;
            let op = get_op(&mut r)?;
            let rhs = get_term(&mut r)?;
            match Atom::normalized(lhs, op, rhs) {
                Some(v) if v.len() == 1 => atoms.push(v[0]),
                _ => return Err(BitDecodeError("non-canonical atom")),
            }
        }
        rel.insert(GeneralizedTuple::from_atoms(arity, atoms));
    }
    Ok(rel)
}

/// The bit length of a database's standard encoding — the exact `n` the
/// paper's data-complexity statements quantify over.
pub fn bit_size(db: &Database) -> usize {
    db.relations()
        .map(|(_, rel)| encode_relation(rel).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_roundtrip() {
        let mut out = BitVec::new();
        for n in [1u64, 2, 3, 7, 8, 100, 12345] {
            put_gamma(&mut out, n);
        }
        let mut r = Reader {
            bits: &out.bits,
            pos: 0,
        };
        for n in [1u64, 2, 3, 7, 8, 100, 12345] {
            assert_eq!(get_gamma(&mut r).unwrap(), n);
        }
    }

    #[test]
    fn int_roundtrip() {
        let mut out = BitVec::new();
        for n in [0i128, 1, -1, 42, -42, 1_000_000] {
            put_int(&mut out, n);
        }
        let mut r = Reader {
            bits: &out.bits,
            pos: 0,
        };
        for n in [0i128, 1, -1, 42, -42, 1_000_000] {
            assert_eq!(get_int(&mut r).unwrap(), n);
        }
    }

    #[test]
    fn relation_roundtrip() {
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(-7, 3))),
            ],
        );
        let bits = encode_relation(&tri);
        let back = decode_relation(&bits).unwrap();
        assert!(back.equivalent(&tri));
    }

    #[test]
    fn empty_and_universe_roundtrip() {
        for rel in [
            GeneralizedRelation::empty(3),
            GeneralizedRelation::universe(2),
        ] {
            let back = decode_relation(&encode_relation(&rel)).unwrap();
            assert!(back.equivalent(&rel));
        }
    }

    #[test]
    fn bit_size_grows_with_magnitude() {
        // gamma coding: larger constants take more bits — the logarithmic
        // dependence the paper's encoding has.
        let small = GeneralizedRelation::from_points(1, vec![vec![rat(1, 1)]]);
        let large = GeneralizedRelation::from_points(1, vec![vec![rat(1_000_000, 1)]]);
        assert!(encode_relation(&large).len() > encode_relation(&small).len());
    }

    #[test]
    fn bytes_packing() {
        let mut bv = BitVec::new();
        for _ in 0..9 {
            bv.push(true);
        }
        let bytes = bv.to_bytes();
        assert_eq!(bytes.len(), 2);
        assert_eq!(bytes[0], 0xFF);
        assert_eq!(bytes[1], 0x80);
    }

    #[test]
    fn truncated_input_rejected() {
        let tri = GeneralizedRelation::from_points(1, vec![vec![rat(5, 1)]]);
        let bits = encode_relation(&tri);
        let truncated = BitVec {
            bits: bits.bits[..bits.bits.len() / 2].to_vec(),
        };
        assert!(decode_relation(&truncated).is_err());
    }
}
