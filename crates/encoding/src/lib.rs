//! # dco-encoding — standard encodings of dense-order databases
//!
//! §3–§4 of *Dense-Order Constraint Databases* (Grumbach & Su, PODS 1995)
//! lean on three encoding facts, all implemented here:
//!
//! * the **standard encoding** of a database as the byte string of its
//!   quantifier-free representation — the data-complexity input measure
//!   ([`standard`]);
//! * the **integer-only homeomorphism** — constants mapped to consecutive
//!   integers respecting order, "zero is zero" — under which every query's
//!   answer transfers by genericity ([`integerize()`][integerize]);
//! * the **compact rectangle encoding** — "four constants along with a
//!   flag" — for the boxy relations of the motivating examples ([`boxes`]).
//!
//! Plus JSON interchange for tooling ([`json`]).

#![warn(missing_docs)]

pub mod bits;
pub mod boxes;
pub mod integerize;
pub mod json;
pub mod standard;

pub use bits::{bit_size, decode_relation, encode_relation, BitDecodeError, BitVec};
pub use boxes::{compress, BoxEncoding, CompressedRelation, Side};
pub use integerize::{integerize, is_integer_defined, ConstantMap};
pub use json::{
    from_json, lin_relation_from_json, lin_relation_to_json, lin_tuple_from_json,
    lin_tuple_to_json, parse_json, relation_from_json, relation_from_json_str, relation_to_json,
    relation_to_json_str, to_json, Json, JsonError,
};
pub use standard::{decode, encode, encoded_size, DecodeError};
