//! The integer-only homeomorphism of §4.
//!
//! "The restriction is harmless since dense-order databases are homeomorphic
//! (transformation on the axis) to databases representable with only
//! integers, and the representation over integers only can be used in
//! practice to avoid the encoding of rationals. […] These rational constants
//! […] are encoded into consecutive integers by respecting their order.
//! Zero is zero."
//!
//! [`integerize`] implements exactly that: collect the constants of a
//! database, map them to consecutive integers preserving order with `0 ↦ 0`
//! (constants below zero become negative integers, above become positive),
//! and rewrite the database. The mapping is an order automorphism of Q
//! restricted to the constants, so by genericity every query commutes with
//! it — which experiment E9 verifies empirically.

use dco_core::prelude::*;
use std::collections::BTreeMap;

/// An order-preserving constant mapping with its inverse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstantMap {
    forward: BTreeMap<Rational, Rational>,
}

impl ConstantMap {
    /// The mapped value of a constant (must be in the map).
    pub fn apply(&self, c: &Rational) -> Rational {
        self.forward[c]
    }

    /// Try to map; `None` for constants outside the map.
    pub fn try_apply(&self, c: &Rational) -> Option<Rational> {
        self.forward.get(c).copied()
    }

    /// The inverse mapping.
    pub fn inverse(&self) -> ConstantMap {
        ConstantMap {
            forward: self.forward.iter().map(|(k, v)| (*v, *k)).collect(),
        }
    }

    /// The pairs, in order.
    pub fn pairs(&self) -> impl Iterator<Item = (&Rational, &Rational)> {
        self.forward.iter()
    }

    /// Extend to a full piecewise-linear automorphism of Q (for applying to
    /// points that are not constants of the database).
    pub fn to_automorphism(&self) -> Automorphism {
        Automorphism::from_anchors(self.forward.iter().map(|(a, b)| (*a, *b)).collect())
            .expect("order-preserving map extends")
    }
}

/// Map the database's constants to consecutive integers respecting order,
/// with zero fixed ("zero is zero"). Returns the rewritten database and the
/// mapping used.
pub fn integerize(db: &Database) -> (Database, ConstantMap) {
    let consts: Vec<Rational> = db.constants().into_iter().collect();
    // Position of zero in the sorted constants (or insertion point).
    let zero = Rational::ZERO;
    let below = consts.iter().filter(|c| **c < zero).count() as i64;
    let mut forward = BTreeMap::new();
    let mut non_zero_rank = 0i64;
    let has_zero = consts.contains(&zero);
    for c in &consts {
        let target = if *c == zero {
            0
        } else {
            let rank = non_zero_rank - below; // −below … for the smallest
            non_zero_rank += 1;
            // ranks below zero: −below..−1; at/above: 1.. (skip 0 if zero present,
            // else 0 is unused anyway — but "zero is zero" demands we never map
            // a nonzero constant to 0, so shift non-negative ranks up by 1)
            if rank < 0 {
                rank
            } else {
                rank + 1
            }
        };
        forward.insert(*c, Rational::from_int(target));
    }
    let _ = has_zero;
    let map = ConstantMap { forward };
    let auto = if consts.is_empty() {
        Automorphism::identity()
    } else {
        map.to_automorphism()
    };
    (db.apply_automorphism(&auto), map)
}

/// Is every constant of the database an integer?
pub fn is_integer_defined(db: &Database) -> bool {
    db.constants().iter().all(|c| c.is_integer())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with(points: &[i128], den: i128) -> Database {
        let rel = GeneralizedRelation::from_points(1, points.iter().map(|&p| vec![rat(p, den)]));
        Database::new(Schema::new().with("S", 1)).with("S", rel)
    }

    #[test]
    fn rationals_become_consecutive_integers() {
        // constants 1/3 < 1/2 < 3/4 ↦ 1, 2, 3
        let db = Database::new(Schema::new().with("S", 1)).with(
            "S",
            GeneralizedRelation::from_points(
                1,
                vec![vec![rat(1, 3)], vec![rat(1, 2)], vec![rat(3, 4)]],
            ),
        );
        let (idb, map) = integerize(&db);
        assert!(is_integer_defined(&idb));
        assert_eq!(map.apply(&rat(1, 3)), rat(1, 1));
        assert_eq!(map.apply(&rat(1, 2)), rat(2, 1));
        assert_eq!(map.apply(&rat(3, 4)), rat(3, 1));
        assert!(idb.get("S").unwrap().contains_point(&[rat(2, 1)]));
    }

    #[test]
    fn zero_is_zero() {
        // constants −1/2 < 0 < 7/2 ↦ −1, 0, 1
        let db = Database::new(Schema::new().with("S", 1)).with(
            "S",
            GeneralizedRelation::from_points(
                1,
                vec![vec![rat(-1, 2)], vec![rat(0, 1)], vec![rat(7, 2)]],
            ),
        );
        let (_, map) = integerize(&db);
        assert_eq!(map.apply(&Rational::ZERO), Rational::ZERO);
        assert_eq!(map.apply(&rat(-1, 2)), rat(-1, 1));
        assert_eq!(map.apply(&rat(7, 2)), rat(1, 1));
    }

    #[test]
    fn negative_constants_without_zero() {
        // −3/2 < −1/3 ↦ −2, −1 (still avoiding 0 for nonzero constants)
        let db = db_with(&[-3, -1], 2); // -3/2, -1/2
        let (_, map) = integerize(&db);
        assert_eq!(map.apply(&rat(-3, 2)), rat(-2, 1));
        assert_eq!(map.apply(&rat(-1, 2)), rat(-1, 1));
    }

    #[test]
    fn order_preserved() {
        let db = db_with(&[5, 1, -7, 3], 3);
        let (_, map) = integerize(&db);
        let mut prev: Option<Rational> = None;
        for (src, dst) in map.pairs() {
            let _ = src;
            if let Some(p) = prev {
                assert!(p < *dst);
            }
            prev = Some(*dst);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let db = db_with(&[1, 2, 5], 7);
        let (idb, map) = integerize(&db);
        let back = idb.apply_automorphism(&map.inverse().to_automorphism());
        assert!(back.equivalent(&db));
    }

    #[test]
    fn empty_database() {
        let db = Database::new(Schema::new().with("S", 1));
        let (idb, _) = integerize(&db);
        assert!(idb.get("S").unwrap().is_empty());
    }
}
