//! Experiment runners E1–E9: one per claim of the paper.
//!
//! Each function runs its experiment and returns printable rows; the
//! `experiments` binary formats them as the tables recorded in
//! `EXPERIMENTS.md`. The paper is a theory paper — its "evaluation" is a
//! set of theorems — so each experiment is the empirical face of one
//! theorem: scaling shapes for the complexity results, EF-game witnesses
//! for the inexpressibility results, and direct constructions for the
//! capture and hierarchy results (see DESIGN.md §5 for the mapping).

use dco::complex::{CCalc, CFormula, RatTerm, SetRef};
use dco::datalog::programs::{cardinality_is_even, is_connected as datalog_connected};
use dco::ef::structure::generators::{cycle, linear_order, two_cycles};
use dco::ef::{ef_equivalent, encode_binary};
use dco::encoding::{compress, encode, encoded_size, integerize};
use dco::geo::instances::{broken_staircase, staircase};
use dco::geo::region::Region;
use dco::geo::{component_count, is_connected_via_datalog};
use dco::prelude::*;
use std::time::Instant;

use crate::workloads::{interval_db, path_graph, point_set, seventhify};

/// One printable row of an experiment table.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Row label.
    pub label: String,
    /// Column name → printable value.
    pub values: Vec<(String, String)>,
}

impl ExperimentRow {
    fn new(label: impl Into<String>) -> ExperimentRow {
        ExperimentRow {
            label: label.into(),
            values: Vec::new(),
        }
    }

    fn col(mut self, name: &str, value: impl std::fmt::Display) -> ExperimentRow {
        self.values.push((name.to_string(), value.to_string()));
        self
    }
}

/// Print rows as an aligned table.
pub fn print_table(title: &str, rows: &[ExperimentRow]) {
    println!("\n== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let mut headers: Vec<String> = vec!["instance".to_string()];
    headers.extend(rows[0].values.iter().map(|(n, _)| n.clone()));
    let mut table: Vec<Vec<String>> = vec![headers];
    for r in rows {
        let mut line = vec![r.label.clone()];
        line.extend(r.values.iter().map(|(_, v)| v.clone()));
        table.push(line);
    }
    let widths: Vec<usize> = (0..table[0].len())
        .map(|c| table.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    for row in &table {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(cell, w)| format!("{cell:>w$}"))
            .collect();
        println!("  {}", line.join("  "));
    }
}

/// Analyzer preflight: every query and program an experiment evaluates is
/// checked by `dco-analysis` first. The diagnostic count is logged so the
/// experiment record shows the inputs were validated; an error-severity
/// finding means the experiment itself is broken, so it aborts.
fn preflight(name: &str, diagnostics: &[Diagnostic]) {
    println!("  [preflight] {name}: {} diagnostic(s)", diagnostics.len());
    for d in diagnostics {
        println!("  [preflight]   {d}");
    }
    assert!(
        !has_errors(diagnostics),
        "{name} was rejected by static analysis"
    );
}

fn time_ms(mut f: impl FnMut()) -> f64 {
    // median of 3
    let mut samples = Vec::with_capacity(3);
    for _ in 0..3 {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[1]
}

// ---------------------------------------------------------------------
// E1 — Theorem 4.1: FO+ has uniform AC⁰ data complexity over inputs
// defined with integers. Empirical face: a fixed FO+ query over growing
// integer-interval databases; per-disjunct work stays flat, total grows
// near-linearly in the encoding size.
// ---------------------------------------------------------------------

/// Run E1; `sizes` are instance scales (number of intervals).
pub fn e1(sizes: &[usize]) -> Vec<ExperimentRow> {
    let f = parse_formula("exists y . (S(y) & y <= x & x <= y + 1)").unwrap();
    // FO+ queries legitimately leave the dense-order fragment.
    let opts = AnalysisOptions {
        require_dense_order: false,
        ..AnalysisOptions::default()
    };
    preflight(
        "E1 query",
        &analyze_formula(&f, Some(interval_db(1).schema()), &opts),
    );
    sizes
        .iter()
        .map(|&n| {
            let db = interval_db(n);
            assert!(dco::encoding::is_integer_defined(&db));
            let size = encoded_size(&db);
            let mut out_size = 0;
            let ms = time_ms(|| {
                let q = eval_linear(&db, &f).expect("FO+ evaluates");
                out_size = q.relation.size();
            });
            ExperimentRow::new(format!("n={n}"))
                .col("enc bytes", size)
                .col("eval ms", format!("{ms:.2}"))
                .col("output atoms", out_size)
        })
        .collect()
}

// ---------------------------------------------------------------------
// E2 — Theorem 4.2: graph connectivity and parity are not in FO+.
// Empirical face: for each rank r, a connected/disconnected (odd/even)
// pair that is EF-r-equivalent, while Datalog¬ (Theorem 4.4) separates
// every pair.
// ---------------------------------------------------------------------

/// Run E2 for ranks `1..=max_rank` (connectivity search capped for time).
pub fn e2(max_rank: usize) -> Vec<ExperimentRow> {
    let mut rows = Vec::new();
    // Parity: minimal m with linear orders L_m ≡_r L_{m+1} (known: 2^r − 1).
    for r in 1..=max_rank {
        let mut m = 1;
        let m = loop {
            if ef_equivalent(&linear_order(m), &linear_order(m + 1), r) {
                break m;
            }
            m += 1;
            assert!(m < 64, "no parity witness below 64");
        };
        rows.push(
            ExperimentRow::new(format!("parity r={r}"))
                .col("witness", format!("L{m} vs L{}", m + 1))
                .col("EF-equiv", "yes")
                .col("theory", format!("2^{r}-1={}", (1 << r) - 1))
                .col("engine separates", {
                    let a = cardinality_is_even(&point_set(m)).unwrap();
                    let b = cardinality_is_even(&point_set(m + 1)).unwrap();
                    format!("{}", a != b)
                }),
        );
    }
    // Connectivity: minimal n with C_{2n} ≡_r C_n ⊎ C_n.
    for r in 1..=max_rank.min(2) {
        let mut n = 3;
        let n = loop {
            if ef_equivalent(&cycle(2 * n), &two_cycles(n, n), r) {
                break n;
            }
            n += 1;
            assert!(n < 16, "no connectivity witness below 16");
        };
        let one = cycle(2 * n);
        let two = two_cycles(n, n);
        let verts = |k: usize| point_set(k);
        let edges = |s: &dco::ef::FinStructure| {
            GeneralizedRelation::from_points(
                2,
                s.tuples("e")
                    .unwrap()
                    .iter()
                    .map(|t| vec![rat(t[0] as i128 + 1, 1), rat(t[1] as i128 + 1, 1)])
                    .collect::<Vec<_>>(),
            )
        };
        let c1 = datalog_connected(&verts(2 * n), &edges(&one)).unwrap();
        let c2 = datalog_connected(&verts(2 * n), &edges(&two)).unwrap();
        rows.push(
            ExperimentRow::new(format!("connectivity r={r}"))
                .col("witness", format!("C{} vs C{n}+C{n}", 2 * n))
                .col("EF-equiv", "yes")
                .col("theory", "cycles look locally like paths")
                .col("engine separates", format!("{}", c1 && !c2)),
        );
    }
    rows
}

// ---------------------------------------------------------------------
// E3 — Theorem 4.3: region connectivity is not linear; it is PTIME
// (hence Datalog¬ by Theorem 4.4). Empirical face: staircase vs broken
// staircase, EF-equivalent encodings at each rank, separated by the
// engine (both back-ends agreeing).
// ---------------------------------------------------------------------

/// Run E3 for ranks `1..=max_rank`.
pub fn e3(max_rank: usize) -> Vec<ExperimentRow> {
    let mut rows = Vec::new();
    for r in 1..=max_rank {
        // grow the staircase until the encodings are r-equivalent
        let mut n = 3;
        let found = loop {
            let good = staircase(n);
            let bad = broken_staircase(n, n / 2 - 1);
            let eg = encode_binary(good.relation()).expect("staircases are boxy");
            let eb = encode_binary(bad.relation()).expect("staircases are boxy");
            if ef_equivalent(&eg, &eb, r) {
                break Some((n, good, bad));
            }
            n += 1;
            if n > 10 {
                break None;
            }
        };
        match found {
            Some((n, good, bad)) => {
                let cg = component_count(&good);
                let cb = component_count(&bad);
                let dg = is_connected_via_datalog(&good);
                let db_ = is_connected_via_datalog(&bad);
                rows.push(
                    ExperimentRow::new(format!("r={r}"))
                        .col("witness", format!("staircase({n}) vs broken({n})"))
                        .col("EF-equiv", "yes")
                        .col("components", format!("{cg} vs {cb}"))
                        .col("datalog agrees", format!("{}", dg && !db_)),
                );
            }
            None => {
                rows.push(
                    ExperimentRow::new(format!("r={r}"))
                        .col("witness", "(none ≤ 10 steps)")
                        .col("EF-equiv", "no")
                        .col("components", "-")
                        .col("datalog agrees", "-"),
                );
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------
// E4 — Theorem 4.4: inflationary Datalog¬ = PTIME. Empirical face:
// (a) the fixpoint engine's cost on TC grows polynomially with input size;
// (b) capture machinery: integer order-encoding round-trips through the
//     engine (E9 covers the homeomorphism half).
// ---------------------------------------------------------------------

/// Run E4; `sizes` are path lengths.
pub fn e4(sizes: &[usize]) -> Vec<ExperimentRow> {
    let program = parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .unwrap();
    preflight(
        "E4 program",
        &analyze_program(
            &program,
            Some(path_graph(2).schema()),
            &AnalysisOptions::default(),
        ),
    );
    sizes
        .iter()
        .map(|&n| {
            let db = path_graph(n);
            let size = encoded_size(&db);
            let mut stages = 0;
            let mut final_size = 0;
            let ms = time_ms(|| {
                let fix = run_datalog(&program, &db).expect("fixpoint");
                stages = fix.stats.stages;
                final_size = fix.stats.final_size;
            });
            ExperimentRow::new(format!("path n={n}"))
                .col("enc bytes", size)
                .col("stages", stages)
                .col("tc atoms", final_size)
                .col("eval ms", format!("{ms:.2}"))
        })
        .collect()
}

// ---------------------------------------------------------------------
// E5 — Theorem 5.2: PTIME ⊆ C-CALC₁ ⊆ PSPACE. Empirical face: TC (a
// PTIME query) expressed with one set variable evaluates correctly, while
// the evaluation enumerates 2^#cells set candidates; Datalog¬ computes
// the same query polynomially.
// ---------------------------------------------------------------------

fn ccalc_reach(a: i64, b: i64) -> CFormula {
    use CFormula as F;
    let closed = F::ForallRat(
        "u".into(),
        Box::new(F::ForallRat(
            "v".into(),
            Box::new(CFormula::implies(
                F::And(vec![
                    F::MemTuple(vec![RatTerm::var("u")], SetRef::Var("S".into())),
                    F::Pred("e".into(), vec![RatTerm::var("u"), RatTerm::var("v")]),
                ]),
                F::MemTuple(vec![RatTerm::var("v")], SetRef::Var("S".into())),
            )),
        )),
    );
    F::ForallSet(
        "S".into(),
        1,
        Box::new(CFormula::implies(
            F::And(vec![
                F::MemTuple(
                    vec![RatTerm::cst(rat(a as i128, 1))],
                    SetRef::Var("S".into()),
                ),
                closed,
            ]),
            F::MemTuple(
                vec![RatTerm::cst(rat(b as i128, 1))],
                SetRef::Var("S".into()),
            ),
        )),
    )
}

/// Run E5; `sizes` are path lengths (keep ≤ 5: the cost is 2^(2n+1)).
pub fn e5(sizes: &[usize]) -> Vec<ExperimentRow> {
    let program = parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .unwrap();
    preflight(
        "E5 program",
        &analyze_program(
            &program,
            Some(path_graph(2).schema()),
            &AnalysisOptions::default(),
        ),
    );
    sizes
        .iter()
        .map(|&n| {
            let db = path_graph(n);
            // C-CALC₁ evaluation
            let mut ccalc_answer = false;
            let mut candidates = 0;
            let ccalc_ms = time_ms(|| {
                let mut ev = CCalc::new(&db);
                ccalc_answer = ev.eval_sentence(&ccalc_reach(1, n as i64)).expect("in cap");
                candidates = ev.stats().set_candidates;
            });
            // Datalog control
            let mut datalog_answer = false;
            let datalog_ms = time_ms(|| {
                let fix = run_datalog(&program, &db).expect("fixpoint");
                datalog_answer = fix
                    .database
                    .get("tc")
                    .expect("tc")
                    .contains_point(&[rat(1, 1), rat(n as i128, 1)]);
            });
            assert_eq!(ccalc_answer, datalog_answer, "engines must agree");
            ExperimentRow::new(format!("path n={n}"))
                .col("reach(1,n)", ccalc_answer)
                .col("C-CALC1 candidates", candidates)
                .col("C-CALC1 ms", format!("{ccalc_ms:.2}"))
                .col("Datalog ms", format!("{datalog_ms:.2}"))
        })
        .collect()
}

// ---------------------------------------------------------------------
// E6 — Theorems 5.3–5.5: the set-height hierarchy H_i. Empirical face:
// the active domain of a height-i variable is an i-fold exponential of
// the cell count; measured directly, with timings for heights 1 and 2 on
// tiny inputs.
// ---------------------------------------------------------------------

/// Run E6 for constant counts `1..=max_consts`.
pub fn e6(max_consts: usize) -> Vec<ExperimentRow> {
    use CFormula as F;
    (1..=max_consts)
        .map(|m| {
            let s = GeneralizedRelation::from_points(
                1,
                (0..m).map(|i| vec![rat(i as i128, 1)]).collect::<Vec<_>>(),
            );
            let db = Database::new(Schema::new().with("s", 1)).with("s", s);
            let cells = CCalc::new(&db).cells(1);
            // height-1 sentence: ∃S ∀x (x ∈ S ↔ s(x)) — finds the exact set
            let h1 = F::ExistsSet(
                "S".into(),
                1,
                Box::new(F::ForallRat(
                    "x".into(),
                    Box::new(F::And(vec![
                        CFormula::implies(
                            F::MemTuple(vec![RatTerm::var("x")], SetRef::Var("S".into())),
                            F::Pred("s".into(), vec![RatTerm::var("x")]),
                        ),
                        CFormula::implies(
                            F::Pred("s".into(), vec![RatTerm::var("x")]),
                            F::MemTuple(vec![RatTerm::var("x")], SetRef::Var("S".into())),
                        ),
                    ])),
                )),
            );
            let mut h1_ok = false;
            let h1_ms = time_ms(|| {
                let mut ev = CCalc::new(&db);
                h1_ok = ev.eval_sentence(&h1).expect("in cap");
            });
            // height-2 sentence (only for tiny cell counts): ∃T ∃S (S ∈ T)
            let h2 = F::ExistsSetSet(
                "T".into(),
                1,
                Box::new(F::ExistsSet(
                    "S".into(),
                    1,
                    Box::new(F::MemSet(SetRef::Var("S".into()), "T".into())),
                )),
            );
            let h2_cell_cap = 4; // 2^(2^n) beyond this is not feasible
            let h2_display = if cells <= h2_cell_cap {
                let mut ok = false;
                let ms = time_ms(|| {
                    let mut ev = CCalc::new(&db);
                    ok = ev.eval_sentence(&h2).expect("in cap");
                });
                format!("{ok} in {ms:.2}ms")
            } else {
                format!("2^(2^{cells}) infeasible")
            };
            assert!(h1_ok);
            ExperimentRow::new(format!("m={m} constants"))
                .col("1-cells", cells)
                .col("height-1 dom", format!("2^{cells}"))
                .col("h1 eval ms", format!("{h1_ms:.2}"))
                .col("height-2", h2_display)
        })
        .collect()
}

// ---------------------------------------------------------------------
// E7 — §2's compact encoding: "four constants along with a flag". The
// paper-figure region and growing box unions, generic encoding vs box
// encoding sizes.
// ---------------------------------------------------------------------

/// Run E7; `sizes` are box counts for the synthetic family.
pub fn e7(sizes: &[usize]) -> Vec<ExperimentRow> {
    let mut rows = Vec::new();
    let fig = Region::paper_figure();
    let generic = fig.relation().size();
    let comp = compress(fig.relation());
    rows.push(
        ExperimentRow::new("paper figure")
            .col("generic atoms", generic)
            .col("boxes", comp.boxes.len())
            .col("residual", comp.residual.len())
            .col("compact size", comp.size())
            .col(
                "roundtrip ok",
                comp.to_relation().equivalent(fig.relation()),
            ),
    );
    for &n in sizes {
        let db = crate::workloads::box_db(n);
        let rel = db.get("R").expect("R");
        let comp = compress(rel);
        rows.push(
            ExperimentRow::new(format!("{n} boxes"))
                .col("generic atoms", rel.size())
                .col("boxes", comp.boxes.len())
                .col("residual", comp.residual.len())
                .col("compact size", comp.size())
                .col("roundtrip ok", comp.to_relation().equivalent(rel)),
        );
    }
    rows
}

// ---------------------------------------------------------------------
// E8 — [KKR90], recalled §4: FO has AC⁰ data complexity; evaluation is
// closed-form. Empirical face: fixed FO query over growing inputs, cost
// near-linear, output always finitely representable (re-encodable).
// ---------------------------------------------------------------------

/// Run E8; `sizes` are interval counts.
pub fn e8(sizes: &[usize]) -> Vec<ExperimentRow> {
    let f = parse_formula("exists y . (S(y) & y < x)").unwrap();
    preflight(
        "E8 query",
        &analyze_formula(
            &f,
            Some(interval_db(1).schema()),
            &AnalysisOptions::default(),
        ),
    );
    sizes
        .iter()
        .map(|&n| {
            let db = interval_db(n);
            let size = encoded_size(&db);
            let mut closed_form = 0usize;
            let ms = time_ms(|| {
                let q = eval_fo(&db, &f).expect("FO evaluates");
                // Closure check: answer re-encodes as a database relation.
                let out =
                    Database::new(Schema::new().with("Out", 1)).with("Out", q.relation.narrow(1));
                closed_form = encode(&out).len();
            });
            ExperimentRow::new(format!("n={n}"))
                .col("enc bytes", size)
                .col("eval ms", format!("{ms:.2}"))
                .col("output enc bytes", closed_form)
        })
        .collect()
}

// ---------------------------------------------------------------------
// E9 — §4 remark: dense-order databases are homeomorphic to integer-only
// representations; querying either side gives the same (mapped) answer.
// ---------------------------------------------------------------------

/// Run E9; `sizes` are interval counts.
pub fn e9(sizes: &[usize]) -> Vec<ExperimentRow> {
    let f = parse_formula("exists y . (S(y) & y < x)").unwrap();
    preflight(
        "E9 query",
        &analyze_formula(
            &f,
            Some(interval_db(1).schema()),
            &AnalysisOptions::default(),
        ),
    );
    sizes
        .iter()
        .map(|&n| {
            let rational_db = seventhify(&interval_db(n));
            let (int_db, map) = integerize(&rational_db);
            assert!(dco::encoding::is_integer_defined(&int_db));
            let q_rat = eval_fo(&rational_db, &f).expect("evaluates").relation;
            let q_int = eval_fo(&int_db, &f).expect("evaluates").relation;
            // map the rational-side answer forward and compare
            let mapped = map.to_automorphism().apply_relation(&q_rat);
            let agree = mapped.equivalent(&q_int);
            ExperimentRow::new(format!("n={n}"))
                .col("constants", rational_db.constants().len())
                .col(
                    "integer twin ok",
                    dco::encoding::is_integer_defined(&int_db),
                )
                .col("answers agree", agree)
        })
        .collect()
}
