//! Print every experiment table (E1–E9) from live runs.
//!
//! Usage:
//!   experiments                    # run everything at default scales
//!   experiments e4 e5              # run selected experiments
//!   experiments --quick            # smaller scales (CI-friendly)
//!   experiments --threads N        # force N eval workers for the tables
//!   experiments --bench-json FILE  # perf baselines -> FILE (JSON), no tables
//!   experiments --bench-compare FILE  # re-measure engine_delta rows vs FILE, exit 1 on >30% regression
//!   experiments --verify-parallel  # seq vs parallel divergence check, exit 1 on mismatch

use dco::prelude::{set_eval_config, EvalConfig};
use dco_bench::experiments as ex;
use dco_bench::experiments::print_table;
use dco_bench::perf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let bench_json = args
        .iter()
        .position(|a| a == "--bench-json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    if args.iter().any(|a| a == "--verify-parallel") {
        let n = threads.unwrap_or(4).max(2);
        match perf::verify_parallel(n) {
            Ok(()) => {
                println!("verify-parallel: sequential and {n}-thread results identical");
                return;
            }
            Err(e) => {
                eprintln!("verify-parallel FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = args
        .iter()
        .position(|a| a == "--bench-compare")
        .and_then(|i| args.get(i + 1))
    {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        match perf::bench_compare(&baseline) {
            Ok(report) => {
                for line in report {
                    println!("{line}");
                }
                println!("bench-compare: within 30% of {path}");
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = bench_json {
        let n = threads.unwrap_or(4).max(2);
        let records = perf::run_perf(quick, n);
        let host = std::thread::available_parallelism().map_or(1, |p| p.get());
        let json = perf::write_json(&records, host);
        std::fs::write(&path, &json).expect("write bench json");
        println!(
            "wrote {} records to {path} (host threads: {host})",
            records.len()
        );
        return;
    }

    if let Some(n) = threads {
        set_eval_config(EvalConfig {
            threads: n,
            parallel_threshold: if n > 1 { 1 } else { 192 },
            ..EvalConfig::default()
        });
    }

    let selected: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            let is_flag_value = *i > 0
                && (args[i - 1] == "--threads"
                    || args[i - 1] == "--bench-json"
                    || args[i - 1] == "--bench-compare");
            !a.starts_with("--") && !is_flag_value
        })
        .map(|(_, s)| s.as_str())
        .collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    let small: &[usize] = if quick {
        &[2, 4, 8]
    } else {
        &[2, 4, 8, 16, 32]
    };
    let tiny: &[usize] = if quick { &[2, 3] } else { &[2, 3, 4, 5] };
    let e4_sizes: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16, 24] };

    if want("e1") {
        print_table(
            "E1  Theorem 4.1 — FO+ over integer-defined inputs (AC0 shape)",
            &ex::e1(small),
        );
    }
    if want("e2") {
        print_table(
            "E2  Theorem 4.2 — connectivity & parity not in FO+ (EF witnesses)",
            &ex::e2(if quick { 2 } else { 3 }),
        );
    }
    if want("e3") {
        print_table(
            "E3  Theorem 4.3 — region connectivity not linear (EF on encodings)",
            &ex::e3(if quick { 1 } else { 2 }),
        );
    }
    if want("e4") {
        print_table(
            "E4  Theorem 4.4 — inflationary Datalog¬ = PTIME (fixpoint scaling)",
            &ex::e4(e4_sizes),
        );
    }
    if want("e5") {
        print_table(
            "E5  Theorem 5.2 — PTIME ⊆ C-CALC1 ⊆ PSPACE (TC, both engines)",
            &ex::e5(tiny),
        );
    }
    if want("e6") {
        print_table(
            "E6  Theorems 5.3–5.5 — the set-height hierarchy H_i",
            &ex::e6(if quick { 3 } else { 5 }),
        );
    }
    if want("e7") {
        print_table(
            "E7  §2 — compact 'four constants + flag' box encoding",
            &ex::e7(small),
        );
    }
    if want("e8") {
        print_table(
            "E8  [KKR90]/§4 — FO closed-form evaluation (AC0 shape)",
            &ex::e8(small),
        );
    }
    if want("e9") {
        print_table(
            "E9  §4 — integer-only homeomorphism is harmless",
            &ex::e9(if quick { &[2, 4] } else { &[2, 4, 8, 16] }),
        );
    }
}
