//! Instance generators shared by the experiments and the Criterion benches.

use dco::prelude::*;

/// A unary database of `n` disjoint closed intervals `[3i, 3i+1]` —
/// integer-defined, size Θ(n) under the standard encoding.
///
/// Audit note (`fo_complement` non-monotonicity): the workload itself is
/// monotone in `n` — constants, tuples, and the complement's disjunct count
/// all grow linearly — so when size 24 once ran 8× faster than size 16, the
/// generator was not at fault. The cause was the complement *strategy*
/// threshold: mid sizes fell into the slow cell-decomposition branch while
/// larger sizes overflowed the estimate into the fast syntactic branch. The
/// strategy now always tries syntactic distribution with a width-budget
/// bailout (see `GeneralizedRelation::complement_strategy`), restoring
/// monotone timings; the interval family is kept unchanged so timings stay
/// comparable across baselines.
pub fn interval_db(n: usize) -> Database {
    let tuples = (0..n).map(|i| {
        let lo = 3 * i as i128;
        GeneralizedTuple::from_raw(
            1,
            vec![
                RawAtom::new(Term::cst(rat(lo, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(lo + 1, 1))),
            ],
        )
        .pop()
        .expect("interval tuple is satisfiable")
    });
    Database::new(Schema::new().with("S", 1)).with("S", GeneralizedRelation::from_tuples(1, tuples))
}

/// A binary database of `n` disjoint boxes along the diagonal.
pub fn box_db(n: usize) -> Database {
    let tuples = (0..n).map(|i| {
        let lo = 3 * i as i128;
        GeneralizedTuple::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(lo, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(lo + 1, 1))),
                RawAtom::new(Term::cst(rat(lo, 1)), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(lo + 1, 1))),
            ],
        )
        .pop()
        .expect("box tuple is satisfiable")
    });
    Database::new(Schema::new().with("R", 2)).with("R", GeneralizedRelation::from_tuples(2, tuples))
}

/// A four-relation star join whose cost is dominated by conjunct order.
///
/// * `hub` — `n` vertical strips `[3i, 3i+1] × (-∞, ∞)`;
/// * `wing1` — `n` horizontal strips `(-∞, ∞) × [3i, 3i+1]`;
/// * `wing2` — `⌈n/2⌉` coarser vertical strips `[6i, 6i+2] × (-∞, ∞)`;
/// * `pin` — the single unit box `[0, 1]²`.
///
/// Every hub strip crosses every wing1 strip (different axes are never
/// box-disjoint), so the syntactic left-to-right intersection of
/// `hub(x,y) & wing1(x,y) & wing2(x,y) & pin(x,y)` materialises the full
/// `n × n` grid before `pin` collapses it. A cost-based order starts
/// from `pin` and keeps the accumulator at a single box throughout — the
/// adversarial instance behind the `join_order` bench rows.
pub fn star_join_db(n: usize) -> Database {
    let strip = |axis: u32, lo: i128, hi: i128| {
        GeneralizedTuple::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(lo, 1)), RawOp::Le, Term::var(axis)),
                RawAtom::new(Term::var(axis), RawOp::Le, Term::cst(rat(hi, 1))),
            ],
        )
        .pop()
        .expect("strip is satisfiable")
    };
    let hub = GeneralizedRelation::from_tuples(
        2,
        (0..n).map(|i| strip(0, 3 * i as i128, 3 * i as i128 + 1)),
    );
    let wing1 = GeneralizedRelation::from_tuples(
        2,
        (0..n).map(|i| strip(1, 3 * i as i128, 3 * i as i128 + 1)),
    );
    let wing2 = GeneralizedRelation::from_tuples(
        2,
        (0..n.div_ceil(2)).map(|i| strip(0, 6 * i as i128, 6 * i as i128 + 2)),
    );
    let pin = GeneralizedRelation::from_raw(
        2,
        vec![
            RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(1, 1))),
            RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(1)),
            RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(1, 1))),
        ],
    );
    Database::new(
        Schema::new()
            .with("hub", 2)
            .with("wing1", 2)
            .with("wing2", 2)
            .with("pin", 2),
    )
    .with("hub", hub)
    .with("wing1", wing1)
    .with("wing2", wing2)
    .with("pin", pin)
}

/// A directed path graph `1 → 2 → … → n` as a finite edge relation.
pub fn path_graph(n: usize) -> Database {
    let e = GeneralizedRelation::from_points(
        2,
        (1..n)
            .map(|i| vec![rat(i as i128, 1), rat(i as i128 + 1, 1)])
            .collect::<Vec<_>>(),
    );
    Database::new(Schema::new().with("e", 2)).with("e", e)
}

/// A finite point set `{1, …, n}` (unary).
pub fn point_set(n: usize) -> GeneralizedRelation {
    GeneralizedRelation::from_points(
        1,
        (1..=n).map(|i| vec![rat(i as i128, 1)]).collect::<Vec<_>>(),
    )
}

/// The same database with every integer constant `c` replaced by the
/// rational `c + 1/7` — a non-integer twin for the homeomorphism tests.
pub fn seventhify(db: &Database) -> Database {
    let f = dco::core::automorphism::Automorphism::translation(rat(1, 7));
    db.apply_automorphism(&f)
}
