//! Instance generators shared by the experiments and the Criterion benches.

use dco::prelude::*;

/// A unary database of `n` disjoint closed intervals `[3i, 3i+1]` —
/// integer-defined, size Θ(n) under the standard encoding.
///
/// Audit note (`fo_complement` non-monotonicity): the workload itself is
/// monotone in `n` — constants, tuples, and the complement's disjunct count
/// all grow linearly — so when size 24 once ran 8× faster than size 16, the
/// generator was not at fault. The cause was the complement *strategy*
/// threshold: mid sizes fell into the slow cell-decomposition branch while
/// larger sizes overflowed the estimate into the fast syntactic branch. The
/// strategy now always tries syntactic distribution with a width-budget
/// bailout (see `GeneralizedRelation::complement_strategy`), restoring
/// monotone timings; the interval family is kept unchanged so timings stay
/// comparable across baselines.
pub fn interval_db(n: usize) -> Database {
    let tuples = (0..n).map(|i| {
        let lo = 3 * i as i128;
        GeneralizedTuple::from_raw(
            1,
            vec![
                RawAtom::new(Term::cst(rat(lo, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(lo + 1, 1))),
            ],
        )
        .pop()
        .expect("interval tuple is satisfiable")
    });
    Database::new(Schema::new().with("S", 1)).with("S", GeneralizedRelation::from_tuples(1, tuples))
}

/// A binary database of `n` disjoint boxes along the diagonal.
pub fn box_db(n: usize) -> Database {
    let tuples = (0..n).map(|i| {
        let lo = 3 * i as i128;
        GeneralizedTuple::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(lo, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(lo + 1, 1))),
                RawAtom::new(Term::cst(rat(lo, 1)), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(lo + 1, 1))),
            ],
        )
        .pop()
        .expect("box tuple is satisfiable")
    });
    Database::new(Schema::new().with("R", 2)).with("R", GeneralizedRelation::from_tuples(2, tuples))
}

/// A directed path graph `1 → 2 → … → n` as a finite edge relation.
pub fn path_graph(n: usize) -> Database {
    let e = GeneralizedRelation::from_points(
        2,
        (1..n)
            .map(|i| vec![rat(i as i128, 1), rat(i as i128 + 1, 1)])
            .collect::<Vec<_>>(),
    );
    Database::new(Schema::new().with("e", 2)).with("e", e)
}

/// A finite point set `{1, …, n}` (unary).
pub fn point_set(n: usize) -> GeneralizedRelation {
    GeneralizedRelation::from_points(
        1,
        (1..=n).map(|i| vec![rat(i as i128, 1)]).collect::<Vec<_>>(),
    )
}

/// The same database with every integer constant `c` replaced by the
/// rational `c + 1/7` — a non-integer twin for the homeomorphism tests.
pub fn seventhify(db: &Database) -> Database {
    let f = dco::core::automorphism::Automorphism::translation(rat(1, 7));
    db.apply_automorphism(&f)
}
