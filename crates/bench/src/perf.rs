//! Performance baselines and parallel-vs-sequential verification.
//!
//! Two jobs, both driven from the `experiments` binary:
//!
//! * [`run_perf`] times the hot workloads under the sequential and the
//!   parallel [`EvalConfig`], and the inflationary engine with and
//!   without semi-naive deltas, recording wall time, DNF sizes, and the
//!   satisfiability-cache hit rate. [`write_json`] serialises the
//!   records to `BENCH_results.json` (hand-rolled — no serde in-tree).
//! * [`verify_parallel`] recomputes every workload under 1 thread and
//!   under a forced multi-thread configuration and demands *structurally
//!   identical* results (`==` on the canonical DNF), the determinism
//!   guarantee the parallel layer promises.

use dco::datalog::{parse_program, run_with, EngineConfig, Program};
use dco::prelude::*;
use dco::store::{serve, Client, Store, StoreOptions};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One timed measurement.
#[derive(Debug, Clone)]
pub struct PerfRecord {
    /// Workload name (`tc_chain`, `fo_complement`, `algebra_intersect`, …).
    pub experiment: String,
    /// Instance size parameter.
    pub size: usize,
    /// Configuration label (`seq`, `par4`, `engine_naive`, `engine_delta`).
    pub config: String,
    /// Median-of-3 wall time in milliseconds.
    pub wall_ms: f64,
    /// Disjuncts in the result DNF.
    pub tuples: usize,
    /// Atoms across the result DNF.
    pub atoms: usize,
    /// Satisfiability-cache hits during the measured runs.
    pub cache_hits: u64,
    /// Satisfiability-cache misses during the measured runs.
    pub cache_misses: u64,
    /// Satisfiability-cache evictions during the measured runs.
    pub cache_evictions: u64,
    /// `hits / (hits + misses)`, 0.0 when the cache was untouched.
    pub cache_hit_rate: f64,
    /// Guarded runs that tripped a limit and returned a typed fault
    /// instead of a result (0 for unguarded rows).
    pub aborted: u64,
    /// Parallel workers that panicked and were retried sequentially by
    /// the guard layer (0 for unguarded rows).
    pub worker_retries: u64,
    /// WAL fsyncs the store issued during the run (0 for non-store rows
    /// and for stores opened with fsync disabled). Under group commit
    /// with concurrent writers, `fsyncs / tuples` drops below 1.
    pub fsyncs: u64,
    /// Largest commit batch a single fsync covered (0 for non-store
    /// rows): direct evidence that group commit actually batched.
    pub commit_batch_max: u64,
}

/// Median of three timed runs, in milliseconds.
fn time_ms(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[1]
}

/// `n` constraint edges `[i, i+1/2] × [i+1, i+3/2]`: genuine boxes, so
/// transitive closure cannot take the finite-graph points fast path and
/// every stage runs the full DNF algebra (product, intersect, project).
pub fn chain_db(n: usize) -> Database {
    let tuples = (0..n).map(|i| {
        let lo = 2 * i as i128;
        GeneralizedTuple::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(lo, 2)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(lo + 1, 2))),
                RawAtom::new(Term::cst(rat(lo + 2, 2)), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(lo + 3, 2))),
            ],
        )
        .pop()
        .expect("chain edge is satisfiable")
    });
    Database::new(Schema::new().with("e", 2)).with("e", GeneralizedRelation::from_tuples(2, tuples))
}

fn tc_program() -> Program {
    parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .expect("tc program parses")
}

/// A multi-thread configuration with the fork threshold floored so the
/// parallel code paths run even on small instances.
fn forced_parallel(threads: usize) -> EvalConfig {
    EvalConfig {
        threads,
        parallel_threshold: 1,
        ..EvalConfig::default()
    }
}

/// The adversarial star-join query over [`crate::workloads::star_join_db`].
fn star_join_query() -> Formula {
    parse_formula("hub(x, y) & wing1(x, y) & wing2(x, y) & pin(x, y)")
        .expect("star join query parses")
}

/// One `join_order` row: the star join evaluated either in the written
/// (syntactic) conjunct order or in the statistics-planned order. Both
/// run sequentially — the row pair isolates the planner's contribution.
fn join_order_record(size: usize, config: &str) -> PerfRecord {
    let db = crate::workloads::star_join_db(size);
    let formula = match config {
        "planned" => {
            let stats = dco::analysis::stats::DbStats::of_database(&db);
            dco::analysis::plan_formula(&star_join_query(), &stats)
        }
        _ => star_join_query(),
    };
    relation_record(
        "join_order",
        size,
        config,
        EvalConfig::sequential(),
        move || {
            eval_fo(&db, &formula)
                .expect("star join evaluates")
                .relation
        },
    )
}

/// The seed kernel under a sequential schedule: the "before" row of the
/// before/after pair (`seed` vs `interned` config labels). Same binary,
/// same host — only the kernel fast paths differ.
fn seed_sequential() -> EvalConfig {
    EvalConfig {
        threads: 1,
        ..EvalConfig::seed_kernel()
    }
}

fn relation_record(
    experiment: &str,
    size: usize,
    config: &str,
    cfg: EvalConfig,
    f: impl Fn() -> GeneralizedRelation,
) -> PerfRecord {
    reset_sat_cache();
    let mut result: Option<GeneralizedRelation> = None;
    let wall_ms = time_ms(|| {
        result = Some(with_eval_config(cfg, &f));
    });
    let stats = sat_cache_stats();
    let r = result.expect("workload ran");
    PerfRecord {
        experiment: experiment.to_string(),
        size,
        config: config.to_string(),
        wall_ms,
        tuples: r.len(),
        atoms: r.size(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_evictions: stats.evictions,
        cache_hit_rate: stats.hit_rate(),
        aborted: 0,
        worker_retries: 0,
        fsyncs: 0,
        commit_batch_max: 0,
    }
}

fn engine_record(
    experiment: &str,
    size: usize,
    config: &str,
    cfg: EvalConfig,
    db: &Database,
    program: &Program,
    engine_cfg: &EngineConfig,
) -> PerfRecord {
    reset_sat_cache();
    let mut tuples = 0;
    let mut atoms = 0;
    let wall_ms = time_ms(|| {
        let fix = with_eval_config(cfg, || run_with(program, db, engine_cfg)).expect("fixpoint");
        let tc = fix.database.get("tc").expect("tc defined");
        tuples = tc.len();
        atoms = tc.size();
    });
    let stats = sat_cache_stats();
    PerfRecord {
        experiment: experiment.to_string(),
        size,
        config: config.to_string(),
        wall_ms,
        tuples,
        atoms,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_evictions: stats.evictions,
        cache_hit_rate: stats.hit_rate(),
        aborted: 0,
        worker_retries: 0,
        fsyncs: 0,
        commit_batch_max: 0,
    }
}

/// Time every workload under each configuration. `threads` is the
/// multi-thread worker count (0 = auto).
pub fn run_perf(quick: bool, threads: usize) -> Vec<PerfRecord> {
    let tc_sizes: &[usize] = if quick { &[3, 5] } else { &[4, 8, 12] };
    let fo_sizes: &[usize] = if quick { &[4, 8] } else { &[8, 16, 24] };
    let par_label = format!("par{threads}");
    let program = tc_program();
    let mut out = Vec::new();

    // Transitive closure over constraint chains: the engine comparison
    // (naive full stages vs semi-naive deltas) plus the eval-config pair.
    for &n in tc_sizes {
        let db = chain_db(n);
        let naive = EngineConfig {
            use_deltas: false,
            ..EngineConfig::default()
        };
        out.push(engine_record(
            "tc_chain",
            n,
            "engine_naive",
            EvalConfig::sequential(),
            &db,
            &program,
            &naive,
        ));
        out.push(engine_record(
            "tc_chain",
            n,
            "engine_delta",
            EvalConfig::sequential(),
            &db,
            &program,
            &EngineConfig::default(),
        ));
        // Before/after rows for the kernel itself, same schedule and same
        // engine configuration — only the tuple-kernel fast paths differ.
        out.push(engine_record(
            "tc_chain",
            n,
            "seed",
            seed_sequential(),
            &db,
            &program,
            &EngineConfig::default(),
        ));
        out.push(engine_record(
            "tc_chain",
            n,
            "interned",
            EvalConfig::sequential(),
            &db,
            &program,
            &EngineConfig::default(),
        ));
        for (label, cfg) in [
            ("seq", EvalConfig::sequential()),
            (par_label.as_str(), forced_parallel(threads)),
        ] {
            reset_sat_cache();
            let mut tuples = 0;
            let mut atoms = 0;
            let wall_ms = time_ms(|| {
                let fix =
                    with_eval_config(cfg, || run_with(&program, &db, &EngineConfig::default()))
                        .expect("fixpoint");
                let tc = fix.database.get("tc").expect("tc defined");
                tuples = tc.len();
                atoms = tc.size();
            });
            let stats = sat_cache_stats();
            out.push(PerfRecord {
                experiment: "tc_chain".to_string(),
                size: n,
                config: label.to_string(),
                wall_ms,
                tuples,
                atoms,
                cache_hits: stats.hits,
                cache_misses: stats.misses,
                cache_evictions: stats.evictions,
                cache_hit_rate: stats.hit_rate(),
                aborted: 0,
                worker_retries: 0,
                fsyncs: 0,
                commit_batch_max: 0,
            });
        }
    }

    // FO with complement: `S(x) and not S(y)` over n disjoint intervals
    // forces the quantifier-free complement (n+1 disjuncts) and a product.
    for &n in fo_sizes {
        let db = crate::workloads::interval_db(n);
        for (label, cfg) in [
            ("seq", EvalConfig::sequential()),
            (par_label.as_str(), forced_parallel(threads)),
            ("seed", seed_sequential()),
            ("interned", EvalConfig::sequential()),
        ] {
            let db = &db;
            out.push(relation_record("fo_complement", n, label, cfg, move || {
                eval_fo_str(db, "S(x) and not S(y)")
                    .expect("query evaluates")
                    .relation
            }));
        }
    }

    // Raw DNF algebra: intersect an interval relation with a half-open
    // shift of itself — the tuple-pair loop the parallel map targets.
    for &n in fo_sizes {
        let db = crate::workloads::interval_db(n);
        let s = db.get("S").expect("S defined").clone();
        let shifted = {
            let f = dco::core::automorphism::Automorphism::translation(rat(1, 2));
            f.apply_relation(&s)
        };
        for (label, cfg) in [
            ("seq", EvalConfig::sequential()),
            (par_label.as_str(), forced_parallel(threads)),
            ("seed", seed_sequential()),
            ("interned", EvalConfig::sequential()),
        ] {
            let s = &s;
            let shifted = &shifted;
            out.push(relation_record(
                "algebra_intersect",
                n,
                label,
                cfg,
                move || s.intersect(shifted),
            ));
        }
    }

    // Join-order planning: the star join whose syntactic conjunct order
    // materialises an n×n strip grid that the cost-based order (pin
    // first) never builds. Both rows are sequential, so the ratio is the
    // planner's contribution alone.
    let join_sizes: &[usize] = if quick { &[6, 10] } else { &[8, 16, 24] };
    for &n in join_sizes {
        out.push(join_order_record(n, "syntactic"));
        out.push(join_order_record(n, "planned"));
    }

    // Guard-layer accounting: the same tc fixpoint under a no-limit guard
    // (probe overhead + containment, fault-free) and under a deliberately
    // tight tuple budget (every run aborts with a typed fault). The
    // `aborted` and `worker_retries` columns let the regression gate tell
    // a cancelled run from a slow one.
    for &n in tc_sizes {
        let db = chain_db(n);
        out.push(guarded_engine_record(
            "tc_chain", n, "guarded", &db, &program,
        ));
        out.push(guarded_abort_record("tc_chain", n, &db, &program));
    }

    // Store throughput: WAL-append load, cold-open recovery, and a burst
    // of concurrent prepared queries over TCP.
    out.extend(store_perf(quick));
    out
}

/// `n` pairwise-disjoint unit intervals `[3k, 3k+1]` for relation `s` —
/// disjointness pins the tuple count, so the rows are self-checking.
fn store_interval(k: usize) -> GeneralizedRelation {
    let lo = 3 * k as i128;
    GeneralizedRelation::from_raw(
        1,
        vec![
            RawAtom::new(Term::cst(rat(lo, 1)), RawOp::Le, Term::var(0)),
            RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(lo + 1, 1))),
        ],
    )
}

/// Bench stores skip fsync (disk-sync latency is the host's property,
/// not the codec's) and never auto-snapshot, so cold-open measures a
/// pure WAL replay of `n` records.
fn bench_store_options() -> StoreOptions {
    StoreOptions {
        snapshot_every: 0,
        fsync: false,
        ..StoreOptions::default()
    }
}

fn fresh_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dco-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Create a store at `dir` and load `n` disjoint intervals into `s`.
fn load_store(dir: &Path, n: usize) -> Store {
    let store = Store::open(dir, bench_store_options()).expect("open bench store");
    store.create("s", 1).expect("create s");
    for k in 0..n {
        store.insert("s", store_interval(k)).expect("insert");
    }
    store
}

/// Cold-open recovery row: replay a WAL of `size` inserts from disk.
/// Deterministic and single-threaded — the store family's regression-
/// gate row (see [`bench_compare`]).
fn store_open_record(size: usize) -> PerfRecord {
    let dir = fresh_store_dir(&format!("open-{size}"));
    drop(load_store(&dir, size));
    let mut tuples = 0;
    let mut atoms = 0;
    let wall_ms = time_ms(|| {
        let store = Store::open(&dir, bench_store_options()).expect("cold open");
        let generation = store.read();
        let s = generation.db.get("s").expect("s recovered");
        tuples = s.len();
        atoms = s.size();
    });
    let _ = std::fs::remove_dir_all(&dir);
    PerfRecord {
        experiment: "store_throughput".to_string(),
        size,
        config: "store_open".to_string(),
        wall_ms,
        tuples,
        atoms,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        cache_hit_rate: 0.0,
        aborted: 0,
        worker_retries: 0,
        fsyncs: 0,
        commit_batch_max: 0,
    }
}

/// The first `count` relation names of the form `m{i}` that land in
/// pairwise-distinct shards of an `nshards`-way store. The fingerprint
/// is deterministic, so so is the search.
fn spread_names(count: usize, nshards: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut used = std::collections::BTreeSet::new();
    for i in 0..64 {
        let cand = format!("m{i}");
        if used.insert(dco::store::shard_of(&cand, nshards)) {
            names.push(cand);
            if names.len() == count {
                break;
            }
        }
    }
    assert_eq!(names.len(), count, "could not spread names over shards");
    names
}

/// Single-writer WAL-append throughput: `size` inserts into a fresh
/// store (fsync off). Gated by [`bench_compare`] — the single-threaded
/// baseline the multi-writer row is measured against.
fn store_load_record(size: usize) -> PerfRecord {
    let mut run = 0usize;
    let wall_ms = time_ms(|| {
        let dir = fresh_store_dir(&format!("load-{size}-{run}"));
        run += 1;
        let store = load_store(&dir, size);
        assert_eq!(store.read().seq, 1 + size as u64);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    });
    PerfRecord {
        experiment: "store_throughput".to_string(),
        size,
        config: "store_load".to_string(),
        wall_ms,
        tuples: size,
        atoms: 2 * size,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        cache_hit_rate: 0.0,
        aborted: 0,
        worker_retries: 0,
        fsyncs: 0,
        commit_batch_max: 0,
    }
}

/// Multi-writer throughput: `writers` threads each insert
/// `size / writers` intervals into their *own* relation, the relations
/// chosen to live in distinct shards, so validation and successor-state
/// computation run genuinely in parallel. Same total commit count as
/// the `store_load` row of the same size. Skipped by the gate on 1-CPU
/// hosts, like the `par*` rows.
fn store_load_mt_record(size: usize, writers: usize) -> PerfRecord {
    let names = spread_names(writers, StoreOptions::default().shards);
    let per = size / writers;
    let mut run = 0usize;
    let mut fsyncs = 0;
    let mut batch_max = 0;
    let wall_ms = time_ms(|| {
        let dir = fresh_store_dir(&format!("load-mt{writers}-{size}-{run}"));
        run += 1;
        let store = Store::open(&dir, bench_store_options()).expect("open bench store");
        for name in &names {
            store.create(name, 1).expect("create");
        }
        let threads: Vec<_> = names
            .iter()
            .cloned()
            .map(|name| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for k in 0..per {
                        store.insert(&name, store_interval(k)).expect("insert");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("bench writer");
        }
        assert_eq!(store.read().seq, (writers + writers * per) as u64);
        let stats = store.stats();
        fsyncs = stats.fsyncs;
        batch_max = stats.commit_batch_max;
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    });
    PerfRecord {
        experiment: "store_throughput".to_string(),
        size,
        config: format!("store_load_mt{writers}"),
        wall_ms,
        tuples: writers * per,
        atoms: 2 * writers * per,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        cache_hit_rate: 0.0,
        aborted: 0,
        worker_retries: 0,
        fsyncs,
        commit_batch_max: batch_max,
    }
}

/// Group-commit row: `writers` threads issue `size / writers` durable
/// (fsync ON) inserts each into distinct-shard relations. The paired
/// `group_commit_w1` / `group_commit_w{N}` rows make the batching claim
/// measurable: with one writer every commit pays its own fsync
/// (`fsyncs == tuples`); with N concurrent writers followers ride the
/// leader's fsync and `fsyncs / tuples` drops below 1 while
/// `commit_batch_max` rises above 1. Informational (never gated): it
/// times the host's disk-sync latency.
fn group_commit_record(commits: usize, writers: usize) -> PerfRecord {
    let names = spread_names(writers, StoreOptions::default().shards);
    let per = commits / writers;
    let opts = StoreOptions {
        snapshot_every: 0,
        fsync: true,
        ..StoreOptions::default()
    };
    let mut run = 0usize;
    let mut fsyncs = 0;
    let mut batch_max = 0;
    let wall_ms = time_ms(|| {
        let dir = fresh_store_dir(&format!("gc{writers}-{commits}-{run}"));
        run += 1;
        let store = Store::open(&dir, opts.clone()).expect("open bench store");
        for name in &names {
            store.create(name, 1).expect("create");
        }
        let threads: Vec<_> = names
            .iter()
            .cloned()
            .map(|name| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for k in 0..per {
                        store.insert(&name, store_interval(k)).expect("insert");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("bench writer");
        }
        let stats = store.stats();
        fsyncs = stats.fsyncs;
        batch_max = stats.commit_batch_max;
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    });
    PerfRecord {
        experiment: "group_commit".to_string(),
        size: commits,
        config: format!("group_commit_w{writers}"),
        wall_ms,
        tuples: writers * per,
        atoms: 2 * writers * per,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        cache_hit_rate: 0.0,
        aborted: 0,
        worker_retries: 0,
        fsyncs,
        commit_batch_max: batch_max,
    }
}

/// Sustained serving throughput at `conns` simultaneous connections:
/// every connection sends one `QUERY s(x)` per round, all written before
/// any reply is read, so the reactor holds `conns` outstanding requests
/// at once. After the first (cold) evaluation every reply is a
/// prepared-cache hit, so the row measures the serving path — reactor
/// frame handling, worker-pool dispatch, write-back — not evaluation.
/// `tuples` = total requests answered. Connections are dialed once,
/// outside the timed region, and reused across the median-of-3 runs.
fn store_conc_record(conns: usize, rounds: usize) -> PerfRecord {
    let dir = fresh_store_dir(&format!("conc-{conns}"));
    let store = load_store(&dir, 8);
    let handle = serve(store.clone(), "127.0.0.1:0").expect("bind bench server");
    let addr = handle.addr();
    let mut socks: Vec<std::net::TcpStream> = (0..conns)
        .map(|i| {
            let s = std::net::TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("bench connect #{i}: {e}"));
            s.set_nodelay(true).expect("nodelay");
            s.set_read_timeout(Some(std::time::Duration::from_secs(60)))
                .expect("read timeout");
            s
        })
        .collect();
    let wall_ms = time_ms(|| {
        for _ in 0..rounds {
            for s in socks.iter_mut() {
                dco::store::wire::write_frame(s, "QUERY s(x)").expect("request");
            }
            for s in socks.iter_mut() {
                let reply = dco::store::wire::read_frame(s)
                    .expect("well-framed reply")
                    .expect("connection open");
                assert!(reply.starts_with("OK {"), "bad reply: {reply}");
            }
        }
    });
    let stats = store.stats();
    drop(socks);
    handle.shutdown();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    PerfRecord {
        experiment: "store_serve".to_string(),
        size: conns,
        config: format!("store_conc{conns}"),
        wall_ms,
        tuples: conns * rounds,
        atoms: 0,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_evictions: 0,
        cache_hit_rate: if stats.cache_hits + stats.cache_misses > 0 {
            stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64
        } else {
            0.0
        },
        aborted: 0,
        worker_retries: 0,
        fsyncs: 0,
        commit_batch_max: 0,
    }
}

/// Admission-controlled serving throughput: like `store_conc`, but
/// every request carries a propagated deadline and tuple budget, so
/// each round pays the full request-lifecycle machinery — option
/// parsing, queue-wait projection against the EWMA-calibrated service
/// time, budget derivation and guard tightening, and the served-late
/// check — on top of the plain serving path. The deadline is generous,
/// so nothing is actually shed (shed *behavior* is pass/fail, covered
/// by the overload acceptance test); what this row gates is the
/// overhead the lifecycle hardening adds to every served request.
/// `tuples` = total requests answered.
fn store_overload_record(conns: usize, rounds: usize) -> PerfRecord {
    let dir = fresh_store_dir(&format!("overload-{conns}"));
    let store = load_store(&dir, 8);
    let handle = serve(store.clone(), "127.0.0.1:0").expect("bind bench server");
    let addr = handle.addr();
    let mut socks: Vec<std::net::TcpStream> = (0..conns)
        .map(|i| {
            let s = std::net::TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("bench connect #{i}: {e}"));
            s.set_nodelay(true).expect("nodelay");
            s.set_read_timeout(Some(std::time::Duration::from_secs(60)))
                .expect("read timeout");
            s
        })
        .collect();
    let line = "QUERY @deadline_ms=60000,max_tuples=1000000 s(x)";
    let wall_ms = time_ms(|| {
        for _ in 0..rounds {
            for s in socks.iter_mut() {
                dco::store::wire::write_frame(s, line).expect("request");
            }
            for s in socks.iter_mut() {
                let reply = dco::store::wire::read_frame(s)
                    .expect("well-framed reply")
                    .expect("connection open");
                assert!(reply.starts_with("OK {"), "bad reply: {reply}");
            }
        }
    });
    let stats = store.stats();
    drop(socks);
    handle.shutdown();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    PerfRecord {
        experiment: "store_serve".to_string(),
        size: conns,
        config: format!("store_overload{conns}"),
        wall_ms,
        tuples: conns * rounds,
        atoms: 0,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_evictions: 0,
        cache_hit_rate: if stats.cache_hits + stats.cache_misses > 0 {
            stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64
        } else {
            0.0
        },
        aborted: 0,
        worker_retries: 0,
        fsyncs: 0,
        commit_batch_max: 0,
    }
}

/// Replica catch-up: time for a fresh replica to dial the primary
/// (`REPL 0`), stream its full `size`-commit history as batch frames,
/// and apply it through the validate→publish path. One stream, no
/// thread scaling — gated on every host.
fn repl_lag_record(size: usize) -> PerfRecord {
    let pdir = fresh_store_dir(&format!("repl-primary-{size}"));
    let store = load_store(&pdir, size);
    let handle = serve(store.clone(), "127.0.0.1:0").expect("bind bench server");
    let addr = handle.addr();
    let target = store.read().seq;
    let mut run = 0usize;
    let wall_ms = time_ms(|| {
        let rdir = fresh_store_dir(&format!("repl-replica-{size}-{run}"));
        run += 1;
        let replica = Store::open(&rdir, bench_store_options()).expect("open replica");
        let stream = dco::store::replicate(replica.clone(), addr.to_string());
        assert!(
            stream.wait_for_seq(target, std::time::Duration::from_secs(60)),
            "replica never caught up to seq {target}"
        );
        stream.shutdown();
        assert_eq!(replica.read().seq, target, "replica stopped short");
        drop(replica);
        let _ = std::fs::remove_dir_all(&rdir);
    });
    handle.shutdown();
    drop(store);
    let _ = std::fs::remove_dir_all(&pdir);
    PerfRecord {
        experiment: "store_serve".to_string(),
        size,
        config: "repl_lag".to_string(),
        wall_ms,
        tuples: size,
        atoms: 2 * size,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        cache_hit_rate: 0.0,
        aborted: 0,
        worker_retries: 0,
        fsyncs: 0,
        commit_batch_max: 0,
    }
}

/// The store workload family:
///
/// * `store_load` — `size` WAL-logged inserts into a fresh store;
/// * `store_load_mt{N}` — the same commit count split over N writer
///   threads on distinct-shard relations;
/// * `store_open` — cold-open recovery replaying that WAL;
/// * `group_commit_w{N}` — durable (fsync ON) commits under 1 vs N
///   concurrent writers; the `fsyncs` and `commit_batch_max` columns
///   carry the batching evidence;
/// * `store_qc{C}` — C concurrent TCP clients each firing a burst of the
///   same prepared query (first evaluation cold, the rest answered by
///   the fingerprint × touched-shard epoch cache); `cache_hits`/
///   `cache_misses` are the store's own prepared-cache counters;
/// * `store_conc{C}` — sustained request rounds over C simultaneous
///   reactor connections (see [`store_conc_record`]);
/// * `repl_lag` — fresh-replica catch-up over the replication stream
///   (see [`repl_lag_record`]);
/// * `obs_overhead` — the `store_qc4` burst with the obs layer on vs
///   globally disabled (see [`obs_overhead_records`]).
pub fn store_perf(quick: bool) -> Vec<PerfRecord> {
    let sizes: &[usize] = if quick { &[32, 128] } else { &[64, 256] };
    let clients: usize = 4;
    let queries_each: usize = if quick { 8 } else { 16 };
    let group_commits: usize = if quick { 16 } else { 64 };
    let mut out = Vec::new();

    for &n in sizes {
        out.push(store_load_record(n));
        out.push(store_load_mt_record(n, 4));
        out.push(store_open_record(n));
        // Concurrent prepared-query burst over TCP.
        out.push(store_qc_record(
            n,
            clients,
            queries_each,
            "store_throughput",
            &format!("store_qc{clients}"),
        ));
    }

    // Observability overhead: the same prepared-query burst with the
    // whole obs layer recording (the default) vs globally disabled.
    // The paired rows carry the subsystem's overhead claim — see
    // [`obs_overhead_records`] and the gate in [`bench_compare`].
    out.extend(obs_overhead_records(quick));

    // Durable group commit: one writer (every commit pays an fsync) vs
    // four concurrent writers (followers ride the leader's fsync).
    out.push(group_commit_record(group_commits, 1));
    out.push(group_commit_record(group_commits, 4));

    // Reactor serving scale: sustained rounds at 64 / 256 / 1024
    // simultaneous connections (quick mode keeps one small row so the
    // JSON shape is covered without the connection herd).
    let conc: &[usize] = if quick { &[16] } else { &[64, 256, 1024] };
    let conc_rounds: usize = if quick { 2 } else { 4 };
    for &c in conc {
        out.push(store_conc_record(c, conc_rounds));
    }
    // Deadline-carrying serving rows: the request-lifecycle machinery's
    // overhead on the hot path (option parsing, budget derivation,
    // queue-wait projection) with a deadline generous enough that
    // nothing sheds.
    out.push(store_overload_record(
        if quick { 8 } else { 32 },
        conc_rounds,
    ));
    // Replication catch-up over TCP.
    out.push(repl_lag_record(if quick { 16 } else { 128 }));
    out
}

/// One `store_qc{C}` row: C concurrent TCP clients each firing a burst
/// of `queries_each` copies of the same prepared query against a
/// `size`-tuple store. The first evaluation is cold; the rest are
/// answered by the fingerprint × touched-shard epoch cache, so the row
/// measures the serving path end to end.
fn store_qc_record(
    size: usize,
    clients: usize,
    queries_each: usize,
    experiment: &str,
    config: &str,
) -> PerfRecord {
    let dir = fresh_store_dir(&format!("serve-{config}-{size}"));
    let store = load_store(&dir, size);
    let handle = serve(store.clone(), "127.0.0.1:0").expect("bind bench server");
    let addr = handle.addr();
    let mut tuples = 0;
    let mut atoms = 0;
    let wall_ms = time_ms(|| {
        let threads: Vec<_> = (0..clients)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut sizes = (0, 0);
                    for _ in 0..queries_each {
                        let q = client.query("s(x)").expect("query");
                        sizes = (q.relation.len(), q.relation.size());
                    }
                    client.close().expect("close");
                    sizes
                })
            })
            .collect();
        for t in threads {
            let (tu, at) = t.join().expect("bench client");
            tuples = tu;
            atoms = at;
        }
    });
    let stats = store.stats();
    handle.shutdown();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    PerfRecord {
        experiment: experiment.to_string(),
        size,
        config: config.to_string(),
        wall_ms,
        tuples,
        atoms,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_evictions: 0,
        cache_hit_rate: if stats.cache_hits + stats.cache_misses > 0 {
            stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64
        } else {
            0.0
        },
        aborted: 0,
        worker_retries: 0,
        fsyncs: stats.fsyncs,
        commit_batch_max: stats.commit_batch_max,
    }
}

/// One interleaved repetition of the observability-overhead pair: the
/// `store_qc4` burst with [`dco::obs::set_enabled`] globally off, then
/// with the obs layer recording (the shipped default — counters,
/// gauges, histograms, per-query tracing). Always leaves the process
/// with obs re-enabled.
fn obs_overhead_pair(size: usize, queries_each: usize) -> (PerfRecord, PerfRecord) {
    dco::obs::set_enabled(false);
    let off = store_qc_record(size, 4, queries_each, "obs_overhead", "obs_off");
    dco::obs::set_enabled(true);
    let on = store_qc_record(size, 4, queries_each, "obs_overhead", "obs_on");
    (off, on)
}

/// The baseline's `obs_overhead` rows: three interleaved repetitions
/// of [`obs_overhead_pair`], each side keeping its minimum wall time.
/// Scheduler and TCP noise only ever add time, so min-of-reps is the
/// estimator that best isolates the obs layer's cost from host jitter
/// on a burst that finishes in tens of milliseconds. The design budget
/// is <3% (see DESIGN.md §17), enforced by [`bench_compare`].
fn obs_overhead_records(quick: bool) -> Vec<PerfRecord> {
    let size = if quick { 32 } else { 64 };
    let queries_each = if quick { 8 } else { 16 };
    let mut off: Option<PerfRecord> = None;
    let mut on: Option<PerfRecord> = None;
    for _ in 0..3 {
        let (o, n) = obs_overhead_pair(size, queries_each);
        if off.as_ref().is_none_or(|best| o.wall_ms < best.wall_ms) {
            off = Some(o);
        }
        if on.as_ref().is_none_or(|best| n.wall_ms < best.wall_ms) {
            on = Some(n);
        }
    }
    vec![
        off.expect("three repetitions ran"),
        on.expect("three repetitions ran"),
    ]
}

/// Fault-free guarded row: unguarded-identical result, plus the guard's
/// own retry counter.
fn guarded_engine_record(
    experiment: &str,
    size: usize,
    config: &str,
    db: &Database,
    program: &Program,
) -> PerfRecord {
    reset_sat_cache();
    let mut tuples = 0;
    let mut atoms = 0;
    let mut retries = 0;
    let wall_ms = time_ms(|| {
        let g =
            dco::datalog::try_run_with(program, db, &EngineConfig::default(), GuardLimits::none())
                .expect("fault-free guarded fixpoint");
        let tc = g.value.database.get("tc").expect("tc defined");
        tuples = tc.len();
        atoms = tc.size();
        retries = g.stats.worker_retries;
    });
    let stats = sat_cache_stats();
    PerfRecord {
        experiment: experiment.to_string(),
        size,
        config: config.to_string(),
        wall_ms,
        tuples,
        atoms,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_evictions: stats.evictions,
        cache_hit_rate: stats.hit_rate(),
        aborted: 0,
        worker_retries: retries,
        fsyncs: 0,
        commit_batch_max: 0,
    }
}

/// Deliberately-aborted guarded row: a tuple budget of 1 trips on every
/// run; `wall_ms` is time-to-fault and `aborted` counts the trips.
fn guarded_abort_record(
    experiment: &str,
    size: usize,
    db: &Database,
    program: &Program,
) -> PerfRecord {
    reset_sat_cache();
    let mut aborted = 0u64;
    let mut retries = 0u64;
    let wall_ms = time_ms(|| {
        match dco::datalog::try_run_with(
            program,
            db,
            &EngineConfig::default(),
            GuardLimits::none().with_max_tuples(1),
        ) {
            Ok(g) => retries += g.stats.worker_retries,
            Err(e) => {
                aborted += 1;
                if let dco::datalog::TryRunError::Fault(f) = e {
                    retries += f.stats.worker_retries;
                }
            }
        }
    });
    let stats = sat_cache_stats();
    PerfRecord {
        experiment: experiment.to_string(),
        size,
        config: "guarded_abort".to_string(),
        wall_ms,
        tuples: 0,
        atoms: 0,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_evictions: stats.evictions,
        cache_hit_rate: stats.hit_rate(),
        aborted,
        worker_retries: retries,
        fsyncs: 0,
        commit_batch_max: 0,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialise records to a JSON document (pretty-printed, stable order).
pub fn write_json(records: &[PerfRecord], host_threads: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    out.push_str("  \"timing_note\": \"median of 3 runs; thread-scaling numbers are only meaningful on multi-core hosts\",\n");
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"experiment\": \"{}\", \"size\": {}, \"config\": \"{}\", \
             \"wall_ms\": {:.3}, \"tuples\": {}, \"atoms\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}, \
             \"cache_hit_rate\": {:.4}, \"aborted\": {}, \"worker_retries\": {}, \
             \"fsyncs\": {}, \"commit_batch_max\": {}}}{}",
            json_escape(&r.experiment),
            r.size,
            json_escape(&r.config),
            r.wall_ms,
            r.tuples,
            r.atoms,
            r.cache_hits,
            r.cache_misses,
            r.cache_evictions,
            r.cache_hit_rate,
            r.aborted,
            r.worker_retries,
            r.fsyncs,
            r.commit_batch_max,
            if i + 1 == records.len() { "" } else { "," }
        ));
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// One row of a committed `BENCH_results.json` baseline, as far as the
/// regression gate needs it.
#[derive(Debug, Clone)]
struct BaselineRecord {
    experiment: String,
    size: usize,
    config: String,
    wall_ms: f64,
    /// Guard trips in the baseline row (absent in pre-guard baselines = 0).
    aborted: u64,
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..]
        .find([',', '}'])
        .map(|i| i + start)
        .unwrap_or(line.len());
    line[start..end].trim().parse().ok()
}

/// Parse the records array of a `BENCH_results.json` document. Relies on
/// the one-record-per-line layout [`write_json`] emits (hand-rolled — no
/// serde in-tree).
fn parse_baseline_records(json: &str) -> Vec<BaselineRecord> {
    json.lines()
        .filter_map(|line| {
            Some(BaselineRecord {
                experiment: extract_str(line, "experiment")?,
                size: extract_num(line, "size")? as usize,
                config: extract_str(line, "config")?,
                wall_ms: extract_num(line, "wall_ms")?,
                aborted: extract_num(line, "aborted").unwrap_or(0.0) as u64,
            })
        })
        .collect()
}

/// CI regression gate: re-measure the baseline's gated rows on this
/// host (`tc_chain`/`engine_delta`, `store_open`, `store_load`,
/// `store_load_mt*`, `store_conc*`, `repl_lag`, the planned star join)
/// and fail when any regresses more than 30% in wall time. The
/// `obs_overhead` row is gated differently: its freshly measured
/// `obs_on`/`obs_off` pair must stay within the obs layer's 3% budget. Thread-
/// scaling rows (`par*`, `store_load_mt*`, and the multi-connection
/// `store_conc*` serving rows) are skipped on 1-CPU hosts, where their
/// timings are meaningless; `repl_lag` is a single stream and gates
/// everywhere. Sub-millisecond deltas never fail the gate — at that
/// scale a 30% ratio is timer noise, not a regression.
///
/// Returns the per-row comparison report, or an error describing every
/// regressed row (the caller exits nonzero).
pub fn bench_compare(baseline_json: &str) -> Result<Vec<String>, String> {
    let host = std::thread::available_parallelism().map_or(1, |p| p.get());
    let program = tc_program();
    let mut report = Vec::new();
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for rec in parse_baseline_records(baseline_json) {
        if (rec.config.starts_with("par")
            || rec.config.starts_with("store_load_mt")
            || rec.config.starts_with("store_conc")
            || rec.config.starts_with("store_overload"))
            && host == 1
        {
            report.push(format!(
                "skip  {}/{}/{}: thread-scaling row on a 1-CPU host",
                rec.experiment, rec.size, rec.config
            ));
            continue;
        }
        if rec.aborted > 0 {
            // An aborted (guard-tripped) run measures time-to-fault, not
            // throughput: never a regression signal.
            report.push(format!(
                "skip  {}/{}/{}: {} aborted run(s), cancellation not regression",
                rec.experiment, rec.size, rec.config, rec.aborted
            ));
            continue;
        }
        // Observability overhead is gated against its *paired* row, not
        // the baseline wall time, and with a paired-minimum test: on a
        // small host, loopback-TCP scheduler jitter on a tens-of-ms
        // burst is ±10% — no single measurement can resolve a 3%
        // budget. But the jitter is symmetric while a genuine obs
        // regression shifts *every* pair, so the gate interleaves five
        // on/off repetitions and fails only when even the best pair is
        // over the <3% budget (DESIGN.md §17). The sub-millisecond
        // floor additionally keeps pure timer noise out. The `obs_off`
        // baseline row is the pair's other half — informational.
        if rec.experiment == "obs_overhead" {
            if rec.config != "obs_on" {
                continue;
            }
            compared += 1;
            let mut best: Option<(f64, PerfRecord, PerfRecord)> = None;
            for _ in 0..5 {
                let (off, on) = obs_overhead_pair(rec.size, 16);
                let ratio = on.wall_ms / off.wall_ms.max(f64::EPSILON);
                if best.as_ref().is_none_or(|(b, _, _)| ratio < *b) {
                    best = Some((ratio, off, on));
                }
            }
            let (ratio, off, on) = best.expect("five repetitions ran");
            let line = format!(
                "check obs_overhead/{}: best pair obs_off {:.3} ms, obs_on {:.3} ms ({:.2}x)",
                rec.size, off.wall_ms, on.wall_ms, ratio
            );
            if ratio > 1.03 && on.wall_ms - off.wall_ms > 0.5 {
                failures.push(format!("{line} — obs layer over its 3% budget"));
            }
            report.push(line);
            continue;
        }
        // Gated row families: the engine's semi-naive fixpoint, the
        // store's cold-open recovery, the WAL-append load (single- and,
        // on multi-core hosts, multi-writer), and the planned star join.
        // All run with fsync off, so a >30% wall-time jump is a real
        // regression, not disk or scheduler noise (`group_commit_*`/
        // `store_qc*` rows are informational only — they time the disk
        // and the network stack).
        let new = if rec.experiment == "tc_chain" && rec.config == "engine_delta" {
            let db = chain_db(rec.size);
            engine_record(
                &rec.experiment,
                rec.size,
                &rec.config,
                EvalConfig::sequential(),
                &db,
                &program,
                &EngineConfig::default(),
            )
        } else if rec.experiment == "store_throughput" && rec.config == "store_open" {
            store_open_record(rec.size)
        } else if rec.experiment == "store_throughput" && rec.config == "store_load" {
            store_load_record(rec.size)
        } else if rec.experiment == "store_throughput" && rec.config.starts_with("store_load_mt") {
            let writers: usize = rec.config["store_load_mt".len()..].parse().unwrap_or(4);
            store_load_mt_record(rec.size, writers.max(1))
        } else if rec.experiment == "store_serve" && rec.config.starts_with("store_conc") {
            store_conc_record(rec.size, 4)
        } else if rec.experiment == "store_serve" && rec.config.starts_with("store_overload") {
            store_overload_record(rec.size, 4)
        } else if rec.experiment == "store_serve" && rec.config == "repl_lag" {
            repl_lag_record(rec.size)
        } else if rec.experiment == "join_order" && rec.config == "planned" {
            join_order_record(rec.size, "planned")
        } else {
            continue;
        };
        compared += 1;
        let ratio = new.wall_ms / rec.wall_ms.max(f64::EPSILON);
        let line = format!(
            "check {}/{}/{}: baseline {:.3} ms, now {:.3} ms ({:.2}x)",
            rec.experiment, rec.size, rec.config, rec.wall_ms, new.wall_ms, ratio
        );
        if ratio > 1.30 && new.wall_ms - rec.wall_ms > 0.5 {
            failures.push(line.clone());
        }
        report.push(line);
    }
    if compared == 0 {
        return Err("bench-compare: baseline has no tc_chain/engine_delta rows".to_string());
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!(
            "bench-compare: {} row(s) regressed >30%:\n{}",
            failures.len(),
            failures.join("\n")
        ))
    }
}

/// Recompute every workload single-threaded and with `threads` forced
/// workers and require structurally identical canonical results. Returns
/// a description of the first divergence, if any.
pub fn verify_parallel(threads: usize) -> Result<(), String> {
    let program = tc_program();

    for n in [3, 5, 7] {
        let db = chain_db(n);
        let seq = with_eval_config(EvalConfig::sequential(), || {
            run_with(&program, &db, &EngineConfig::default())
        })
        .map_err(|e| format!("tc_chain({n}) sequential run failed: {e}"))?;
        let par = with_eval_config(forced_parallel(threads), || {
            run_with(&program, &db, &EngineConfig::default())
        })
        .map_err(|e| format!("tc_chain({n}) parallel run failed: {e}"))?;
        if seq.database != par.database {
            return Err(format!(
                "tc_chain({n}): parallel fixpoint diverges from sequential"
            ));
        }
        let naive = with_eval_config(EvalConfig::sequential(), || {
            run_with(
                &program,
                &db,
                &EngineConfig {
                    use_deltas: false,
                    ..EngineConfig::default()
                },
            )
        })
        .map_err(|e| format!("tc_chain({n}) naive run failed: {e}"))?;
        if !seq.database.equivalent(&naive.database) {
            return Err(format!(
                "tc_chain({n}): semi-naive fixpoint not equivalent to naive"
            ));
        }
    }

    for n in [4, 9] {
        let db = crate::workloads::interval_db(n);
        for query in ["S(x) and not S(y)", "exists y . S(y) and S(x) and x < y"] {
            let seq = with_eval_config(EvalConfig::sequential(), || eval_fo_str(&db, query))
                .map_err(|e| format!("fo({n}) sequential eval failed: {e}"))?;
            let par = with_eval_config(forced_parallel(threads), || eval_fo_str(&db, query))
                .map_err(|e| format!("fo({n}) parallel eval failed: {e}"))?;
            if seq.relation != par.relation {
                return Err(format!(
                    "fo({n}) {query:?}: parallel result diverges from sequential"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_parallel_passes_on_this_host() {
        verify_parallel(4).unwrap();
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let recs = run_perf(true, 2);
        assert!(!recs.is_empty());
        let json = write_json(&recs, 1);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"experiment\"").count(), recs.len());
    }
}
