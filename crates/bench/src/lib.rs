//! # dco-bench — the experiment harness
//!
//! One module per experiment (E1–E9), each reproducing a claim of
//! *Dense-Order Constraint Databases* (Grumbach & Su, PODS 1995). The
//! `experiments` binary prints every table recorded in `EXPERIMENTS.md`;
//! the Criterion benches under `benches/` wrap the same workloads for
//! statistically robust timing.

#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod workloads;

pub use experiments::ExperimentRow;
