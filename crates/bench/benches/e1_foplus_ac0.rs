//! E1 (Theorem 4.1): FO+ evaluation over integer-defined inputs — the
//! uniform-AC⁰ claim's empirical shape: per-size timings of a fixed FO+
//! query as the standard encoding grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dco::prelude::*;
use dco_bench::workloads::interval_db;

fn bench(c: &mut Criterion) {
    let f = parse_formula("exists y . (S(y) & y <= x & x <= y + 1)").unwrap();
    let mut group = c.benchmark_group("e1_foplus_integer_inputs");
    group.sample_size(10);
    for n in [2usize, 4, 8, 16] {
        let db = interval_db(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| eval_linear(db, &f).expect("FO+ evaluates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
