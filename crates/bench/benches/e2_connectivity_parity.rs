//! E2 (Theorem 4.2): the EF-game witnesses for connectivity and parity —
//! timing the game solver on the witness pairs, and the Datalog¬ engine
//! that separates them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dco::datalog::programs::cardinality_is_even;
use dco::ef::ef_equivalent;
use dco::ef::structure::generators::{cycle, linear_order, two_cycles};
use dco_bench::workloads::point_set;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_ef_witnesses");
    group.sample_size(10);
    for r in [1usize, 2] {
        let m = (1 << r) - 1;
        let a = linear_order(m);
        let b = linear_order(m + 1);
        group.bench_with_input(BenchmarkId::new("parity", r), &r, |bch, &r| {
            bch.iter(|| assert!(ef_equivalent(&a, &b, r)))
        });
    }
    let one = cycle(10);
    let two = two_cycles(5, 5);
    group.bench_function("connectivity_c10_vs_c5c5_r2", |b| {
        b.iter(|| assert!(ef_equivalent(&one, &two, 2)))
    });
    group.bench_function("datalog_parity_n6", |b| {
        let s = point_set(6);
        b.iter(|| assert!(cardinality_is_even(&s).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
