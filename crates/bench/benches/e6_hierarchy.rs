//! E6 (Theorems 5.3–5.5): the set-height hierarchy — evaluation cost of a
//! height-1 sentence as the cell count grows (the 2^#cells enumeration),
//! and a height-2 sentence at the only feasible scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dco::complex::{CCalc, CFormula, RatTerm, SetRef};
use dco::prelude::*;

fn db_with_constants(m: usize) -> Database {
    let s = GeneralizedRelation::from_points(
        1,
        (0..m).map(|i| vec![rat(i as i128, 1)]).collect::<Vec<_>>(),
    );
    Database::new(Schema::new().with("s", 1)).with("s", s)
}

fn exact_set_sentence() -> CFormula {
    use CFormula as F;
    F::ExistsSet(
        "S".into(),
        1,
        Box::new(F::ForallRat(
            "x".into(),
            Box::new(F::And(vec![
                CFormula::implies(
                    F::MemTuple(vec![RatTerm::var("x")], SetRef::Var("S".into())),
                    F::Pred("s".into(), vec![RatTerm::var("x")]),
                ),
                CFormula::implies(
                    F::Pred("s".into(), vec![RatTerm::var("x")]),
                    F::MemTuple(vec![RatTerm::var("x")], SetRef::Var("S".into())),
                ),
            ])),
        )),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_set_height_hierarchy");
    group.sample_size(10);
    let f = exact_set_sentence();
    for m in [1usize, 2, 3] {
        let db = db_with_constants(m);
        group.bench_with_input(BenchmarkId::new("height1", m), &db, |b, db| {
            b.iter(|| {
                let mut ev = CCalc::new(db);
                assert!(ev.eval_sentence(&f).unwrap());
            })
        });
    }
    // height 2 at the single feasible scale (1 constant → 3 cells → 2^8
    // families)
    use CFormula as F;
    let h2 = F::ExistsSetSet(
        "T".into(),
        1,
        Box::new(F::ExistsSet(
            "S".into(),
            1,
            Box::new(F::MemSet(SetRef::Var("S".into()), "T".into())),
        )),
    );
    let db = db_with_constants(1);
    group.bench_function("height2_m1", |b| {
        b.iter(|| {
            let mut ev = CCalc::new(&db);
            assert!(ev.eval_sentence(&h2).unwrap());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
