//! E5 (Theorem 5.2): PTIME ⊆ C-CALC₁ ⊆ PSPACE — reachability via one set
//! variable (exponential enumeration) vs the Datalog¬ fixpoint
//! (polynomial) on the same instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dco::complex::{CCalc, CFormula, RatTerm, SetRef};
use dco::prelude::*;
use dco_bench::workloads::path_graph;

fn reach(a: i64, b: i64) -> CFormula {
    use CFormula as F;
    let closed = F::ForallRat(
        "u".into(),
        Box::new(F::ForallRat(
            "v".into(),
            Box::new(CFormula::implies(
                F::And(vec![
                    F::MemTuple(vec![RatTerm::var("u")], SetRef::Var("S".into())),
                    F::Pred("e".into(), vec![RatTerm::var("u"), RatTerm::var("v")]),
                ]),
                F::MemTuple(vec![RatTerm::var("v")], SetRef::Var("S".into())),
            )),
        )),
    );
    F::ForallSet(
        "S".into(),
        1,
        Box::new(CFormula::implies(
            F::And(vec![
                F::MemTuple(
                    vec![RatTerm::cst(rat(a as i128, 1))],
                    SetRef::Var("S".into()),
                ),
                closed,
            ]),
            F::MemTuple(
                vec![RatTerm::cst(rat(b as i128, 1))],
                SetRef::Var("S".into()),
            ),
        )),
    )
}

fn bench(c: &mut Criterion) {
    let program = parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .unwrap();
    let mut group = c.benchmark_group("e5_ccalc1_vs_datalog");
    group.sample_size(10);
    for n in [2usize, 3] {
        let db = path_graph(n);
        let f = reach(1, n as i64);
        group.bench_with_input(BenchmarkId::new("ccalc1", n), &db, |b, db| {
            b.iter(|| {
                let mut ev = CCalc::new(db);
                assert!(ev.eval_sentence(&f).unwrap());
            })
        });
        group.bench_with_input(BenchmarkId::new("datalog", n), &db, |b, db| {
            b.iter(|| run_datalog(&program, db).expect("fixpoint"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
