//! E8 (\[KKR90\], §4): closed-form FO evaluation — near-linear scaling of a
//! fixed FO query with the standard-encoding size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dco::prelude::*;
use dco_bench::workloads::interval_db;

fn bench(c: &mut Criterion) {
    let f = parse_formula("exists y . (S(y) & y < x)").unwrap();
    let mut group = c.benchmark_group("e8_fo_closed_form");
    group.sample_size(10);
    for n in [2usize, 8, 32, 64] {
        let db = interval_db(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| eval_fo(db, &f).expect("FO evaluates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
