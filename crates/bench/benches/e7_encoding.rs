//! E7 (§2): the compact "four constants + flag" box encoding vs the
//! generic DNF representation — compression and round-trip cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dco::encoding::compress;
use dco::geo::region::Region;
use dco_bench::workloads::box_db;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_box_encoding");
    group.sample_size(10);
    for n in [4usize, 16, 64] {
        let db = box_db(n);
        let rel = db.get("R").unwrap().clone();
        group.bench_with_input(BenchmarkId::new("compress", n), &rel, |b, rel| {
            b.iter(|| {
                let c = compress(rel);
                assert_eq!(c.boxes.len(), n);
            })
        });
    }
    let fig = Region::paper_figure();
    group.bench_function("paper_figure_roundtrip", |b| {
        b.iter(|| {
            let c = compress(fig.relation());
            assert!(c.to_relation().equivalent(fig.relation()));
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
