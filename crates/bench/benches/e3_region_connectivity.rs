//! E3 (Theorem 4.3): region connectivity — cell decomposition + union-find
//! vs the Datalog¬ back-end on the staircase family, plus the EF
//! equivalence of the encodings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dco::ef::{ef_equivalent, encode_binary};
use dco::geo::instances::{broken_staircase, staircase};
use dco::geo::{component_count, is_connected_via_datalog};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_region_connectivity");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        let good = staircase(n);
        group.bench_with_input(BenchmarkId::new("unionfind", n), &good, |b, g| {
            b.iter(|| assert_eq!(component_count(g), 1))
        });
    }
    let good = staircase(3);
    let bad = broken_staircase(3, 1);
    group.bench_function("datalog_backend_n3", |b| {
        b.iter(|| {
            assert!(is_connected_via_datalog(&good));
            assert!(!is_connected_via_datalog(&bad));
        })
    });
    group.bench_function("ef_on_encodings_r1_n4", |b| {
        let eg = encode_binary(staircase(4).relation()).unwrap();
        let eb = encode_binary(broken_staircase(4, 1).relation()).unwrap();
        b.iter(|| assert!(ef_equivalent(&eg, &eb, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
