//! E9 (§4): the integer-only homeomorphism — integerization cost and the
//! agreement check between rational-side and integer-side answers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dco::encoding::integerize;
use dco::prelude::*;
use dco_bench::workloads::{interval_db, seventhify};

fn bench(c: &mut Criterion) {
    let f = parse_formula("exists y . (S(y) & y < x)").unwrap();
    let mut group = c.benchmark_group("e9_integer_homeomorphism");
    group.sample_size(10);
    for n in [2usize, 8, 32] {
        let db = seventhify(&interval_db(n));
        group.bench_with_input(BenchmarkId::new("integerize", n), &db, |b, db| {
            b.iter(|| integerize(db))
        });
        group.bench_with_input(BenchmarkId::new("query_both_sides", n), &db, |b, db| {
            b.iter(|| {
                let (idb, map) = integerize(db);
                let qr = eval_fo(db, &f).unwrap().relation;
                let qi = eval_fo(&idb, &f).unwrap().relation;
                assert!(map.to_automorphism().apply_relation(&qr).equivalent(&qi));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
