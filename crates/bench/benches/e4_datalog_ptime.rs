//! E4 (Theorem 4.4): inflationary Datalog¬ = PTIME — polynomial scaling of
//! the closed-form fixpoint on transitive closure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dco::prelude::*;
use dco_bench::workloads::path_graph;

fn bench(c: &mut Criterion) {
    let program = parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .unwrap();
    let mut group = c.benchmark_group("e4_datalog_tc");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let db = path_graph(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| run_datalog(&program, db).expect("fixpoint"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
