//! Property test: planning is result-invariant.
//!
//! The statistics-driven planner only permutes conjunct order and
//! bound-variable elimination order — never the denoted relation. This
//! harness generates 128 deterministic random cases across the three
//! evaluators (FO, FO+linear, Datalog) and demands that the planned
//! form evaluates to a relation equivalent to the unplanned one (or
//! fails identically when the unplanned form fails).

use dco::analysis::stats::DbStats;
use dco::analysis::{plan_formula, plan_rule};
use dco::datalog::{run as run_datalog, Program};
use dco::prelude::*;

/// Deterministic 64-bit LCG (Knuth MMIX constants) — no external RNG
/// crates, and every failure reproduces from the case index alone.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A small random database: `r` holds 2–5 random boxes, `s` holds 1–4
/// random intervals, both over constants in `0..=12`.
fn random_db(rng: &mut Lcg) -> Database {
    let boxes = 2 + rng.below(4) as usize;
    let r = GeneralizedRelation::from_tuples(
        2,
        (0..boxes).filter_map(|_| {
            let (x0, y0) = (rng.below(10) as i128, rng.below(10) as i128);
            let (dx, dy) = (1 + rng.below(3) as i128, 1 + rng.below(3) as i128);
            GeneralizedTuple::from_raw(
                2,
                vec![
                    RawAtom::new(Term::cst(rat(x0, 1)), RawOp::Le, Term::var(0)),
                    RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(x0 + dx, 1))),
                    RawAtom::new(Term::cst(rat(y0, 1)), RawOp::Le, Term::var(1)),
                    RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(y0 + dy, 1))),
                ],
            )
            .pop()
        }),
    );
    let intervals = 1 + rng.below(4) as usize;
    let s = GeneralizedRelation::from_tuples(
        1,
        (0..intervals).filter_map(|_| {
            let lo = rng.below(10) as i128;
            let hi = lo + 1 + rng.below(3) as i128;
            GeneralizedTuple::from_raw(
                1,
                vec![
                    RawAtom::new(Term::cst(rat(lo, 1)), RawOp::Le, Term::var(0)),
                    RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(hi, 1))),
                ],
            )
            .pop()
        }),
    );
    Database::new(Schema::new().with("r", 2).with("s", 1))
        .with("r", r)
        .with("s", s)
}

/// A random fully-parenthesized formula over `x`, `y`, `z`. With
/// `linear` set, the atom pool adds two-variable linear constraints
/// (which only the FO+linear evaluator accepts).
fn random_formula_src(rng: &mut Lcg, depth: u32, linear: bool) -> String {
    let atom = |rng: &mut Lcg| -> String {
        let dense = [
            "r(x, y)".to_string(),
            "r(y, z)".to_string(),
            "r(x, z)".to_string(),
            "s(x)".to_string(),
            "s(y)".to_string(),
            "x < y".to_string(),
            "y <= z".to_string(),
            format!("x < {}", rng.below(12)),
            format!("{} <= y", rng.below(12)),
        ];
        let pick = rng.below(if linear {
            dense.len() as u64 + 2
        } else {
            dense.len() as u64
        });
        match pick as usize {
            i if i < dense.len() => dense[i].clone(),
            i if i == dense.len() => format!("x + y < {}", 2 + rng.below(16)),
            _ => format!("{} <= x + z", rng.below(8)),
        }
    };
    if depth == 0 {
        return atom(rng);
    }
    match rng.below(6) {
        0 | 1 => format!(
            "({}) & ({})",
            random_formula_src(rng, depth - 1, linear),
            random_formula_src(rng, depth - 1, linear)
        ),
        2 => format!(
            "({}) | ({})",
            random_formula_src(rng, depth - 1, linear),
            random_formula_src(rng, depth - 1, linear)
        ),
        3 => format!("not ({})", random_formula_src(rng, depth - 1, linear)),
        4 => format!(
            "exists {} . ({})",
            ["x", "y", "z"][rng.below(3) as usize],
            random_formula_src(rng, depth - 1, linear)
        ),
        _ => atom(rng),
    }
}

#[test]
fn fo_planned_order_is_result_invariant_64_cases() {
    for case in 0..64u64 {
        let mut rng = Lcg::new(case + 1);
        let db = random_db(&mut rng);
        let src = random_formula_src(&mut rng, 1 + (case % 3) as u32, false);
        let formula = parse_formula(&src).unwrap_or_else(|e| panic!("case {case} `{src}`: {e}"));
        let planned = plan_formula(&formula, &DbStats::of_database(&db));
        match (eval_fo(&db, &formula), eval_fo(&db, &planned)) {
            (Ok(base), Ok(opt)) => {
                assert!(
                    base.relation.equivalent(&opt.relation),
                    "case {case}: planned result diverges\n  query: {src}\n  planned: {planned}"
                );
                assert_eq!(
                    base.columns, opt.columns,
                    "case {case}: planned columns diverge for {src}"
                );
            }
            (Err(_), Err(_)) => {} // both reject (e.g. linear atom in FO)
            (b, o) => panic!(
                "case {case}: planning changed failure for {src}: base {:?} vs planned {:?}",
                b.is_ok(),
                o.is_ok()
            ),
        }
    }
}

#[test]
fn linear_planned_order_is_result_invariant_32_cases() {
    for case in 0..32u64 {
        let mut rng = Lcg::new(1000 + case);
        let db = random_db(&mut rng);
        let src = random_formula_src(&mut rng, 1 + (case % 2) as u32, true);
        let formula = parse_formula(&src).unwrap_or_else(|e| panic!("case {case} `{src}`: {e}"));
        let planned = plan_formula(&formula, &DbStats::of_database(&db));
        match (eval_linear(&db, &formula), eval_linear(&db, &planned)) {
            (Ok(base), Ok(opt)) => assert!(
                base.relation.equivalent(&opt.relation),
                "case {case}: planned linear result diverges\n  query: {src}\n  planned: {planned}"
            ),
            (Err(_), Err(_)) => {}
            (b, o) => panic!(
                "case {case}: planning changed linear failure for {src}: base {:?} vs planned {:?}",
                b.is_ok(),
                o.is_ok()
            ),
        }
    }
}

/// Random Datalog case: a transitive-closure-style program whose rule
/// bodies are randomly shuffled, over a random finite edge relation.
#[test]
fn datalog_planned_rules_are_result_invariant_32_cases() {
    for case in 0..32u64 {
        let mut rng = Lcg::new(2000 + case);
        let n = 3 + rng.below(5) as i128;
        let mut points = Vec::new();
        for i in 1..n {
            if rng.below(4) > 0 {
                points.push(vec![rat(i, 1), rat(i + 1, 1)]);
            }
        }
        points.push(vec![rat(n, 1), rat(1, 1)]); // keep e nonempty, add a cycle
        let e = GeneralizedRelation::from_points(2, points);
        let db = Database::new(Schema::new().with("e", 2)).with("e", e);

        // Shuffle the recursive rule's body; bodies are joins, so literal
        // order is exactly what the planner permutes.
        let bodies = [
            "tc(x, y) :- tc(x, z), e(z, y), x < 9.",
            "tc(x, y) :- e(z, y), x < 9, tc(x, z).",
            "tc(x, y) :- x < 9, tc(x, z), e(z, y).",
        ];
        let src = format!("tc(x, y) :- e(x, y).\n{}\n", bodies[rng.below(3) as usize]);
        let program = parse_program(&src).unwrap_or_else(|e| panic!("case {case}: {e}"));
        let stats = DbStats::of_database(&db);
        let planned_rules: Vec<_> = program.rules.iter().map(|r| plan_rule(r, &stats)).collect();
        let planned = Program::new(planned_rules).expect("planned rules revalidate");

        let base = run_datalog(&program, &db).unwrap_or_else(|e| panic!("case {case}: {e}"));
        let opt = run_datalog(&planned, &db).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert!(
            base.database.equivalent(&opt.database),
            "case {case}: planned fixpoint diverges for program\n{src}"
        );
    }
}
