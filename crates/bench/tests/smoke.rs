//! Smoke tests for the experiment harness: every experiment runs at tiny
//! scale and its rows satisfy the qualitative claims that EXPERIMENTS.md
//! records (monotone growth, agreement flags, lossless round-trips).

use dco_bench::experiments as ex;

fn col<'a>(row: &'a ex::ExperimentRow, name: &str) -> &'a str {
    row.values
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("column {name} missing in {row:?}"))
}

#[test]
fn e1_scaling_monotone() {
    let rows = ex::e1(&[2, 4]);
    assert_eq!(rows.len(), 2);
    let s0: usize = col(&rows[0], "enc bytes").parse().unwrap();
    let s1: usize = col(&rows[1], "enc bytes").parse().unwrap();
    assert!(s1 > s0);
    let o0: usize = col(&rows[0], "output atoms").parse().unwrap();
    let o1: usize = col(&rows[1], "output atoms").parse().unwrap();
    assert!(o1 > o0);
}

#[test]
fn e2_witnesses_exist_and_separate() {
    let rows = ex::e2(2);
    assert!(rows.len() >= 3);
    for row in &rows {
        assert_eq!(col(row, "EF-equiv"), "yes", "{row:?}");
        assert_eq!(col(row, "engine separates"), "true", "{row:?}");
    }
}

#[test]
fn e3_rank_one_witness() {
    let rows = ex::e3(1);
    assert_eq!(col(&rows[0], "EF-equiv"), "yes");
    assert_eq!(col(&rows[0], "components"), "1 vs 2");
    assert_eq!(col(&rows[0], "datalog agrees"), "true");
}

#[test]
fn e4_stages_grow_linearly() {
    let rows = ex::e4(&[4, 8]);
    let s0: usize = col(&rows[0], "stages").parse().unwrap();
    let s1: usize = col(&rows[1], "stages").parse().unwrap();
    assert_eq!(s0, 4);
    assert_eq!(s1, 8);
}

#[test]
fn e5_engines_agree_and_candidates_double_per_vertex() {
    let rows = ex::e5(&[2, 3]);
    let c0: u64 = col(&rows[0], "C-CALC1 candidates").parse().unwrap();
    let c1: u64 = col(&rows[1], "C-CALC1 candidates").parse().unwrap();
    // each extra path vertex adds 2 one-cells → ×4 candidates
    assert_eq!(c1, c0 * 4);
    assert_eq!(col(&rows[0], "reach(1,n)"), "true");
}

#[test]
fn e6_hierarchy_cells() {
    let rows = ex::e6(2);
    assert_eq!(col(&rows[0], "1-cells"), "3");
    assert_eq!(col(&rows[1], "1-cells"), "5");
}

#[test]
fn e7_lossless() {
    let rows = ex::e7(&[2]);
    for row in &rows {
        assert_eq!(col(row, "roundtrip ok"), "true", "{row:?}");
        assert_eq!(col(row, "residual"), "0", "{row:?}");
    }
}

#[test]
fn e8_output_closed_form() {
    let rows = ex::e8(&[2, 4]);
    for row in &rows {
        let bytes: usize = col(row, "output enc bytes").parse().unwrap();
        assert!(bytes > 0);
    }
}

#[test]
fn e9_agreement() {
    let rows = ex::e9(&[2, 4]);
    for row in &rows {
        assert_eq!(col(row, "integer twin ok"), "true");
        assert_eq!(col(row, "answers agree"), "true");
    }
}
