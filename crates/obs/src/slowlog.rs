//! The slow-query log: a bounded ring of queries whose total latency
//! (queue wait included) exceeded a configurable threshold, each entry
//! carrying the rendered span tree and the EXPLAIN plan (estimated vs.
//! actual cardinalities) captured at record time.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One slow query: what ran, how long it took, and why.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// The query text (possibly truncated).
    pub query: String,
    /// Total latency, queue wait included, in nanoseconds.
    pub total_ns: u64,
    /// Rendered span tree ([`crate::trace::TraceRecord::render`]).
    pub trace: String,
    /// Rendered EXPLAIN plan with estimated and (root) actual
    /// cardinalities.
    pub plan: String,
}

impl SlowQueryEntry {
    /// Total latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// A bounded ring of [`SlowQueryEntry`]s behind an adjustable latency
/// threshold. The threshold starts at [`SlowLog::DEFAULT_THRESHOLD`];
/// `set_threshold(Duration::ZERO)` logs every query (tests),
/// `set_threshold(Duration::MAX)` disables the log.
#[derive(Debug)]
pub struct SlowLog {
    threshold_ns: AtomicU64,
    ring: Mutex<VecDeque<SlowQueryEntry>>,
    cap: usize,
}

impl SlowLog {
    /// Default slow-query threshold: 1 second.
    pub const DEFAULT_THRESHOLD: Duration = Duration::from_secs(1);

    /// A log keeping at most `cap` entries (oldest evicted first).
    pub fn new(cap: usize) -> SlowLog {
        SlowLog {
            threshold_ns: AtomicU64::new(Self::DEFAULT_THRESHOLD.as_nanos() as u64),
            ring: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
        }
    }

    /// Change the latency threshold.
    pub fn set_threshold(&self, d: Duration) {
        self.threshold_ns
            .store(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Current threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Whether a query of `total_ns` total latency qualifies.
    pub fn is_slow(&self, total_ns: u64) -> bool {
        crate::enabled() && total_ns >= self.threshold_ns()
    }

    /// Append an entry, evicting the oldest past capacity.
    pub fn record(&self, entry: SlowQueryEntry) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Copy of the log contents, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.ring
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn entry(q: &str, ns: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            query: q.to_string(),
            total_ns: ns,
            trace: String::new(),
            plan: String::new(),
        }
    }

    #[test]
    fn threshold_gates_and_ring_is_bounded() {
        let log = SlowLog::new(2);
        assert!(!log.is_slow(999_999_999), "under the 1 s default");
        log.set_threshold(Duration::from_millis(10));
        assert!(log.is_slow(10_000_000));
        assert!(!log.is_slow(9_999_999));
        for i in 0..4 {
            log.record(entry(&format!("q{i}"), 20_000_000));
        }
        let got = log.entries();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].query, "q2");
        assert!((got[0].total_ms() - 20.0).abs() < 1e-9);
    }
}
