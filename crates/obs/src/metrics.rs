//! The metrics registry: sharded counters, gauges, log-scale histograms,
//! and Prometheus-style text rendering.
//!
//! Names are dotted (`server.queue_wait`, `store.wal.fsync`); rendering
//! sanitizes them to Prometheus' `[a-zA-Z0-9_]` alphabet with a `dco_`
//! prefix, so `store.wal.fsync` exposes as `dco_store_wal_fsync_*`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of cache-line-padded cells a [`Counter`] stripes over.
const COUNTER_SHARDS: usize = 8;

/// Number of histogram buckets. Bucket `0` holds the value `0`; bucket
/// `i > 0` holds values in `(2^(i-1), 2^i]`; the last bucket tops out at
/// `u64::MAX`. 65 buckets cover the full `u64` range, so a quantile
/// estimate is within one power-of-two bound of the true value for
/// *every* recordable value. Rendering skips empty buckets, so the wide
/// range costs nothing on the wire.
pub const BUCKETS: usize = 65;

/// Upper bound of bucket `i` (`u64::MAX` for the overflow bucket).
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Bucket index for a recorded value.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// This thread's counter stripe, assigned round-robin at first use so
/// writer threads spread over the shards instead of all hitting cell 0.
fn shard_idx() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    IDX.with(|i| *i)
}

/// One cache line worth of counter cell, padded so two shards never
/// false-share.
#[repr(align(64))]
#[derive(Default, Debug)]
struct PaddedCell(AtomicU64);

/// A monotone counter striped over [`COUNTER_SHARDS`] padded atomic
/// cells: concurrent writers on different threads mostly touch different
/// cache lines; reads sum the stripes.
#[derive(Default, Debug)]
pub struct Counter {
    shards: [PaddedCell; COUNTER_SHARDS],
}

impl Counter {
    /// A free-standing counter (registry-less, for tests).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.shards[shard_idx()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all stripes.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-value-wins gauge.
#[derive(Default, Debug)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// A free-standing gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the current value.
    pub fn set(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.v.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-scale histogram: power-of-two bucket bounds, so
/// recording is a `leading_zeros` plus two relaxed adds, and a quantile
/// estimate is within one bucket bound (2×) of the true value.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A free-standing histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        // Saturating, not wrapping: a wrapped sum would make successive
        // snapshots regress, which the monotonicity property forbids.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
    }

    /// Record a duration in nanoseconds (the latency convention).
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the bucket counts. Counts only grow, and
    /// the copy reads each bucket once, so two non-overlapping snapshots
    /// `s1` then `s2` always satisfy `s1.count_le(i) <= s2.count_le(i)`
    /// for every bucket — snapshots never regress.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The empty snapshot (identity of [`HistogramSnapshot::merge`]).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// A snapshot holding the given observations (for tests).
    pub fn of(values: &[u64]) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::empty();
        for &v in values {
            s.counts[bucket_of(v)] += 1;
            s.sum = s.sum.saturating_add(v);
        }
        s
    }

    /// Fold another snapshot in. Merging is associative and commutative
    /// (bucket-wise saturating addition), so per-shard snapshots can be
    /// combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Observations at or below bucket `i`'s bound.
    pub fn count_le(&self, i: usize) -> u64 {
        self.counts[..=i.min(BUCKETS - 1)].iter().sum()
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket holding the rank-`⌈q·n⌉` observation. For any recorded
    /// value `v` this is within one bucket bound: in `[v, 2·max(v,1)]`.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named family of metrics. Registration is idempotent: asking for the
/// same dotted name twice returns the same instrument, so call sites can
/// cache the `Arc` handle (the hot path never touches the registry lock).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.lock()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.lock()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Set gauge `name` to `v` (registering it on first use).
    pub fn set_gauge(&self, name: &str, v: u64) {
        self.gauge(name).set(v);
    }

    /// Render every registered instrument as Prometheus-style text
    /// exposition: `# TYPE` headers, `_total` counters, plain gauges,
    /// and cumulative `_bucket{le="…"}` / `_sum` / `_count` histograms.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, c) in &inner.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n}_total {}", c.value());
        }
        for (name, g) in &inner.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", g.value());
        }
        for (name, h) in &inner.histograms {
            let n = sanitize(name);
            let snap = h.snapshot();
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for (i, &c) in snap.counts.iter().enumerate() {
                if c == 0 {
                    continue; // only non-empty buckets; `le` is still cumulative
                }
                cum += c;
                let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", bucket_bound(i));
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", snap.count());
            let _ = writeln!(out, "{n}_sum {}", snap.sum());
            let _ = writeln!(out, "{n}_count {}", snap.count());
        }
        out
    }
}

/// `store.wal.fsync` → `dco_store_wal_fsync`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("dco_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.value(), 4000);
    }

    #[test]
    fn histogram_buckets_are_log_scale_and_quantiles_bound_the_value() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum(), 1_001_006);
        // Every quantile of a single-value histogram is within [v, 2v].
        let one = HistogramSnapshot::of(&[700]);
        let q = one.quantile(0.5);
        assert!((700..=1400).contains(&q), "q={q}");
    }

    #[test]
    fn merge_is_the_same_as_recording_everything_in_one() {
        let mut a = HistogramSnapshot::of(&[1, 5, 9]);
        let b = HistogramSnapshot::of(&[2, 6]);
        a.merge(&b);
        assert_eq!(a, HistogramSnapshot::of(&[1, 5, 9, 2, 6]));
    }

    #[test]
    fn render_is_parseable_prometheus_text() {
        let r = Registry::new();
        r.counter("server.requests").add(3);
        r.set_gauge("store.relations", 7);
        r.histogram("server.queue_wait").record(1500);
        let text = r.render();
        assert!(text.contains("# TYPE dco_server_requests counter"));
        assert!(text.contains("dco_server_requests_total 3"));
        assert!(text.contains("dco_store_relations 7"));
        assert!(text.contains("dco_server_queue_wait_bucket{le=\"2048\"} 1"));
        assert!(text.contains("dco_server_queue_wait_count 1"));
        assert!(text.contains("dco_server_queue_wait_sum 1500"));
    }

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("x.y");
        let b = r.counter("x.y");
        a.inc();
        assert_eq!(b.value(), 1);
    }
}
