//! # dco-obs — observability for the serving stack
//!
//! Three pieces, all dependency-free and std-only:
//!
//! * [`metrics`] — a low-overhead metrics registry: sharded atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket log-scale latency
//!   [`Histogram`]s with mergeable [`HistogramSnapshot`]s, rendered as
//!   Prometheus-style text exposition under stable dotted names
//!   (`server.queue_wait`, `store.wal.fsync`, …);
//! * [`trace`] — per-query structured tracing: a span tree
//!   (queue-wait → preflight → plan → eval) built on the evaluating
//!   thread, with per-[`ProbeSite`](PROBE_SITES) aggregates fanned out
//!   from the guard layer's existing probes — at zero cost when no
//!   trace is active;
//! * [`slowlog`] — a bounded ring of [`SlowQueryEntry`]s: any query
//!   whose total latency exceeds a configurable threshold is recorded
//!   with its rendered span tree and its EXPLAIN plan.
//!
//! ## Unit conventions
//!
//! Histograms record raw `u64` values. Latency histograms record
//! **nanoseconds**; the replication-lag histogram records **commit
//! seqs**. Bucket bounds are powers of two, so a quantile estimate is
//! always within one bucket bound (a factor of two) of the true value.
//!
//! ## The kill switch
//!
//! [`set_enabled`]`(false)` turns every counter increment, gauge store,
//! histogram record, and trace begin into an early return. The
//! `obs_overhead` benchmark pairs an enabled run against a disabled run
//! of the same workload to bound the cost of the default configuration.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod metrics;
pub mod slowlog;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use slowlog::{SlowLog, SlowQueryEntry};
pub use trace::{ProbeAggs, TraceRecord, TraceRing};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Canonical names of the guard layer's probe sites, in the index order
/// [`trace::probe_hit`] expects. The guard layer (`dco_core::guard`)
/// maps its `ProbeSite` enum onto these indices; a unit test over there
/// keeps the two in lockstep.
pub const PROBE_SITES: [&str; 10] = [
    "dnf_insert",
    "quantifier_elim",
    "cell_split",
    "fourier_motzkin",
    "fixpoint_stage",
    "wal_append",
    "wal_fsync",
    "snapshot_write",
    "group_commit_fsync",
    "shard_publish",
];

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable all recording (metrics, traces, slow-query
/// log). Used by the `obs_overhead` benchmark to measure the cost of the
/// default-on configuration.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is globally enabled (the default).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide default registry, for instrumentation points with no
/// natural owner (e.g. the datalog engine). Components with a lifecycle
/// of their own (a store, a server) own their own [`Registry`] instead,
/// so concurrent instances never share counters.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
