//! Per-query structured tracing.
//!
//! A trace is built on the thread that evaluates the query: the owner
//! calls [`begin`], records phase spans ([`child`]) as they complete,
//! and [`finish`]es into a [`TraceRecord`] — a span tree of
//! queue-wait → preflight → plan → eval plus per-probe-site aggregates
//! fanned out from `dco_core::guard`'s probes via [`probe_hit`].
//!
//! Zero cost when disabled: with no trace active on the thread,
//! [`probe_hit`] is a single thread-local `Cell` read, and [`begin`]
//! refuses to nest. Parallel evaluation workers inherit the probe sink
//! by value ([`probe_sink`] / [`adopt_probe_sink`]), the same way they
//! inherit the evaluation guard, so probes fired on worker threads land
//! in the owning query's aggregates.

use crate::PROBE_SITES;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-probe-site aggregates of one query: hit count plus the tuple and
/// atom budget charges, per site. Shared (`Arc`) between the owning
/// thread and any parallel evaluation workers.
#[derive(Debug)]
pub struct ProbeAggs {
    counts: [AtomicU64; PROBE_SITES.len()],
    tuples: [AtomicU64; PROBE_SITES.len()],
    atoms: [AtomicU64; PROBE_SITES.len()],
}

impl Default for ProbeAggs {
    fn default() -> ProbeAggs {
        ProbeAggs {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            tuples: std::array::from_fn(|_| AtomicU64::new(0)),
            atoms: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ProbeAggs {
    fn record(&self, site: usize, tuples: u64, atoms: u64) {
        if site >= PROBE_SITES.len() {
            return;
        }
        self.counts[site].fetch_add(1, Ordering::Relaxed);
        if tuples > 0 {
            self.tuples[site].fetch_add(tuples, Ordering::Relaxed);
        }
        if atoms > 0 {
            self.atoms[site].fetch_add(atoms, Ordering::Relaxed);
        }
    }
}

/// One completed span: a named phase with its offset from the start of
/// the trace and its duration, in nanoseconds.
#[derive(Debug, Clone)]
pub struct Span {
    /// Phase name (`queue_wait`, `preflight`, `plan`, `eval`, …).
    pub name: &'static str,
    /// Offset of the span start from the trace start.
    pub start_ns: u64,
    /// Span duration.
    pub dur_ns: u64,
}

/// Per-site probe line of a finished trace.
#[derive(Debug, Clone)]
pub struct ProbeLine {
    /// Site name (one of [`PROBE_SITES`]).
    pub site: &'static str,
    /// Probe hits at this site.
    pub count: u64,
    /// Tuple (disjunct) budget charged at this site.
    pub tuples: u64,
    /// Atom budget charged at this site.
    pub atoms: u64,
}

/// A finished query trace: the span tree plus probe aggregates.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// What was traced (the query text, possibly truncated).
    pub label: String,
    /// Total traced time including queue wait, in nanoseconds.
    pub total_ns: u64,
    /// Phase spans, in completion order. `queue_wait`, when present, is
    /// always first.
    pub spans: Vec<Span>,
    /// Probe-site aggregates attributed to the `eval` phase (only sites
    /// that fired).
    pub probes: Vec<ProbeLine>,
}

impl TraceRecord {
    /// Render the span tree as indented text, one line per span, probe
    /// aggregates nested under `eval`:
    ///
    /// ```text
    /// trace 12.345ms: r(x) & s(x)
    ///   queue_wait 0.102ms
    ///   preflight 0.031ms
    ///   plan 0.008ms
    ///   eval 12.204ms
    ///     probe dnf_insert n=42 tuples=40 atoms=160
    /// ```
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        let _ = writeln!(out, "trace {:.3}ms: {}", ms(self.total_ns), self.label);
        for s in &self.spans {
            let _ = writeln!(out, "  {} {:.3}ms", s.name, ms(s.dur_ns));
            if s.name == "eval" {
                for p in &self.probes {
                    let _ = writeln!(
                        out,
                        "    probe {} n={} tuples={} atoms={}",
                        p.site, p.count, p.tuples, p.atoms
                    );
                }
            }
        }
        out
    }
}

/// A bounded in-memory ring of recent [`TraceRecord`]s.
#[derive(Debug)]
pub struct TraceRing {
    ring: Mutex<VecDeque<TraceRecord>>,
    cap: usize,
}

impl TraceRing {
    /// A ring holding at most `cap` records (oldest evicted first).
    pub fn new(cap: usize) -> TraceRing {
        TraceRing {
            ring: Mutex::new(VecDeque::with_capacity(cap.min(64))),
            cap: cap.max(1),
        }
    }

    /// Append a record, evicting the oldest past capacity.
    pub fn push(&self, rec: TraceRecord) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Copy of the ring contents, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.ring
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

struct Builder {
    label: String,
    started: Instant,
    queue_wait_ns: u64,
    spans: Vec<Span>,
    probes: Arc<ProbeAggs>,
}

thread_local! {
    /// Fast-path flag mirroring `CURRENT.is_some() || SINK.is_some()`:
    /// an untraced probe fan-out costs one `Cell` read.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CURRENT: RefCell<Option<Builder>> = const { RefCell::new(None) };
    /// Probe sink for this thread: the owner's during a trace, or an
    /// adopted clone on a parallel evaluation worker.
    static SINK: RefCell<Option<Arc<ProbeAggs>>> = const { RefCell::new(None) };
    /// Queue wait handed over by the serving layer, consumed by the next
    /// [`begin`] on this thread.
    static PENDING_QUEUE_WAIT: Cell<u64> = const { Cell::new(0) };
}

/// Record the time a request spent queued before evaluation; consumed
/// (and reset) by the next [`begin`] on this thread, which turns it into
/// the leading `queue_wait` span.
pub fn note_queue_wait(d: Duration) {
    PENDING_QUEUE_WAIT.with(|c| c.set(d.as_nanos().min(u64::MAX as u128) as u64));
}

/// Start a trace on this thread. Returns `false` — and records nothing —
/// when tracing is globally disabled or a trace is already active (the
/// outermost caller owns the trace). The owner must pair this with
/// [`finish`].
pub fn begin(label: &str) -> bool {
    let queue_wait_ns = PENDING_QUEUE_WAIT.with(|c| c.replace(0));
    if !crate::enabled() || CURRENT.with(|c| c.borrow().is_some()) {
        return false;
    }
    let probes = Arc::new(ProbeAggs::default());
    SINK.with(|s| *s.borrow_mut() = Some(probes.clone()));
    ACTIVE.with(|a| a.set(true));
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Builder {
            label: label.chars().take(256).collect(),
            started: Instant::now(),
            queue_wait_ns,
            spans: Vec::with_capacity(4),
            probes,
        })
    });
    true
}

/// Record a just-completed phase of duration `dur` ending now. No-op
/// without an active trace.
pub fn child(name: &'static str, dur: Duration) {
    if !ACTIVE.with(Cell::get) {
        return;
    }
    CURRENT.with(|c| {
        if let Some(b) = c.borrow_mut().as_mut() {
            let end = b.started.elapsed().as_nanos() as u64;
            let dur_ns = dur.as_nanos().min(u64::MAX as u128) as u64;
            b.spans.push(Span {
                name,
                start_ns: b.queue_wait_ns + end.saturating_sub(dur_ns),
                dur_ns,
            });
        }
    });
}

/// Fan-out target of `dco_core::guard`'s probes: charge `site` (an index
/// into [`PROBE_SITES`]) on the active probe sink. One `Cell` read when
/// no trace is active.
#[inline]
pub fn probe_hit(site: usize, tuples: u64, atoms: u64) {
    if !ACTIVE.with(Cell::get) {
        return;
    }
    SINK.with(|s| {
        if let Some(aggs) = s.borrow().as_ref() {
            aggs.record(site, tuples, atoms);
        }
    });
}

/// The active probe sink, for handing to a parallel evaluation worker
/// (capture before spawn, [`adopt_probe_sink`] inside the worker).
pub fn probe_sink() -> Option<Arc<ProbeAggs>> {
    if !ACTIVE.with(Cell::get) {
        return None;
    }
    SINK.with(|s| s.borrow().clone())
}

/// Install a probe sink on a worker thread whose thread-locals die with
/// it (mirrors `guard::install_for_worker`).
pub fn adopt_probe_sink(sink: Option<Arc<ProbeAggs>>) {
    if let Some(aggs) = sink {
        ACTIVE.with(|a| a.set(true));
        SINK.with(|s| *s.borrow_mut() = Some(aggs));
    }
}

/// Finish the trace begun on this thread, returning its record. The
/// record's `total_ns` includes the queue wait handed over via
/// [`note_queue_wait`].
pub fn finish() -> Option<TraceRecord> {
    let b = CURRENT.with(|c| c.borrow_mut().take())?;
    ACTIVE.with(|a| a.set(false));
    SINK.with(|s| *s.borrow_mut() = None);
    let mut spans = Vec::with_capacity(b.spans.len() + 1);
    if b.queue_wait_ns > 0 {
        spans.push(Span {
            name: "queue_wait",
            start_ns: 0,
            dur_ns: b.queue_wait_ns,
        });
    }
    spans.extend(b.spans);
    let probes = PROBE_SITES
        .iter()
        .enumerate()
        .filter_map(|(i, site)| {
            let count = b.probes.counts[i].load(Ordering::Relaxed);
            (count > 0).then(|| ProbeLine {
                site,
                count,
                tuples: b.probes.tuples[i].load(Ordering::Relaxed),
                atoms: b.probes.atoms[i].load(Ordering::Relaxed),
            })
        })
        .collect();
    Some(TraceRecord {
        label: b.label,
        total_ns: b.queue_wait_ns + b.started.elapsed().as_nanos() as u64,
        spans,
        probes,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn a_trace_collects_spans_and_probe_aggregates() {
        note_queue_wait(Duration::from_micros(50));
        assert!(begin("r(x)"));
        assert!(!begin("nested"), "traces never nest");
        child("preflight", Duration::from_micros(10));
        probe_hit(0, 4, 16);
        probe_hit(0, 0, 0);
        child("eval", Duration::from_micros(20));
        let rec = finish().unwrap();
        assert!(finish().is_none(), "finish consumes the trace");
        assert_eq!(rec.spans[0].name, "queue_wait");
        assert_eq!(rec.spans[0].dur_ns, 50_000);
        assert_eq!(
            rec.spans.iter().map(|s| s.name).collect::<Vec<_>>(),
            vec!["queue_wait", "preflight", "eval"]
        );
        assert_eq!(rec.probes.len(), 1);
        assert_eq!(rec.probes[0].site, "dnf_insert");
        assert_eq!(rec.probes[0].count, 2);
        assert_eq!(rec.probes[0].tuples, 4);
        assert_eq!(rec.probes[0].atoms, 16);
        assert!(rec.total_ns >= 50_000, "total includes queue wait");
        let text = rec.render();
        assert!(text.contains("queue_wait"));
        assert!(text.contains("probe dnf_insert n=2 tuples=4 atoms=16"));
    }

    #[test]
    fn probes_from_adopted_sinks_land_in_the_owners_trace() {
        assert!(begin("q"));
        let sink = probe_sink();
        assert!(sink.is_some());
        let t = std::thread::spawn(move || {
            adopt_probe_sink(sink);
            probe_hit(3, 7, 0);
        });
        t.join().unwrap();
        child("eval", Duration::from_micros(1));
        let rec = finish().unwrap();
        assert_eq!(rec.probes[0].site, "fourier_motzkin");
        assert_eq!(rec.probes[0].tuples, 7);
    }

    #[test]
    fn probe_hit_without_a_trace_is_a_noop() {
        probe_hit(0, 1_000_000, 1_000_000);
        assert!(probe_sink().is_none());
    }

    #[test]
    fn ring_is_bounded() {
        let ring = TraceRing::new(2);
        for i in 0..5 {
            ring.push(TraceRecord {
                label: format!("q{i}"),
                total_ns: i,
                spans: Vec::new(),
                probes: Vec::new(),
            });
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].label, "q3");
        assert_eq!(got[1].label, "q4");
    }
}
