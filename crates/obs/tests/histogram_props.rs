//! Property tests for the histogram math: merge is associative and
//! commutative, quantile estimates are within one bucket bound of the
//! true value, and snapshots never regress under concurrent recording.

use dco_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn values() -> impl Strategy<Value = Vec<u64>> {
    // The in-tree proptest shim has no u64 range strategy: widen u32
    // samples with a value-derived shift to cover every bucket scale.
    prop::collection::vec((0u32..u32::MAX, 0usize..16), 0..64)
        .prop_map(|vs| vs.into_iter().map(|(v, s)| (v as u64) << s).collect())
}

proptest! {
    /// (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c): bucket-wise addition associates.
    #[test]
    fn merge_is_associative(a in values(), b in values(), c in values()) {
        let (sa, sb, sc) = (
            HistogramSnapshot::of(&a),
            HistogramSnapshot::of(&b),
            HistogramSnapshot::of(&c),
        );
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// a ⊔ b == b ⊔ a, and both equal recording everything into one.
    #[test]
    fn merge_is_commutative_and_lossless(a in values(), b in values()) {
        let mut ab = HistogramSnapshot::of(&a);
        ab.merge(&HistogramSnapshot::of(&b));
        let mut ba = HistogramSnapshot::of(&b);
        ba.merge(&HistogramSnapshot::of(&a));
        prop_assert_eq!(ab.clone(), ba);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(ab, HistogramSnapshot::of(&all));
    }

    /// The q-quantile estimate of any sample is within one power-of-two
    /// bucket of the true rank statistic: estimate ∈ [v, 2·max(v, 1)].
    #[test]
    fn quantile_is_within_one_bucket_bound(mut vs in values(), q in 0u32..=100) {
        if vs.is_empty() {
            vs.push(0);
        }
        let q = q as f64 / 100.0;
        let snap = HistogramSnapshot::of(&vs);
        vs.sort_unstable();
        let rank = ((q * vs.len() as f64).ceil() as usize).max(1).min(vs.len());
        let v = vs[rank - 1];
        let est = snap.quantile(q);
        prop_assert!(est >= v, "estimate {est} below true quantile {v}");
        prop_assert!(
            est <= v.max(1).saturating_mul(2),
            "estimate {est} beyond one bucket bound of {v}"
        );
    }
}

/// Bucket counts and sums only grow, and a snapshot reads each bucket
/// once — so while writer threads record concurrently, a sequence of
/// snapshots is monotone in every cumulative count: later snapshots
/// never report fewer observations than earlier ones.
#[test]
fn snapshots_never_regress_under_concurrent_recording() {
    let h = Arc::new(Histogram::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..3)
        .map(|w| {
            let h = h.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut v = 1u64 << w;
                while !stop.load(Ordering::Relaxed) {
                    h.record(v);
                    v = v.wrapping_mul(6364136223846793005).wrapping_add(1) >> 16;
                }
            })
        })
        .collect();

    let mut prev = h.snapshot();
    for _ in 0..200 {
        let next = h.snapshot();
        assert!(next.count() >= prev.count(), "total count regressed");
        assert!(next.sum() >= prev.sum(), "sum regressed");
        for i in 0..dco_obs::metrics::BUCKETS {
            assert!(
                next.count_le(i) >= prev.count_le(i),
                "cumulative bucket {i} regressed"
            );
        }
        prev = next;
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().expect("writer");
    }
}
