//! Parser for the textual Datalog¬ syntax.
//!
//! ```text
//! % transitive closure with a constraint and negation
//! tc(x, y) :- e(x, y).
//! tc(x, y) :- tc(x, z), e(z, y).
//! small(x)  :- tc(x, x), not e(x, x), x < 3.
//! ```
//!
//! * `%` or `//` start a comment to end of line;
//! * body literals are separated by `,`;
//! * `not L` or `!L` negates a predicate literal;
//! * constraints use the comparison syntax of `dco-logic`
//!   (`x < y`, `x <= 1/2`, `x != y`, …);
//! * constants may appear in predicate arguments and in heads
//!   (`p(x, 3) :- …` desugars the head constant to a fresh constrained
//!   variable).

use crate::ast::{Literal, Program, ProgramError, Rule};
use dco_core::prelude::{RawOp, Rational};
use dco_logic::{ArgTerm, LinExpr};
use std::fmt;

/// Errors from parsing a program.
#[derive(Debug, Clone, PartialEq)]
pub enum DatalogParseError {
    /// Syntax error with line number (1-based) and message.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// The parsed program failed validation.
    Invalid(ProgramError),
}

impl fmt::Display for DatalogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogParseError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            DatalogParseError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for DatalogParseError {}

/// Parse a Datalog¬ program.
pub fn parse_program(src: &str) -> Result<Program, DatalogParseError> {
    let mut rules = Vec::new();
    let mut fresh = 0usize;
    // Join physical lines; rules end with '.' — we split on '.' at top level
    // per line for simplicity (a rule must fit on one line).
    for (lineno, raw_line) in src.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let line = lineno + 1;
        let text = strip_comment(raw_line).trim();
        let Some(rule_text) = text.strip_suffix('.') else {
            return Err(DatalogParseError::Syntax {
                line,
                message: "rule must end with '.'".to_string(),
            });
        };
        rules.push(parse_rule(rule_text, line, &mut fresh)?);
    }
    Program::new(rules).map_err(DatalogParseError::Invalid)
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find('%').unwrap_or(line.len());
    let cut2 = line.find("//").unwrap_or(line.len());
    &line[..cut.min(cut2)]
}

fn parse_rule(text: &str, line: usize, fresh: &mut usize) -> Result<Rule, DatalogParseError> {
    let syntax = |message: String| DatalogParseError::Syntax { line, message };
    let (head_text, body_text) = match text.split_once(":-") {
        Some((h, b)) => (h.trim(), b.trim()),
        None => (text.trim(), ""),
    };
    // Head: name(args)
    let (head, raw_args) = parse_atom_shape(head_text).map_err(|m| syntax(m))?;
    let mut head_vars = Vec::new();
    let mut extra_constraints: Vec<Literal> = Vec::new();
    for arg in raw_args {
        match parse_arg(&arg).map_err(|m| syntax(m))? {
            ArgTerm::Var(v) => head_vars.push(v),
            ArgTerm::Const(c) => {
                // desugar head constant: fresh var pinned by a constraint
                *fresh += 1;
                let v = format!("_h{fresh}");
                extra_constraints.push(Literal::Constraint(
                    LinExpr::var(&v),
                    RawOp::Eq,
                    LinExpr::cst(c),
                ));
                head_vars.push(v);
            }
        }
    }
    let mut body = Vec::new();
    if !body_text.is_empty() {
        for lit_text in split_top_level(body_text) {
            body.push(parse_literal(lit_text.trim(), line)?);
        }
    }
    body.extend(extra_constraints);
    Ok(Rule { head, head_vars, body })
}

/// Split a body on commas not nested in parentheses.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0;
    let mut start = 0;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => depth -= 1,
            b',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

fn parse_literal(text: &str, line: usize) -> Result<Literal, DatalogParseError> {
    let syntax = |message: String| DatalogParseError::Syntax { line, message };
    let (negated, text) = if let Some(rest) = text.strip_prefix("not ") {
        (true, rest.trim())
    } else if let Some(rest) = text.strip_prefix('!') {
        (true, rest.trim())
    } else {
        (false, text)
    };
    // Predicate literal?  name(...) with nothing after the closing paren.
    if looks_like_atom(text) {
        let (name, raw_args) = parse_atom_shape(text).map_err(|m| syntax(m))?;
        let args = raw_args
            .into_iter()
            .map(|a| parse_arg(&a))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|m| syntax(m))?;
        return Ok(if negated {
            Literal::Neg(name, args)
        } else {
            Literal::Pos(name, args)
        });
    }
    if negated {
        return Err(syntax("'not' applies only to predicate literals".to_string()));
    }
    // Constraint: reuse the formula parser.
    match dco_logic::parse_formula(text) {
        Ok(dco_logic::Formula::Compare(l, op, r)) => Ok(Literal::Constraint(l, op, r)),
        Ok(_) => Err(syntax(format!("expected a constraint or literal, got: {text}"))),
        Err(e) => Err(syntax(format!("bad constraint {text:?}: {e}"))),
    }
}

fn looks_like_atom(text: &str) -> bool {
    match text.find('(') {
        None => false,
        Some(i) => {
            let name = text[..i].trim();
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_')
                && text.trim_end().ends_with(')')
                && balanced_until_end(&text[i..])
        }
    }
}

/// Is the parenthesized segment balanced exactly at the final char?
fn balanced_until_end(s: &str) -> bool {
    let mut depth = 0;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return s[i + 1..].trim().is_empty();
                }
            }
            _ => {}
        }
    }
    false
}

/// Parse `name(a, b, c)` into name + raw argument strings.
fn parse_atom_shape(text: &str) -> Result<(String, Vec<String>), String> {
    let open = text.find('(').ok_or_else(|| format!("expected atom, got {text:?}"))?;
    let name = text[..open].trim();
    if name.is_empty() {
        return Err(format!("missing predicate name in {text:?}"));
    }
    let rest = text[open..].trim();
    if !rest.starts_with('(') || !rest.ends_with(')') {
        return Err(format!("malformed atom {text:?}"));
    }
    let inner = &rest[1..rest.len() - 1];
    let args = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|s| s.trim().to_string()).collect()
    };
    Ok((name.to_string(), args))
}

fn parse_arg(text: &str) -> Result<ArgTerm, String> {
    let t = text.trim();
    if t.is_empty() {
        return Err("empty argument".to_string());
    }
    let first = t.chars().next().expect("nonempty");
    if first.is_ascii_digit() || first == '-' {
        let r: Rational = t
            .parse()
            .map_err(|_| format!("bad constant argument {t:?}"))?;
        Ok(ArgTerm::Const(r))
    } else if t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Ok(ArgTerm::Var(t.to_string()))
    } else {
        Err(format!("bad argument {t:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dco_core::prelude::rat;

    #[test]
    fn parses_transitive_closure() {
        let p = parse_program(
            "% classic TC\n\
             tc(x, y) :- e(x, y).\n\
             tc(x, y) :- tc(x, z), e(z, y).\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.idb_predicates(), vec!["tc"]);
        assert_eq!(p.edb_predicates(), vec!["e"]);
    }

    #[test]
    fn parses_negation_and_constraints() {
        let p = parse_program("q(x) :- e(x, y), not e(y, x), x < 3, y != 1/2.\n").unwrap();
        let r = &p.rules[0];
        assert_eq!(r.body.len(), 4);
        assert!(matches!(r.body[0], Literal::Pos(..)));
        assert!(matches!(r.body[1], Literal::Neg(..)));
        assert!(matches!(r.body[2], Literal::Constraint(..)));
        assert!(matches!(r.body[3], Literal::Constraint(..)));
    }

    #[test]
    fn bang_negation() {
        let p = parse_program("q(x) :- e(x, x), !f(x).\n").unwrap();
        assert!(matches!(p.rules[0].body[1], Literal::Neg(..)));
    }

    #[test]
    fn head_constants_desugar() {
        let p = parse_program("q(x, 3) :- e(x, x).\n").unwrap();
        let r = &p.rules[0];
        assert_eq!(r.head_vars.len(), 2);
        // last body literal pins the fresh variable to 3
        assert!(matches!(r.body.last(), Some(Literal::Constraint(..))));
    }

    #[test]
    fn constant_arguments() {
        let p = parse_program("q(x) :- e(x, 5), e(-1/2, x).\n").unwrap();
        match &p.rules[0].body[0] {
            Literal::Pos(_, args) => {
                assert!(matches!(args[1], ArgTerm::Const(c) if c == rat(5, 1)))
            }
            _ => panic!(),
        }
        match &p.rules[0].body[1] {
            Literal::Pos(_, args) => {
                assert!(matches!(args[0], ArgTerm::Const(c) if c == rat(-1, 2)))
            }
            _ => panic!(),
        }
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = parse_program(
            "\n% comment\n// another\n  q(x) :- e(x, x). % trailing\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn missing_dot_is_error() {
        assert!(matches!(
            parse_program("q(x) :- e(x, x)"),
            Err(DatalogParseError::Syntax { .. })
        ));
    }

    #[test]
    fn negated_constraint_rejected() {
        assert!(parse_program("q(x) :- e(x, x), not x < 3.\n").is_err());
    }

    #[test]
    fn facts_allowed() {
        // a rule with empty body is a "fact scheme" — constants only
        let p = parse_program("base(1, 2).\nbase(3, 4).\nq(x) :- base(x, y).\n");
        // head constants desugar to constrained fresh vars, but with an empty
        // body those vars are unbound → validation error is acceptable; the
        // desugaring adds the pinning constraints, making them bound.
        let p = p.unwrap();
        assert_eq!(p.rules.len(), 3);
    }
}
