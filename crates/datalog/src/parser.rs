//! Parser for the textual Datalog¬ syntax (re-exported).
//!
//! The parser moved to [`dco_logic::datalog`] alongside the rule AST; this
//! module keeps the historical paths working.

pub use dco_logic::datalog::{parse_program, DatalogParseError};
