//! # dco-datalog — inflationary Datalog¬ over dense-order constraint databases
//!
//! The recursive query language of §4 of *Dense-Order Constraint Databases*
//! (Grumbach & Su, PODS 1995). Theorem 4.4 — the paper's central result —
//! states that inflationary Datalog with negation expresses **exactly** the
//! PTIME queries over dense-order constraint databases. This crate
//! implements the language: rules with positive/negated predicate literals
//! and dense-order constraints, evaluated bottom-up in closed form to the
//! inflationary fixpoint.
//!
//! ```
//! use dco_core::prelude::*;
//! use dco_datalog::{parse_program, run};
//!
//! let program = parse_program(
//!     "tc(x, y) :- e(x, y).\n\
//!      tc(x, y) :- tc(x, z), e(z, y).\n").unwrap();
//! let e = GeneralizedRelation::from_points(2, vec![
//!     vec![rat(1, 1), rat(2, 1)],
//!     vec![rat(2, 1), rat(3, 1)],
//! ]);
//! let db = Database::new(Schema::new().with("e", 2)).with("e", e);
//! let fix = run(&program, &db).unwrap();
//! assert!(fix.database.get("tc").unwrap().contains_point(&[rat(1, 1), rat(3, 1)]));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod checked;
pub mod engine;
pub mod guarded;
pub mod parser;
pub mod programs;
pub mod seminaive;
pub mod stratified;

pub use ast::{Literal, Program, ProgramError, Rule};
pub use checked::{
    checked_run, checked_run_stratified, checked_run_stratified_with, checked_run_with,
    CheckedFixpoint, CheckedRunError, CheckedStratified,
};
pub use engine::{run, run_with, EngineConfig, EngineError, EngineStats, FixpointResult};
pub use guarded::{
    try_run, try_run_stratified, try_run_stratified_with, try_run_with, TryRunError,
};
pub use parser::{parse_program, DatalogParseError};
pub use seminaive::{run_seminaive, SemiNaiveError};
pub use stratified::{
    run_stratified, run_stratified_with, stratify, StratifiedResult, StratifyError,
};
