//! Analyzer-gated Datalog¬ evaluation.
//!
//! [`checked_run`] (inflationary) and [`checked_run_stratified`] run the
//! `dco-analysis` passes before any fixpoint work. Error-severity findings
//! reject the program with the full diagnostic list. The inflationary
//! entry point additionally *prunes* rules whose bodies are statically
//! unsatisfiable — they can never fire, so dropping them saves per-stage
//! body evaluations without changing the fixpoint.

use crate::ast::{Literal, Program};
use crate::engine::{run_with, EngineConfig, EngineError, FixpointResult};
use crate::stratified::{run_stratified_with, StratifiedResult, StratifyError};
use dco_analysis::stats::DbStats;
use dco_analysis::{
    analyze_program, cost, has_errors, plan_rule, unsat, AnalysisOptions, Diagnostic, Severity,
};
use dco_core::prelude::{with_eval_config, Database, EvalConfig};
use dco_logic::Formula;
use std::collections::BTreeSet;
use std::fmt;

/// Why a checked run did not produce a fixpoint.
#[derive(Debug)]
pub enum CheckedRunError {
    /// The analyzer found error-severity problems; nothing was evaluated.
    Rejected(Vec<Diagnostic>),
    /// The analyzer passed but the engine still failed.
    Engine(EngineError),
    /// The analyzer passed but stratified evaluation still failed.
    Stratify(StratifyError),
}

impl fmt::Display for CheckedRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckedRunError::Rejected(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count();
                writeln!(
                    f,
                    "program rejected by static analysis ({errors} error(s)):"
                )?;
                for d in diags {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
            CheckedRunError::Engine(e) => write!(f, "engine error: {e}"),
            CheckedRunError::Stratify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckedRunError {}

/// An inflationary fixpoint plus what the analyzer had to say.
#[derive(Debug, Clone)]
pub struct CheckedFixpoint {
    /// The engine result.
    pub result: FixpointResult,
    /// Non-fatal analyzer findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of statically-dead rules dropped before evaluation.
    pub pruned_rules: usize,
}

/// A stratified result plus what the analyzer had to say.
#[derive(Debug, Clone)]
pub struct CheckedStratified {
    /// The stratified result.
    pub result: StratifiedResult,
    /// Non-fatal analyzer findings.
    pub diagnostics: Vec<Diagnostic>,
}

/// Drop rules with statically-unsatisfiable bodies. A head predicate is
/// never dropped entirely: if *all* its rules are dead they are kept, so
/// the predicate stays defined (as empty) for rules that reference it.
fn prune_dead_rules(program: &Program) -> (Program, usize) {
    let dead: Vec<bool> = program
        .rules
        .iter()
        .map(unsat::rule_body_is_unsat)
        .collect();
    let live_heads: BTreeSet<&str> = program
        .rules
        .iter()
        .zip(&dead)
        .filter(|(_, &d)| !d)
        .map(|(r, _)| r.head.as_str())
        .collect();
    let kept: Vec<_> = program
        .rules
        .iter()
        .zip(&dead)
        .filter(|(r, &d)| !d || !live_heads.contains(r.head.as_str()))
        .map(|(r, _)| r.clone())
        .collect();
    let pruned = program.rules.len() - kept.len();
    if pruned == 0 {
        return (program.clone(), 0);
    }
    match Program::new(kept) {
        Ok(p) => (p, pruned),
        // Validation of a subset of a valid program cannot fail, but fall
        // back to the original rather than panic.
        Err(_) => (program.clone(), 0),
    }
}

/// Reorder every rule body by the input database's statistics (literal
/// order is join order under the bottom-up engine). Planning permutes
/// literals only — heads, variables, and source lines are untouched — so
/// the fixpoint is unchanged; the property test in `dco-bench` holds the
/// engines to that.
fn plan_program(program: &Program, input: &Database) -> Program {
    let stats = DbStats::of_database(input);
    let rules: Vec<_> = program.rules.iter().map(|r| plan_rule(r, &stats)).collect();
    // A permutation of valid rules revalidates; keep the original if not.
    Program::new(rules).unwrap_or_else(|_| program.clone())
}

/// Analyze, prune dead rules, and run the inflationary engine.
///
/// Uses [`AnalysisOptions::inflationary`]: unstratifiable programs and
/// dead rules are warnings here, because the inflationary semantics is
/// well-defined without stratification and dead rules are simply removed.
pub fn checked_run(
    program: &Program,
    input: &Database,
) -> Result<CheckedFixpoint, CheckedRunError> {
    checked_run_with(program, input, &EngineConfig::default())
}

/// [`checked_run`] with engine configuration.
pub fn checked_run_with(
    program: &Program,
    input: &Database,
    config: &EngineConfig,
) -> Result<CheckedFixpoint, CheckedRunError> {
    let diagnostics = analyze_program(
        program,
        Some(input.schema()),
        &AnalysisOptions::inflationary(),
    );
    if has_errors(&diagnostics) {
        return Err(CheckedRunError::Rejected(diagnostics));
    }
    let (pruned_program, pruned_rules) = prune_dead_rules(program);
    let planned_program = plan_program(&pruned_program, input);
    let cfg = eval_config_for(input, &planned_program);
    let result = with_eval_config(cfg, || run_with(&planned_program, input, config))
        .map_err(CheckedRunError::Engine)?;
    Ok(CheckedFixpoint {
        result,
        diagnostics,
        pruned_rules,
    })
}

/// Choose an [`EvalConfig`] from the analyzer's static cost estimate:
/// predicted cell count over the combined constant set of database and
/// program, with the widest rule body's variable count. Cheap fixpoints
/// run sequentially; expensive ones enable the parallel layer.
pub fn eval_config_for(input: &Database, program: &Program) -> EvalConfig {
    let mut constants = input.constants();
    let mut widest = 0usize;
    for r in &program.rules {
        let body = Formula::And(r.body.iter().map(Literal::to_formula).collect());
        constants.extend(cost::constants_of_formula(&body));
        widest = widest.max(cost::all_vars(&body).len().max(r.head_vars.len()));
    }
    EvalConfig::for_predicted_cost(cost::predicted_cells(constants.len(), widest))
}

/// Analyze under strict options (unstratifiable programs and dead rules
/// are errors) and run under stratified semantics.
pub fn checked_run_stratified(
    program: &Program,
    input: &Database,
) -> Result<CheckedStratified, CheckedRunError> {
    checked_run_stratified_with(program, input, &EngineConfig::default())
}

/// [`checked_run_stratified`] with engine configuration.
pub fn checked_run_stratified_with(
    program: &Program,
    input: &Database,
    config: &EngineConfig,
) -> Result<CheckedStratified, CheckedRunError> {
    let diagnostics = analyze_program(program, Some(input.schema()), &AnalysisOptions::default());
    if has_errors(&diagnostics) {
        return Err(CheckedRunError::Rejected(diagnostics));
    }
    let planned_program = plan_program(program, input);
    let cfg = eval_config_for(input, &planned_program);
    let result = with_eval_config(cfg, || run_stratified_with(&planned_program, input, config))
        .map_err(CheckedRunError::Stratify)?;
    Ok(CheckedStratified {
        result,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use dco_core::prelude::*;

    fn db() -> Database {
        let e = GeneralizedRelation::from_points(
            2,
            vec![vec![rat(1, 1), rat(2, 1)], vec![rat(2, 1), rat(3, 1)]],
        );
        Database::new(Schema::new().with("e", 2)).with("e", e)
    }

    #[test]
    fn clean_program_runs() {
        let p = parse_program(
            "tc(x, y) :- e(x, y).\n\
             tc(x, y) :- tc(x, z), e(z, y).\n",
        )
        .unwrap();
        let out = checked_run(&p, &db()).unwrap();
        assert_eq!(out.pruned_rules, 0);
        assert!(out.diagnostics.is_empty());
        assert!(out
            .result
            .database
            .get("tc")
            .unwrap()
            .contains_point(&[rat(1, 1), rat(3, 1)]));
    }

    #[test]
    fn arity_mismatch_rejected_before_evaluation() {
        let p = parse_program("p(x) :- e(x, x, x).\n").unwrap();
        let err = checked_run(&p, &db()).unwrap_err();
        let CheckedRunError::Rejected(diags) = err else {
            panic!("expected rejection");
        };
        assert!(diags.iter().any(|d| d.code == "DCO102"));
    }

    #[test]
    fn dead_rule_is_pruned_without_changing_the_fixpoint() {
        let p = parse_program(
            "tc(x, y) :- e(x, y).\n\
             tc(x, y) :- e(x, y), x < y, y < x.\n\
             tc(x, y) :- tc(x, z), e(z, y).\n",
        )
        .unwrap();
        let out = checked_run(&p, &db()).unwrap();
        assert_eq!(out.pruned_rules, 1);
        assert!(out.diagnostics.iter().any(|d| d.code == "DCO401"));
        let plain = crate::engine::run(&p, &db()).unwrap();
        assert!(out.result.database.equivalent(&plain.database));
    }

    #[test]
    fn fully_dead_predicate_stays_defined() {
        // Both q rules are dead; q must still exist (empty) for p's body.
        let p = parse_program(
            "q(x) :- v(x), x < 0, x > 1.\n\
             p(x) :- v(x), not q(x).\n",
        )
        .unwrap();
        let v = GeneralizedRelation::from_points(1, vec![vec![rat(1, 1)]]);
        let db = Database::new(Schema::new().with("v", 1)).with("v", v);
        let out = checked_run(&p, &db).unwrap();
        assert_eq!(out.pruned_rules, 0, "sole rule of q must be kept");
        assert!(out
            .result
            .database
            .get("p")
            .unwrap()
            .contains_point(&[rat(1, 1)]));
    }

    #[test]
    fn stratified_mode_rejects_unstratifiable_with_path() {
        let p = parse_program(
            "a(x) :- v(x), not b(x).\n\
             b(x) :- v(x), not a(x).\n",
        )
        .unwrap();
        let v = GeneralizedRelation::from_points(1, vec![vec![rat(1, 1)]]);
        let db = Database::new(Schema::new().with("v", 1)).with("v", v);
        let err = checked_run_stratified(&p, &db).unwrap_err();
        let CheckedRunError::Rejected(diags) = err else {
            panic!("expected rejection");
        };
        let d = diags.iter().find(|d| d.code == "DCO301").unwrap();
        assert!(d.message.contains(" -> "), "cycle path: {}", d.message);
        // The inflationary entry point accepts the same program.
        assert!(checked_run(&p, &db).is_ok());
    }
}
