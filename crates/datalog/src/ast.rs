//! Abstract syntax for inflationary Datalog¬ (re-exported).
//!
//! The rule AST moved to [`dco_logic::datalog`] so the static analyzer in
//! `dco-analysis` can inspect programs without depending on the evaluation
//! engine; this module keeps the historical paths working.

pub use dco_logic::datalog::{Literal, Program, ProgramError, Rule};
