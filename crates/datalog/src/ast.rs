//! Abstract syntax for inflationary Datalog¬ with dense-order constraints.
//!
//! Following §4 of the paper: a program is a set of rules
//!
//! ```text
//! R(x̄) :- L₁, …, L_n.
//! ```
//!
//! where each `Lᵢ` is a positive or negated predicate atom over variables
//! and rational constants, or a dense-order constraint (`x < y`, `x ≤ 3`, …).
//! Negation is permitted in rule bodies; the semantics is **inflationary**:
//! facts derived at each stage are added to the store and never retracted,
//! which guarantees a polynomial-step fixpoint over the finite lattice of
//! cell-definable relations (the engine in [`crate::engine`]).

use dco_core::prelude::RawOp;
use dco_logic::{ArgTerm, Formula, LinExpr};
use std::collections::BTreeMap;
use std::fmt;

/// A body literal.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    /// A positive predicate atom `R(t̄)`.
    Pos(String, Vec<ArgTerm>),
    /// A negated predicate atom `¬R(t̄)` (inflationary negation).
    Neg(String, Vec<ArgTerm>),
    /// A dense-order constraint between simple terms.
    Constraint(LinExpr, RawOp, LinExpr),
}

impl Literal {
    /// Variables mentioned by the literal.
    pub fn vars(&self) -> Vec<String> {
        match self {
            Literal::Pos(_, args) | Literal::Neg(_, args) => args
                .iter()
                .filter_map(|a| match a {
                    ArgTerm::Var(v) => Some(v.clone()),
                    ArgTerm::Const(_) => None,
                })
                .collect(),
            Literal::Constraint(l, _, r) => {
                l.vars().chain(r.vars()).map(|s| s.to_string()).collect()
            }
        }
    }

    /// Lower to a formula for evaluation by the FO machinery.
    pub fn to_formula(&self) -> Formula {
        match self {
            Literal::Pos(name, args) => Formula::Pred(name.clone(), args.clone()),
            Literal::Neg(name, args) => {
                Formula::not(Formula::Pred(name.clone(), args.clone()))
            }
            Literal::Constraint(l, op, r) => Formula::Compare(l.clone(), *op, r.clone()),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(name, args) => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{name}({})", parts.join(", "))
            }
            Literal::Neg(name, args) => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "not {name}({})", parts.join(", "))
            }
            Literal::Constraint(l, op, r) => write!(f, "{l} {op} {r}"),
        }
    }
}

/// A rule `head(vars) :- body`.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Head predicate name.
    pub head: String,
    /// Head variables (constants in heads are expressed via body
    /// constraints; the parser desugars them).
    pub head_vars: Vec<String>,
    /// Body literals (conjunction).
    pub body: Vec<Literal>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body: Vec<String> = self.body.iter().map(|l| l.to_string()).collect();
        write!(
            f,
            "{}({}) :- {}.",
            self.head,
            self.head_vars.join(", "),
            body.join(", ")
        )
    }
}

/// A Datalog¬ program: rules plus the inferred predicate signature.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

/// Errors found during validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Predicate used at two different arities.
    InconsistentArity(String),
    /// Head variable not bound anywhere in the body (unsafe only for
    /// *negated-only* occurrences; pure constraint binding is fine in the
    /// constraint model, but a variable appearing nowhere is rejected).
    UnboundHeadVar {
        /// Rule (display form).
        rule: String,
        /// Variable name.
        var: String,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::InconsistentArity(p) => {
                write!(f, "predicate {p} used at inconsistent arities")
            }
            ProgramError::UnboundHeadVar { rule, var } => {
                write!(f, "head variable {var} does not occur in the body of: {rule}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Build and validate a program.
    pub fn new(rules: Vec<Rule>) -> Result<Program, ProgramError> {
        let p = Program { rules };
        p.validate()?;
        Ok(p)
    }

    /// All predicates with arities (heads and body atoms).
    pub fn arities(&self) -> Result<BTreeMap<String, u32>, ProgramError> {
        let mut out: BTreeMap<String, u32> = BTreeMap::new();
        let mut put = |name: &str, arity: usize| -> Result<(), ProgramError> {
            match out.get(name) {
                Some(a) if *a as usize != arity => {
                    Err(ProgramError::InconsistentArity(name.to_string()))
                }
                Some(_) => Ok(()),
                None => {
                    out.insert(name.to_string(), arity as u32);
                    Ok(())
                }
            }
        };
        for r in &self.rules {
            put(&r.head, r.head_vars.len())?;
            for l in &r.body {
                match l {
                    Literal::Pos(name, args) | Literal::Neg(name, args) => {
                        put(name, args.len())?;
                    }
                    Literal::Constraint(..) => {}
                }
            }
        }
        Ok(out)
    }

    /// Intensional predicates: those appearing in some head.
    pub fn idb_predicates(&self) -> Vec<String> {
        let mut v: Vec<String> = self.rules.iter().map(|r| r.head.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Extensional predicates: used in bodies but never defined.
    pub fn edb_predicates(&self) -> Vec<String> {
        let idb = self.idb_predicates();
        let mut v = Vec::new();
        for r in &self.rules {
            for l in &r.body {
                if let Literal::Pos(name, _) | Literal::Neg(name, _) = l {
                    if !idb.contains(name) && !v.contains(name) {
                        v.push(name.clone());
                    }
                }
            }
        }
        v.sort();
        v
    }

    fn validate(&self) -> Result<(), ProgramError> {
        self.arities()?;
        for r in &self.rules {
            let body_vars: Vec<String> = r.body.iter().flat_map(|l| l.vars()).collect();
            for v in &r.head_vars {
                if !body_vars.contains(v) {
                    return Err(ProgramError::UnboundHeadVar {
                        rule: r.to_string(),
                        var: v.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc_program() -> Program {
        // tc(x,y) :- e(x,y).  tc(x,y) :- tc(x,z), e(z,y).
        Program::new(vec![
            Rule {
                head: "tc".into(),
                head_vars: vec!["x".into(), "y".into()],
                body: vec![Literal::Pos(
                    "e".into(),
                    vec![ArgTerm::Var("x".into()), ArgTerm::Var("y".into())],
                )],
            },
            Rule {
                head: "tc".into(),
                head_vars: vec!["x".into(), "y".into()],
                body: vec![
                    Literal::Pos(
                        "tc".into(),
                        vec![ArgTerm::Var("x".into()), ArgTerm::Var("z".into())],
                    ),
                    Literal::Pos(
                        "e".into(),
                        vec![ArgTerm::Var("z".into()), ArgTerm::Var("y".into())],
                    ),
                ],
            },
        ])
        .unwrap()
    }

    #[test]
    fn edb_idb_split() {
        let p = tc_program();
        assert_eq!(p.idb_predicates(), vec!["tc"]);
        assert_eq!(p.edb_predicates(), vec!["e"]);
        assert_eq!(p.arities().unwrap()["tc"], 2);
        assert_eq!(p.arities().unwrap()["e"], 2);
    }

    #[test]
    fn inconsistent_arity_rejected() {
        let bad = Program::new(vec![Rule {
            head: "p".into(),
            head_vars: vec!["x".into()],
            body: vec![Literal::Pos("p".into(), vec![
                ArgTerm::Var("x".into()),
                ArgTerm::Var("x".into()),
            ])],
        }]);
        assert!(matches!(bad, Err(ProgramError::InconsistentArity(_))));
    }

    #[test]
    fn unbound_head_var_rejected() {
        let bad = Program::new(vec![Rule {
            head: "p".into(),
            head_vars: vec!["x".into(), "y".into()],
            body: vec![Literal::Pos("q".into(), vec![ArgTerm::Var("x".into())])],
        }]);
        assert!(matches!(bad, Err(ProgramError::UnboundHeadVar { .. })));
    }

    #[test]
    fn display_roundtrips_visually() {
        let p = tc_program();
        let s = p.to_string();
        assert!(s.contains("tc(x, y) :- e(x, y)."));
        assert!(s.contains("tc(x, y) :- tc(x, z), e(z, y)."));
    }
}
