//! Stratified evaluation.
//!
//! The paper's semantics is inflationary (negation read against the
//! current stage); the more common *stratified* semantics — evaluate each
//! negation only after its target predicate is fully computed — is what the
//! library programs (connectivity, parity) naturally want, and §6 of the
//! paper contrasts the two (e.g. \[Rev93\]: stratified Datalog¬ over discrete
//! gap-orders is Turing-complete, while Theorem 4.4 pins the inflationary
//! dense-order case at PTIME).
//!
//! We implement stratification on top of the inflationary engine: split
//! the program into strata along its predicate dependency graph (rejecting
//! negative cycles), then run each stratum to its fixpoint with all earlier
//! strata's results as extensional input. For stratifiable programs over
//! dense-order databases this computes the standard stratified model, and
//! each stratum inherits the engine's closure and termination guarantees.

use crate::ast::{Program, Rule};
use crate::engine::{run_with, EngineConfig, EngineError, EngineStats};
use dco_analysis::DepGraph;
use dco_core::prelude::{Database, Schema};
use std::fmt;

/// Errors from stratification.
#[derive(Debug)]
pub enum StratifyError {
    /// A dependency cycle passes through negation. The payload is the full
    /// cycle path, first and last predicate equal (`[p, q, …, p]`).
    NegativeCycle(Vec<String>),
    /// Underlying engine error while running a stratum.
    Engine(EngineError),
}

impl fmt::Display for StratifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StratifyError::NegativeCycle(path) => {
                write!(
                    f,
                    "program is not stratifiable: negative cycle {}",
                    path.join(" -> ")
                )
            }
            StratifyError::Engine(e) => write!(f, "stratum failed: {e}"),
        }
    }
}

impl std::error::Error for StratifyError {}

impl From<EngineError> for StratifyError {
    fn from(e: EngineError) -> StratifyError {
        StratifyError::Engine(e)
    }
}

/// Split a program into an ordered list of sub-programs, one per stratum
/// of its predicate dependency graph ([`dco_analysis::DepGraph`]).
pub fn stratify(program: &Program) -> Result<Vec<Program>, StratifyError> {
    let stratum = DepGraph::of_program(program)
        .strata()
        .map_err(StratifyError::NegativeCycle)?;
    let max = stratum.values().copied().max().unwrap_or(0);
    let mut layers: Vec<Vec<Rule>> = vec![Vec::new(); max + 1];
    for rule in &program.rules {
        layers[stratum[&rule.head]].push(rule.clone());
    }
    // INVARIANT: every subset of a valid program's rules is itself a valid
    // program (validity is per-rule: range-restriction and arity agreement),
    // so the expect below is unreachable.
    Ok(layers
        .into_iter()
        .filter(|rules| !rules.is_empty())
        .map(|rules| Program::new(rules).expect("stratum of a valid program is valid"))
        .collect())
}

/// Result of a stratified run.
#[derive(Debug, Clone)]
pub struct StratifiedResult {
    /// The final database over EDB ∪ all IDB relations.
    pub database: Database,
    /// Per-stratum statistics.
    pub stats: Vec<EngineStats>,
}

/// Run a program under stratified semantics.
pub fn run_stratified(
    program: &Program,
    input: &Database,
) -> Result<StratifiedResult, StratifyError> {
    run_stratified_with(program, input, &EngineConfig::default())
}

/// Run under stratified semantics with engine configuration.
pub fn run_stratified_with(
    program: &Program,
    input: &Database,
    config: &EngineConfig,
) -> Result<StratifiedResult, StratifyError> {
    let strata = stratify(program)?;
    let mut store = input.clone();
    let mut stats = Vec::with_capacity(strata.len());
    for stratum in &strata {
        // Guard probe: one hit per stratum boundary (each stratum's inner
        // stages probe again inside `run_with`).
        dco_core::guard::probe(dco_core::guard::ProbeSite::FixpointStage);
        let fix = run_with(stratum, &store, config)?;
        stats.push(fix.stats.clone());
        // fold the stratum's IDB results into the store as new EDB facts.
        // INVARIANT for the expects below: the engine's output database
        // always contains every IDB predicate of the program it ran, and
        // `next`'s schema is built right here from those same relations —
        // neither `get` nor `set` can fail.
        let mut schema = Schema::new();
        for (name, rel) in store.relations() {
            schema = schema.with(name, rel.arity());
        }
        for p in stratum.idb_predicates() {
            let rel = fix.database.get(&p).expect("stratum IDB");
            schema = schema.with(&p, rel.arity());
        }
        let mut next = Database::new(schema);
        for (name, rel) in store.relations() {
            next.set(name, rel.clone()).expect("schema matches");
        }
        for p in stratum.idb_predicates() {
            next.set(&p, fix.database.get(&p).expect("stratum IDB").clone())
                .expect("schema matches");
        }
        store = next;
        dco_core::guard::stage_completed();
    }
    Ok(StratifiedResult {
        database: store,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use dco_core::prelude::*;

    fn points(pairs: &[(i64, i64)]) -> GeneralizedRelation {
        GeneralizedRelation::from_points(
            2,
            pairs
                .iter()
                .map(|&(a, b)| vec![rat(a as i128, 1), rat(b as i128, 1)]),
        )
    }

    #[test]
    fn strata_ordering() {
        let p = parse_program(
            "r(x, y) :- e(x, y).\n\
             r(x, y) :- r(x, z), e(z, y).\n\
             unreach(x, y) :- v(x), v(y), not r(x, y).\n",
        )
        .unwrap();
        let strata = stratify(&p).unwrap();
        assert_eq!(strata.len(), 2);
        assert_eq!(strata[0].idb_predicates(), vec!["r"]);
        assert_eq!(strata[1].idb_predicates(), vec!["unreach"]);
    }

    #[test]
    fn negative_cycle_rejected_with_path() {
        let p = parse_program(
            "a(x) :- v(x), not b(x).\n\
             b(x) :- v(x), not a(x).\n",
        )
        .unwrap();
        let err = stratify(&p).unwrap_err();
        let StratifyError::NegativeCycle(path) = err else {
            panic!("expected NegativeCycle, got {err}");
        };
        assert_eq!(path.first(), path.last());
        assert_eq!(path.len(), 3, "a -> b -> a, got {path:?}");
        assert!(path.contains(&"a".to_string()) && path.contains(&"b".to_string()));
        let shown = StratifyError::NegativeCycle(path).to_string();
        assert!(shown.contains(" -> "), "rendered path: {shown}");
    }

    #[test]
    fn stratified_negation_reads_fixpoint() {
        // unreach must be computed against the FULL transitive closure —
        // the case where inflationary same-stage negation differs.
        let p = parse_program(
            "r(x, y) :- e(x, y).\n\
             r(x, y) :- r(x, z), e(z, y).\n\
             unreach(x, y) :- v(x), v(y), not r(x, y).\n",
        )
        .unwrap();
        let v = GeneralizedRelation::from_points(
            1,
            (1..=3).map(|i| vec![rat(i, 1)]).collect::<Vec<_>>(),
        );
        let db = Database::new(Schema::new().with("e", 2).with("v", 1))
            .with("e", points(&[(1, 2), (2, 3)]))
            .with("v", v);
        let out = run_stratified(&p, &db).unwrap();
        let unreach = out.database.get("unreach").unwrap();
        // 1 reaches 2 and 3 (transitively) — only (2,1),(3,1),(3,2),(2,2)...
        assert!(!unreach.contains_point(&[rat(1, 1), rat(3, 1)])); // reachable!
        assert!(unreach.contains_point(&[rat(3, 1), rat(1, 1)]));
        assert!(unreach.contains_point(&[rat(2, 1), rat(1, 1)]));
    }

    #[test]
    fn positive_recursion_single_stratum() {
        let p = parse_program(
            "tc(x, y) :- e(x, y).\n\
             tc(x, y) :- tc(x, z), e(z, y).\n",
        )
        .unwrap();
        assert_eq!(stratify(&p).unwrap().len(), 1);
        let db = Database::new(Schema::new().with("e", 2)).with("e", points(&[(1, 2), (2, 3)]));
        let out = run_stratified(&p, &db).unwrap();
        assert!(out
            .database
            .get("tc")
            .unwrap()
            .contains_point(&[rat(1, 1), rat(3, 1)]));
    }

    #[test]
    fn three_strata_chain() {
        let p = parse_program(
            "a(x) :- v(x).\n\
             b(x) :- v(x), not a(x).\n\
             c(x) :- v(x), not b(x).\n",
        )
        .unwrap();
        let strata = stratify(&p).unwrap();
        assert_eq!(strata.len(), 3);
        let v = GeneralizedRelation::from_points(1, vec![vec![rat(1, 1)]]);
        let db = Database::new(Schema::new().with("v", 1)).with("v", v);
        let out = run_stratified(&p, &db).unwrap();
        assert!(!out.database.get("b").unwrap().contains_point(&[rat(1, 1)]));
        assert!(out.database.get("c").unwrap().contains_point(&[rat(1, 1)]));
    }
}
