//! A library of canonical Datalog¬ programs from the paper's discussion.
//!
//! §4 contrasts what FO/FO+ *cannot* express (Theorems 4.2–4.3: graph
//! connectivity, parity, region connectivity) with what inflationary
//! Datalog¬ *can* (Theorem 4.4: everything in PTIME). This module gives
//! those witnesses as concrete programs:
//!
//! * [`transitive_closure`] — the canonical recursion;
//! * [`connectivity`] — boolean graph connectivity via TC;
//! * [`parity_program`] — parity of a finite unary relation, using the dense
//!   order to define a successor over the active domain (the standard
//!   order-based PTIME parity computation, a direct corollary of
//!   Theorem 4.4's capture direction).

use crate::ast::Program;
use crate::engine::{run, EngineError};
use crate::parser::parse_program;
use dco_core::prelude::*;

/// `tc(x,y) :- e(x,y).  tc(x,y) :- tc(x,z), e(z,y).`
pub fn transitive_closure() -> Program {
    parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .expect("static program parses")
}

/// Connectivity over the *symmetric closure* of `e`, as a program whose
/// `disconnected` IDB is nonempty iff some pair of vertices (members of the
/// unary relation `v`) is not connected.
pub fn connectivity() -> Program {
    parse_program(
        "sym(x, y) :- e(x, y).\n\
         sym(x, y) :- e(y, x).\n\
         reach(x, y) :- sym(x, y).\n\
         reach(x, x) :- v(x).\n\
         reach(x, y) :- reach(x, z), sym(z, y).\n\
         disconnected(x, y) :- v(x), v(y), not reach(x, y).\n",
    )
    .expect("static program parses")
}

/// Decide whether the finite graph `(v, e)` is connected.
///
/// NOTE on inflationary negation: `disconnected` must only be read at the
/// fixpoint of `reach`; because the engine is inflationary, a pair derived
/// into `disconnected` at an early stage would *stay* there even when
/// `reach` later grows. We therefore run the reachability program to its
/// fixpoint first, then run the negation rule once on the result — this
/// two-phase evaluation is itself inflationary-expressible via a stage
/// counter (the standard trick in the proof of Theorem 4.4); we keep the
/// phases explicit for clarity.
pub fn is_connected(
    vertices: &GeneralizedRelation,
    edges: &GeneralizedRelation,
) -> Result<bool, EngineError> {
    let reach_prog = parse_program(
        "sym(x, y) :- e(x, y).\n\
         sym(x, y) :- e(y, x).\n\
         reach(x, y) :- sym(x, y).\n\
         reach(x, x) :- v(x).\n\
         reach(x, y) :- reach(x, z), sym(z, y).\n",
    )
    .expect("static program parses");
    let db = Database::new(Schema::new().with("v", 1).with("e", 2))
        .with("v", vertices.clone())
        .with("e", edges.clone());
    let fix = run(&reach_prog, &db)?;
    let check = parse_program("disconnected(x, y) :- v(x), v(y), not reach(x, y).\n")
        .expect("static program parses");
    let db2 = Database::new(Schema::new().with("v", 1).with("reach", 2))
        .with("v", vertices.clone())
        .with(
            "reach",
            fix.database.get("reach").expect("reach IDB").clone(),
        );
    let fix2 = run(&check, &db2)?;
    Ok(fix2
        .database
        .get("disconnected")
        .expect("disconnected IDB")
        .is_empty())
}

/// Parity program over a finite unary relation `s`: computes `odd(x)` /
/// `even(x)` flags along the order-successor chain of `s`'s elements and a
/// final `sodd()`-style marker relation `odd_last` that is nonempty iff
/// `|s|` is odd.
///
/// The successor relation over the active domain is defined with negation:
/// `between(x,y)` holds when some element lies strictly between, and
/// `next(x,y)` when none does.
pub fn parity_program() -> Program {
    parse_program(
        "between(x, y) :- s(x), s(y), s(z), x < z, z < y.\n\
         smaller(x) :- s(x), s(y), y < x.\n\
         larger(x) :- s(x), s(y), x < y.\n",
    )
    .expect("static program parses")
}

/// Is the cardinality of the finite set denoted by the unary relation `s`
/// even? (|∅| = 0 is even.)
///
/// Like [`is_connected`], the computation is staged: FO-definable auxiliary
/// relations first (order successor), then the alternating chain.
pub fn cardinality_is_even(s: &GeneralizedRelation) -> Result<bool, EngineError> {
    assert_eq!(s.arity(), 1, "parity is over a unary relation");
    if s.is_empty() {
        return Ok(true);
    }
    // Phase 1: successor structure.
    let phase1 = parity_program();
    let db = Database::new(Schema::new().with("s", 1)).with("s", s.clone());
    let fix1 = run(&phase1, &db)?;
    let between = fix1.database.get("between").expect("IDB").clone();
    let smaller = fix1.database.get("smaller").expect("IDB").clone();
    let larger = fix1.database.get("larger").expect("IDB").clone();
    // Phase 2: next(x,y) = consecutive elements; first/last elements.
    let phase2 = parse_program(
        "next(x, y) :- s(x), s(y), x < y, not between(x, y).\n\
         first(x) :- s(x), not smaller(x).\n\
         last(x) :- s(x), not larger(x).\n",
    )
    .expect("static program parses");
    let db2 = Database::new(
        Schema::new()
            .with("s", 1)
            .with("between", 2)
            .with("smaller", 1)
            .with("larger", 1),
    )
    .with("s", s.clone())
    .with("between", between)
    .with("smaller", smaller)
    .with("larger", larger);
    let fix2 = run(&phase2, &db2)?;
    // Phase 3: alternate along the chain.
    let phase3 = parse_program(
        "odd(x) :- first(x).\n\
         odd(y) :- even(x), next(x, y).\n\
         even(y) :- odd(x), next(x, y).\n",
    )
    .expect("static program parses");
    let db3 = Database::new(Schema::new().with("first", 1).with("next", 2))
        .with("first", fix2.database.get("first").expect("IDB").clone())
        .with("next", fix2.database.get("next").expect("IDB").clone());
    let fix3 = run(&phase3, &db3)?;
    // |s| is even iff the last element is marked even.
    let last = fix2.database.get("last").expect("IDB").clone();
    let even = fix3.database.get("even").expect("IDB").clone();
    Ok(!last.intersect(&even).is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_set(xs: &[i64]) -> GeneralizedRelation {
        GeneralizedRelation::from_points(1, xs.iter().map(|&x| vec![rat(x as i128, 1)]))
    }

    fn edge_set(pairs: &[(i64, i64)]) -> GeneralizedRelation {
        GeneralizedRelation::from_points(
            2,
            pairs
                .iter()
                .map(|&(a, b)| vec![rat(a as i128, 1), rat(b as i128, 1)]),
        )
    }

    #[test]
    fn connected_path() {
        let v = point_set(&[1, 2, 3, 4]);
        let e = edge_set(&[(1, 2), (2, 3), (3, 4)]);
        assert!(is_connected(&v, &e).unwrap());
    }

    #[test]
    fn disconnected_two_components() {
        let v = point_set(&[1, 2, 3, 4]);
        let e = edge_set(&[(1, 2), (3, 4)]);
        assert!(!is_connected(&v, &e).unwrap());
    }

    #[test]
    fn single_vertex_connected() {
        let v = point_set(&[7]);
        let e = GeneralizedRelation::empty(2);
        assert!(is_connected(&v, &e).unwrap());
    }

    #[test]
    fn direction_ignored() {
        // edges all pointing "inward" still connect via symmetric closure
        let v = point_set(&[1, 2, 3]);
        let e = edge_set(&[(2, 1), (2, 3)]);
        assert!(is_connected(&v, &e).unwrap());
    }

    #[test]
    fn parity_small_cases() {
        assert!(cardinality_is_even(&point_set(&[])).unwrap());
        assert!(!cardinality_is_even(&point_set(&[5])).unwrap());
        assert!(cardinality_is_even(&point_set(&[1, 9])).unwrap());
        assert!(!cardinality_is_even(&point_set(&[1, 2, 3])).unwrap());
        assert!(cardinality_is_even(&point_set(&[-3, 0, 4, 100])).unwrap());
        assert!(!cardinality_is_even(&point_set(&[-3, 0, 4, 100, 101])).unwrap());
    }

    #[test]
    fn parity_does_not_depend_on_values() {
        // genericity in action: only the count matters
        assert_eq!(
            cardinality_is_even(&point_set(&[1, 2])).unwrap(),
            cardinality_is_even(&point_set(&[-100, 1000])).unwrap(),
        );
    }
}
