//! The inflationary fixpoint engine.
//!
//! Semantics (§4 of the paper): starting from the input database and empty
//! IDB relations, every stage evaluates *all* rule bodies against the
//! current store and **adds** the derived facts (inflationary semantics —
//! negation is evaluated against the current stage, nothing is retracted).
//! The computation stops when a stage adds nothing new.
//!
//! Two facts make this a decision procedure rather than a heuristic:
//!
//! 1. **Closure** — rule bodies are FO formulas over constraint relations,
//!    so each stage's derived facts are again finitely representable
//!    (\[KKR90\]; we reuse the closed-form FO evaluator of `dco-fo`).
//! 2. **Termination** — dense-order QE never invents constants, so every
//!    derivable relation is a union of cells over the fixed constant set of
//!    the input + program; the cell lattice is finite and stages are
//!    monotone in it, so a fixpoint is reached in at most `#cells` stages —
//!    polynomially many in the input size for a fixed program, which is the
//!    easy half of Theorem 4.4 (Datalog¬ ⊆ PTIME).

use crate::ast::{Literal, Program, Rule};
use dco_core::guard::{probe, stage_completed, ProbeSite};
use dco_core::par::par_map_coarse;
use dco_core::prelude::*;
use dco_fo::eval_in_ctx;
use dco_logic::Formula;
use std::collections::BTreeMap;
use std::fmt;

/// Errors during fixpoint evaluation.
#[derive(Debug)]
pub enum EngineError {
    /// A rule body failed FO evaluation.
    Body {
        /// Display form of the offending rule.
        rule: String,
        /// The underlying evaluator error.
        source: dco_fo::EvalError,
    },
    /// Input database is missing an EDB relation or has a wrong arity.
    BadInput(String),
    /// Stage limit exceeded (a safety valve; cannot happen for valid
    /// dense-order programs unless the limit is set too low).
    StageLimit(usize),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Body { rule, source } => write!(f, "in rule `{rule}`: {source}"),
            EngineError::BadInput(m) => write!(f, "bad input database: {m}"),
            EngineError::StageLimit(n) => write!(f, "no fixpoint after {n} stages"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Evaluation statistics, reported alongside the fixpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of stages until the fixpoint (last stage derives nothing).
    pub stages: usize,
    /// Total rule-body evaluations.
    pub body_evals: usize,
    /// Final representation size (atoms across all IDB relations).
    pub final_size: usize,
}

/// Configuration for the engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Hard cap on stages (safety valve; default 10 000).
    pub max_stages: usize,
    /// Simplify IDB relations after each stage (keeps representations
    /// small at some per-stage cost; default true).
    pub simplify: bool,
    /// Restrict rule evaluation to the previous stage's deltas
    /// (semi-naive, default true). Applied only when the program is
    /// negation-free: the inflationary same-stage semantics of §4 makes
    /// deltas unsound under negation (a negated literal can newly *fail*),
    /// so programs with negation silently use full naive stages and keep
    /// the exact paper semantics.
    pub use_deltas: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_stages: 10_000,
            simplify: true,
            use_deltas: true,
        }
    }
}

/// The result of running a program: the full store (EDB + IDB) at fixpoint.
#[derive(Debug, Clone)]
pub struct FixpointResult {
    /// Fixpoint database over EDB ∪ IDB schema.
    pub database: Database,
    /// Statistics.
    pub stats: EngineStats,
}

/// Run a program on an input database to its inflationary fixpoint.
pub fn run(program: &Program, input: &Database) -> Result<FixpointResult, EngineError> {
    run_with(program, input, &EngineConfig::default())
}

/// Run with explicit configuration.
pub fn run_with(
    program: &Program,
    input: &Database,
    config: &EngineConfig,
) -> Result<FixpointResult, EngineError> {
    let arities = program
        .arities()
        .map_err(|e| EngineError::BadInput(e.to_string()))?;
    // Build the working schema: all EDB relations from the input (checked)
    // plus IDB relations initialized empty.
    let mut schema = Schema::new();
    for p in program.edb_predicates() {
        let declared = arities[&p];
        match input.get(&p) {
            None => {
                return Err(EngineError::BadInput(format!("missing EDB relation {p}")));
            }
            Some(r) if r.arity() != declared => {
                return Err(EngineError::BadInput(format!(
                    "EDB relation {p}: input arity {} but program uses {declared}",
                    r.arity()
                )));
            }
            Some(_) => schema = schema.with(&p, declared),
        }
    }
    let idb = program.idb_predicates();
    // Delta restriction is sound only without negation (see
    // [`EngineConfig::use_deltas`]).
    let has_negation = program
        .rules
        .iter()
        .any(|r| r.body.iter().any(|l| matches!(l, Literal::Neg(..))));
    let use_deltas = config.use_deltas && !has_negation;
    for p in &idb {
        if input.get(p).is_some() {
            return Err(EngineError::BadInput(format!(
                "IDB relation {p} must not be present in the input"
            )));
        }
        schema = schema.with(p, arities[p]);
        if use_deltas {
            schema = schema.with(&delta_name(p), arities[p]);
        }
    }
    let mut store = Database::new(schema);
    for p in program.edb_predicates() {
        // INVARIANT: `input.get(&p)` was verified non-None (with the right
        // arity) in the EDB validation loop above, and the schema entry was
        // added in the same pass — both expects are unreachable.
        store
            .set(&p, input.get(&p).expect("checked above").clone())
            .expect("schema matches");
    }

    let compiled: Vec<Compiled> = program.rules.iter().map(compile_rule).collect();
    // Delta-restricted variants: one per positive IDB body literal, with
    // that literal redirected to the predicate's shadow delta relation. A
    // fact new at stage n must use at least one fact that was new at stage
    // n-1, so the union over variants derives everything the full rule
    // would — the classical semi-naive argument, unchanged by constraint
    // relations.
    let delta_compiled: Vec<Compiled> = if use_deltas {
        let mut variants = Vec::new();
        for r in &program.rules {
            for (i, lit) in r.body.iter().enumerate() {
                let Literal::Pos(name, _) = lit else { continue };
                if !idb.contains(name) {
                    continue;
                }
                let mut variant = r.clone();
                if let Literal::Pos(n, _) = &mut variant.body[i] {
                    *n = delta_name(name);
                }
                variants.push(compile_rule(&variant));
            }
        }
        variants
    } else {
        Vec::new()
    };

    let mut stats = EngineStats::default();
    // Per-predicate set of delta tuples already folded into (or found
    // covered by) the store in an earlier stage. Handles are hash-consed
    // ([`intern_tuple`]), so membership costs one fingerprint probe and a
    // pointer compare — the store is inflationary, so a tuple seen once is
    // covered forever and never needs the O(|store|) subsumption scan again.
    let mut seen: BTreeMap<String, std::collections::HashSet<Interned<GeneralizedTuple>>> =
        BTreeMap::new();
    loop {
        // Guard probe: one hit per fixpoint stage boundary — the natural
        // cancellation point of the engine (deadlines and external
        // cancellation take effect between stages even if no algebra
        // probe fires inside one).
        probe(ProbeSite::FixpointStage);
        if stats.stages >= config.max_stages {
            return Err(EngineError::StageLimit(config.max_stages));
        }
        stats.stages += 1;
        // Stage 1 always evaluates the full rules (IDBs are empty, so all
        // facts are "new"); later delta stages evaluate only the restricted
        // variants. A rule with no positive IDB literal has no variant —
        // correctly so, as its derivations cannot change after stage 1.
        let stage_rules: &[Compiled] = if use_deltas && stats.stages > 1 {
            &delta_compiled
        } else {
            &compiled
        };
        // Deltas are computed against the *current* stage store (inflationary
        // semantics evaluates all rules on the same stage), then merged.
        // Rules are independent given the store, so they evaluate in
        // parallel; the merge below is sequential in rule order, keeping
        // the result identical to a single-threaded run.
        stats.body_evals += stage_rules.len();
        let derived = par_map_coarse(stage_rules, |rule| eval_compiled(&store, rule));
        let mut deltas: BTreeMap<String, GeneralizedRelation> = BTreeMap::new();
        for (rule, result) in stage_rules.iter().zip(derived) {
            let expanded = result?;
            deltas
                .entry(rule.head.clone())
                .and_modify(|d| *d = d.union(&expanded))
                .or_insert(expanded);
        }
        let mut changed = false;
        if use_deltas {
            // Fold the genuinely-new part of each delta into the store and
            // publish it as the predicate's shadow relation for the next
            // stage's restricted variants.
            // INVARIANT for the expects below: every IDB predicate and its
            // shadow delta were added to the schema before the loop, and
            // relations written here keep their declared arity — `get` and
            // `set` cannot fail for them.
            for p in &idb {
                let old = store.get(p).expect("idb in schema").clone();
                let delta = deltas
                    .remove(p)
                    .unwrap_or_else(|| GeneralizedRelation::empty(arities[p]));
                // The "new part" is over-approximated by a per-tuple
                // subsumption filter rather than the exact complement-based
                // difference: difference splinters boxes into fragments that
                // bloat both the shadow and the store, while a delta tuple
                // covered only by a *union* of old tuples is merely wasted
                // work next stage (it is re-filtered once it is in the store,
                // so the loop still reaches the same fixpoint).
                let fresh = match delta.as_points() {
                    Some(points) => GeneralizedRelation::from_points(
                        delta.arity(),
                        points
                            .into_iter()
                            .filter(|pt| !old.contains_point(pt))
                            .collect::<Vec<_>>(),
                    ),
                    None => {
                        let prune = eval_config().prune_boxes;
                        let covered = seen.entry(p.clone()).or_default();
                        let fresh = GeneralizedRelation::from_tuples(
                            delta.arity(),
                            delta
                                .tuples()
                                .iter()
                                .filter(|t| {
                                    if covered.contains(&intern_tuple(t)) {
                                        return false;
                                    }
                                    // A store tuple whose bounding box is
                                    // disjoint from `t`'s cannot contain it;
                                    // skip the subsumption test for such
                                    // pairs.
                                    !old.tuples()
                                        .iter()
                                        .any(|u| (!prune || !u.box_disjoint(t)) && u.subsumes(t))
                                })
                                .cloned(),
                        );
                        // Every delta tuple is covered from here on: the
                        // subsumed ones already were, the fresh ones are
                        // merged into the store below.
                        for t in delta.tuples() {
                            covered.insert(intern_tuple(t));
                        }
                        fresh
                    }
                };
                if fresh.is_empty() {
                    store.set(&delta_name(p), fresh).expect("schema matches");
                    continue;
                }
                changed = true;
                // Simplify only the fresh part before merging: every store
                // tuple was simplified when it was first folded in, so
                // re-simplifying the whole accumulated store each stage is
                // O(|store|) work per stage for no semantic gain — on chain
                // workloads it dominates the fixpoint wall clock. Union's
                // insert still prunes syntactic subsumption between old and
                // fresh in both directions.
                let fresh = if config.simplify && fresh.as_points().is_none() {
                    fresh.simplify()
                } else {
                    fresh
                };
                let merged = old.union(&fresh);
                store.set(p, merged).expect("schema matches");
                store.set(&delta_name(p), fresh).expect("schema matches");
            }
        } else {
            for (pred, delta) in deltas {
                // INVARIANT: `deltas` keys are rule heads, all IDB
                // predicates declared in the schema above.
                let old = store.get(&pred).expect("idb in schema").clone();
                // Point-set fast path for the inclusion test, generic otherwise.
                let included = match delta.as_points() {
                    Some(points) => points.iter().all(|p| old.contains_point(p)),
                    None => delta.is_subset(&old),
                };
                if included {
                    continue;
                }
                changed = true;
                let merged = old.union(&delta);
                let merged = if config.simplify && merged.as_points().is_none() {
                    merged.simplify()
                } else {
                    merged
                };
                store.set(&pred, merged).expect("schema matches");
            }
        }
        stage_completed();
        if !changed {
            break;
        }
    }
    // INVARIANT: same schema argument as above — IDB lookups cannot fail.
    stats.final_size = idb
        .iter()
        .map(|p| store.get(p).expect("idb in schema").size())
        .sum();
    // Absorb the run into the process-global metrics registry: the
    // engine has no owner carrying a per-store registry, so fixpoint
    // counters aggregate globally under `dco_datalog_*`.
    let global = dco_obs::global();
    global.counter("datalog.runs").inc();
    global.counter("datalog.stages").add(stats.stages as u64);
    global
        .counter("datalog.body_evals")
        .add(stats.body_evals as u64);
    let database = if use_deltas {
        strip_shadows(&store, program, &arities)
    } else {
        store
    };
    Ok(FixpointResult { database, stats })
}

/// Shadow relation carrying the facts a predicate gained at the previous
/// stage (delta mode only).
fn delta_name(p: &str) -> String {
    format!("__delta_{p}")
}

/// Rebuild the fixpoint database without the shadow delta relations.
fn strip_shadows(store: &Database, program: &Program, arities: &BTreeMap<String, u32>) -> Database {
    let mut schema = Schema::new();
    for p in program.edb_predicates() {
        schema = schema.with(&p, arities[&p]);
    }
    for p in program.idb_predicates() {
        schema = schema.with(&p, arities[&p]);
    }
    let mut out = Database::new(schema);
    for p in program
        .edb_predicates()
        .into_iter()
        .chain(program.idb_predicates())
    {
        // INVARIANT: the working store declares every EDB and IDB predicate
        // (built in `run_with`), and the output schema mirrors it minus the
        // shadows — both expects are unreachable.
        out.set(&p, store.get(&p).expect("in store").clone())
            .expect("schema matches");
    }
    out
}

/// A rule precompiled for stage evaluation: body formula, evaluation
/// context (head vars first), head arity and the column layout mapping
/// head positions to context columns (repeated head variables share one).
struct Compiled {
    head: String,
    ctx: Vec<String>,
    head_arity: u32,
    body: Formula,
    literals: Vec<Literal>,
    head_vars: Vec<String>,
    layout: Vec<usize>,
    display: String,
}

fn compile_rule(r: &Rule) -> Compiled {
    let body = Formula::And(r.body.iter().map(Literal::to_formula).collect());
    // Context: head vars first (in head order), then remaining body
    // vars sorted. Head vars may repeat — deduplicate keeping first
    // occurrence; the duplicate column is reconstructed by
    // `expand_columns` when widening the projection to the head arity.
    let mut ctx: Vec<String> = Vec::new();
    for v in &r.head_vars {
        if !ctx.contains(v) {
            ctx.push(v.clone());
        }
    }
    let mut body_vars: Vec<String> = body
        .free_vars()
        .into_iter()
        .filter(|v| !ctx.contains(v))
        .collect();
    body_vars.sort();
    ctx.extend(body_vars);
    let mut firsts: Vec<&String> = Vec::new();
    let layout: Vec<usize> = r
        .head_vars
        .iter()
        .map(|v| {
            if let Some(i) = firsts.iter().position(|f| *f == v) {
                i
            } else {
                firsts.push(v);
                firsts.len() - 1
            }
        })
        .collect();
    Compiled {
        head: r.head.clone(),
        ctx,
        head_arity: r.head_vars.len() as u32,
        body,
        literals: r.body.clone(),
        head_vars: r.head_vars.clone(),
        layout,
        display: r.to_string(),
    }
}

/// Evaluate one compiled rule against the store, returning the derived
/// head relation (full head arity). Read-only with respect to the store,
/// so stage rules may run concurrently.
fn eval_compiled(store: &Database, rule: &Compiled) -> Result<GeneralizedRelation, EngineError> {
    // Fast path: when every positive body relation is a finite point set,
    // evaluate the rule by enumeration (classical Datalog hash join)
    // instead of symbolic algebra.
    if let Some(expanded) = eval_rule_points(store, &rule.literals, &rule.head_vars) {
        return Ok(expanded);
    }
    let mut rel =
        eval_in_ctx(store, &rule.body, &rule.ctx).map_err(|source| EngineError::Body {
            rule: rule.display.clone(),
            source,
        })?;
    // Project away non-head columns.
    let distinct_head = rule
        .layout
        .iter()
        .copied()
        .max()
        .map(|m| m + 1)
        .unwrap_or(0);
    for i in (distinct_head..rule.ctx.len()).rev() {
        rel = rel.project_out(Var(i as u32));
    }
    let rel = rel.narrow(distinct_head as u32);
    // Expand to the full head arity honoring repeated variables.
    Ok(expand_columns(&rel, &rule.layout, rule.head_arity))
}

/// Enumerative rule evaluation for the finite fragment: succeeds when every
/// positive predicate literal's relation is a point set and the rule is
/// fully "bound" (all constraint and head variables bound by positives;
/// negated literals ground at check time). Returns `None` to signal the
/// caller to use the generic symbolic path.
/// A positive literal resolved to points: `(predicate, args, point rows)`.
type BoundPositive<'a> = (&'a str, &'a [dco_logic::ArgTerm], Vec<Vec<Rational>>);

fn eval_rule_points(
    store: &Database,
    literals: &[Literal],
    head_vars: &[String],
) -> Option<GeneralizedRelation> {
    use dco_logic::ArgTerm;
    use std::collections::BTreeMap;
    let mut positives: Vec<BoundPositive> = Vec::new();
    let mut negatives: Vec<(&str, &[dco_logic::ArgTerm])> = Vec::new();
    let mut constraints: Vec<&Literal> = Vec::new();
    for lit in literals {
        match lit {
            Literal::Pos(name, args) => {
                let rel = store.get(name)?;
                positives.push((name, args, rel.as_points()?));
            }
            Literal::Neg(name, args) => {
                store.get(name)?;
                negatives.push((name, args));
            }
            Literal::Constraint(..) => constraints.push(lit),
        }
    }
    // Join positives by nested-loop unification.
    let mut bindings: Vec<BTreeMap<String, Rational>> = vec![BTreeMap::new()];
    for (_, args, points) in &positives {
        let mut next = Vec::new();
        for b in &bindings {
            'point: for p in points {
                let mut b2 = b.clone();
                for (arg, val) in args.iter().zip(p) {
                    match arg {
                        ArgTerm::Const(c) => {
                            if c != val {
                                continue 'point;
                            }
                        }
                        ArgTerm::Var(v) => match b2.get(v) {
                            Some(bound) if bound != val => continue 'point,
                            Some(_) => {}
                            None => {
                                b2.insert(v.clone(), *val);
                            }
                        },
                    }
                }
                next.push(b2);
            }
        }
        bindings = next;
        if bindings.is_empty() {
            break;
        }
    }
    // Constraints: all mentioned variables must be bound.
    let eval_expr = |e: &dco_logic::LinExpr, b: &BTreeMap<String, Rational>| -> Option<Rational> {
        let mut acc = e.constant;
        for (v, c) in &e.coeffs {
            acc = acc + (c * b.get(v)?);
        }
        Some(acc)
    };
    for lit in &constraints {
        let Literal::Constraint(l, op, r) = lit else {
            unreachable!()
        };
        // Verify boundness on one binding template (vars are uniform);
        // when no bindings survive the join the rule derives nothing.
        if let Some(b) = bindings.first() {
            if eval_expr(l, b).is_none() || eval_expr(r, b).is_none() {
                return None; // constraint on unbound variable: generic path
            }
        }
        // INVARIANT: the template check above verified every variable of
        // this constraint is bound, and the join binds a *uniform* variable
        // set across bindings (each positive literal extends all of them
        // identically) — so the expects cannot fire on later bindings.
        bindings.retain(|b| {
            let lv = eval_expr(l, b).expect("checked bound");
            let rv = eval_expr(r, b).expect("checked bound");
            op.eval(&lv, &rv)
        });
    }
    // Negations: ground membership tests against arbitrary relations.
    for (name, args) in &negatives {
        // INVARIANT: membership of `name` in the store was verified when the
        // literal was collected into `negatives`; the boundness template
        // below plus uniform binding domains make the `b[v]` index safe.
        let rel = store.get(name).expect("checked above");
        // boundness check
        if let Some(b) = bindings.first() {
            for arg in args.iter() {
                if let ArgTerm::Var(v) = arg {
                    if !b.contains_key(v) {
                        return None;
                    }
                }
            }
        }
        bindings.retain(|b| {
            let point: Vec<Rational> = args
                .iter()
                .map(|arg| match arg {
                    ArgTerm::Const(c) => *c,
                    ArgTerm::Var(v) => b[v],
                })
                .collect();
            !rel.contains_point(&point)
        });
    }
    // Head projection: all head vars must be bound.
    if let Some(b) = bindings.first() {
        for v in head_vars {
            if !b.contains_key(v) {
                return None;
            }
        }
    }
    let points: Vec<Vec<Rational>> = bindings
        .into_iter()
        .map(|b| head_vars.iter().map(|v| b[v]).collect())
        .collect();
    // dedup
    let mut seen = std::collections::BTreeSet::new();
    let points: Vec<Vec<Rational>> = points
        .into_iter()
        .filter(|p| seen.insert(p.clone()))
        .collect();
    Some(GeneralizedRelation::from_points(
        head_vars.len() as u32,
        points,
    ))
}

/// Expand an n-column relation to the head arity by duplicating columns
/// according to `layout` (layout[i] = source column for head position i).
fn expand_columns(
    rel: &GeneralizedRelation,
    layout: &[usize],
    head_arity: u32,
) -> GeneralizedRelation {
    if layout.iter().enumerate().all(|(i, &s)| i == s) && layout.len() == head_arity as usize {
        return rel.clone();
    }
    // widen, then constrain head col i = source col layout[i], then drop the
    // source block by projecting.
    let src = rel.arity();
    let total = head_arity + src;
    // place source at columns head_arity..head_arity+src
    let mut r = rel.rename(total, |v| Var(v.0 + head_arity));
    for (i, &s) in layout.iter().enumerate() {
        r = r.select(RawAtom::new(
            Term::var(i as u32),
            RawOp::Eq,
            Term::var(head_arity + s as u32),
        ));
    }
    for j in (head_arity..total).rev() {
        r = r.project_out(Var(j));
    }
    r.narrow(head_arity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn points(pairs: &[(i64, i64)]) -> GeneralizedRelation {
        GeneralizedRelation::from_points(
            2,
            pairs
                .iter()
                .map(|&(a, b)| vec![rat(a as i128, 1), rat(b as i128, 1)]),
        )
    }

    fn tc_fixpoint(pairs: &[(i64, i64)]) -> GeneralizedRelation {
        let p = parse_program(
            "tc(x, y) :- e(x, y).\n\
             tc(x, y) :- tc(x, z), e(z, y).\n",
        )
        .unwrap();
        let db = Database::new(Schema::new().with("e", 2)).with("e", points(pairs));
        run(&p, &db).unwrap().database.get("tc").unwrap().clone()
    }

    #[test]
    fn transitive_closure_of_path() {
        let tc = tc_fixpoint(&[(1, 2), (2, 3), (3, 4)]);
        for (a, b) in [(1, 2), (1, 3), (1, 4), (2, 4)] {
            assert!(
                tc.contains_point(&[rat(a, 1), rat(b, 1)]),
                "({a},{b}) missing"
            );
        }
        assert!(!tc.contains_point(&[rat(2, 1), rat(1, 1)]));
        assert!(!tc.contains_point(&[rat(4, 1), rat(1, 1)]));
    }

    #[test]
    fn transitive_closure_of_cycle() {
        let tc = tc_fixpoint(&[(1, 2), (2, 3), (3, 1)]);
        for a in 1..=3i128 {
            for b in 1..=3i128 {
                assert!(tc.contains_point(&[rat(a, 1), rat(b, 1)]));
            }
        }
    }

    #[test]
    fn fixpoint_over_infinite_relation() {
        // e = { (x, y) | 0 <= x < y <= 1 } — an infinite dense edge set; the
        // transitive closure equals e itself (it is already transitive).
        let e = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(1, 1))),
            ],
        );
        let p = parse_program(
            "tc(x, y) :- e(x, y).\n\
             tc(x, y) :- tc(x, z), e(z, y).\n",
        )
        .unwrap();
        let db = Database::new(Schema::new().with("e", 2)).with("e", e.clone());
        let result = run(&p, &db).unwrap();
        let tc = result.database.get("tc").unwrap();
        assert!(tc.equivalent(&e), "TC of a transitive relation is itself");
        assert!(
            result.stats.stages <= 4,
            "should converge fast, took {}",
            result.stats.stages
        );
    }

    #[test]
    fn negation_inflationary() {
        // sink(x): has no outgoing edge.
        let p = parse_program("sink(x) :- e(y, x), not e2(x).\ne2(x) :- e(x, y).\n").unwrap();
        let db = Database::new(Schema::new().with("e", 2)).with("e", points(&[(1, 2), (2, 3)]));
        let result = run(&p, &db).unwrap();
        let sink = result.database.get("sink").unwrap();
        // NOTE inflationary semantics: stage 1 derives e2 = {1,2} and also
        // evaluates sink against the then-empty e2, deriving sink = {2, 3};
        // stage 2 adds 3 (now e2 = {1,2} so "not e2(3)" holds)… facts are
        // never retracted, so sink = {2, 3}. This differs from stratified
        // semantics ({3} only) and is exactly the paper's semantics.
        assert!(sink.contains_point(&[rat(3, 1)]));
        assert!(sink.contains_point(&[rat(2, 1)]));
        assert!(!sink.contains_point(&[rat(1, 1)]));
    }

    #[test]
    fn constraints_in_bodies() {
        // keep only edge pairs within [0, 2.5]
        let p = parse_program("low(x, y) :- e(x, y), y <= 5/2.\n").unwrap();
        let db = Database::new(Schema::new().with("e", 2)).with("e", points(&[(1, 2), (2, 3)]));
        let low = run(&p, &db).unwrap().database.get("low").unwrap().clone();
        assert!(low.contains_point(&[rat(1, 1), rat(2, 1)]));
        assert!(!low.contains_point(&[rat(2, 1), rat(3, 1)]));
    }

    #[test]
    fn repeated_head_vars() {
        // diag(x, x) :- v(x).
        let p = parse_program("diag(x, x) :- v(x).\n").unwrap();
        let v = GeneralizedRelation::from_points(1, vec![vec![rat(1, 1)], vec![rat(2, 1)]]);
        let db = Database::new(Schema::new().with("v", 1)).with("v", v);
        let diag = run(&p, &db).unwrap().database.get("diag").unwrap().clone();
        assert!(diag.contains_point(&[rat(1, 1), rat(1, 1)]));
        assert!(!diag.contains_point(&[rat(1, 1), rat(2, 1)]));
    }

    #[test]
    fn missing_edb_is_error() {
        let p = parse_program("q(x) :- e(x, x).\n").unwrap();
        let db = Database::new(Schema::new());
        assert!(matches!(run(&p, &db), Err(EngineError::BadInput(_))));
    }

    #[test]
    fn stage_count_grows_with_path_length() {
        // naive TC of a path of n edges needs ~n stages: the polynomial
        // fixpoint behaviour Theorem 4.4's easy direction describes.
        let short = {
            let p = parse_program("tc(x,y) :- e(x,y).\ntc(x,y) :- tc(x,z), e(z,y).\n").unwrap();
            let db = Database::new(Schema::new().with("e", 2)).with("e", points(&[(1, 2), (2, 3)]));
            run(&p, &db).unwrap().stats.stages
        };
        let long = {
            let p = parse_program("tc(x,y) :- e(x,y).\ntc(x,y) :- tc(x,z), e(z,y).\n").unwrap();
            let edges: Vec<(i64, i64)> = (1..8).map(|i| (i, i + 1)).collect();
            let db = Database::new(Schema::new().with("e", 2)).with("e", points(&edges));
            run(&p, &db).unwrap().stats.stages
        };
        assert!(long > short);
    }
}
