//! Fault-tolerant Datalog¬ evaluation: `try_*` entry points that run the
//! fixpoint engine under a `dco_core::guard::EvalGuard`.
//!
//! Same contract as `dco_fo::guarded` and `dco_linear::guarded`: a
//! fault-free guarded run returns a fixpoint structurally identical to the
//! unguarded [`crate::run`]; any resource trip, overflow, cancellation, or
//! contained worker panic comes back as a typed [`GuardError`] carrying
//! partial-progress statistics (including `stages_completed`, which counts
//! fixpoint stages that finished before the trip).

use crate::ast::{Literal, Program};
use crate::engine::{run_with, EngineConfig, EngineError, FixpointResult};
use crate::stratified::{run_stratified_with, StratifiedResult, StratifyError};
use dco_core::guard::{run_guarded, EvalError as GuardError, GuardLimits, Guarded};
use dco_core::prelude::Database;
use dco_logic::Formula;
use std::fmt;

/// Why a fault-tolerant Datalog run did not produce a fixpoint.
#[derive(Debug)]
pub enum TryRunError {
    /// A semantic error independent of resources (bad input, stage limit).
    Invalid(EngineError),
    /// Stratification failure (stratified entry points only).
    Unstratifiable(StratifyError),
    /// The guard tripped or a panic was contained.
    Fault(GuardError),
}

impl fmt::Display for TryRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRunError::Invalid(e) => write!(f, "invalid program or input: {e}"),
            TryRunError::Unstratifiable(e) => write!(f, "{e}"),
            TryRunError::Fault(e) => write!(f, "evaluation fault: {e}"),
        }
    }
}

impl std::error::Error for TryRunError {}

/// Shorthand for the result of the inflationary `try_*` entry points.
pub type TryRunResult = Result<Guarded<FixpointResult>, TryRunError>;

/// Analyzer-suggested default budgets for a program over a database: the
/// static cost model's predicted cell count over the combined constant set,
/// with the widest rule body's variable count.
pub fn default_limits(program: &Program, input: &Database) -> GuardLimits {
    let mut constants = input.constants();
    let mut widest = 0usize;
    for r in &program.rules {
        let body = Formula::And(r.body.iter().map(Literal::to_formula).collect());
        constants.extend(dco_analysis::cost::constants_of_formula(&body));
        widest = widest.max(
            dco_analysis::cost::all_vars(&body)
                .len()
                .max(r.head_vars.len()),
        );
    }
    dco_analysis::cost::suggested_limits(constants.len(), widest)
}

/// Run the inflationary engine under the analyzer-suggested default budgets.
pub fn try_run(program: &Program, input: &Database) -> TryRunResult {
    try_run_with(
        program,
        input,
        &EngineConfig::default(),
        default_limits(program, input),
    )
}

/// Run the inflationary engine under explicit guard limits.
pub fn try_run_with(
    program: &Program,
    input: &Database,
    config: &EngineConfig,
    limits: GuardLimits,
) -> TryRunResult {
    match run_guarded(limits, || run_with(program, input, config)) {
        Ok(guarded) => match guarded.value {
            Ok(value) => Ok(Guarded {
                value,
                stats: guarded.stats,
            }),
            Err(e) => Err(TryRunError::Invalid(e)),
        },
        Err(fault) => Err(TryRunError::Fault(fault)),
    }
}

/// Shorthand for the result of the stratified `try_*` entry points.
pub type TryStratifiedResult = Result<Guarded<StratifiedResult>, TryRunError>;

/// Run under stratified semantics with the analyzer-suggested budgets.
pub fn try_run_stratified(program: &Program, input: &Database) -> TryStratifiedResult {
    try_run_stratified_with(
        program,
        input,
        &EngineConfig::default(),
        default_limits(program, input),
    )
}

/// Run under stratified semantics with explicit guard limits.
pub fn try_run_stratified_with(
    program: &Program,
    input: &Database,
    config: &EngineConfig,
    limits: GuardLimits,
) -> TryStratifiedResult {
    match run_guarded(limits, || run_stratified_with(program, input, config)) {
        Ok(guarded) => match guarded.value {
            Ok(value) => Ok(Guarded {
                value,
                stats: guarded.stats,
            }),
            Err(StratifyError::Engine(e)) => Err(TryRunError::Invalid(e)),
            Err(e) => Err(TryRunError::Unstratifiable(e)),
        },
        Err(fault) => Err(TryRunError::Fault(fault)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use dco_core::guard::EvalErrorKind;
    use dco_core::prelude::*;
    use std::time::Duration;

    fn tc() -> Program {
        parse_program(
            "tc(x, y) :- e(x, y).\n\
             tc(x, y) :- tc(x, z), e(z, y).\n",
        )
        .unwrap()
    }

    fn chain_db(n: i64) -> Database {
        let e = GeneralizedRelation::from_points(
            2,
            (1..n)
                .map(|i| vec![rat(i as i128, 1), rat((i + 1) as i128, 1)])
                .collect::<Vec<_>>(),
        );
        Database::new(Schema::new().with("e", 2)).with("e", e)
    }

    #[test]
    fn fault_free_guarded_run_matches_unguarded() {
        let db = chain_db(6);
        let unguarded = crate::run(&tc(), &db).unwrap();
        let guarded = try_run(&tc(), &db).unwrap();
        assert!(guarded.value.database.equivalent(&unguarded.database));
        assert_eq!(guarded.value.stats.stages, unguarded.stats.stages);
        assert!(guarded.stats.probes > 0, "fixpoint stages must hit probes");
        assert!(guarded.stats.stages_completed > 0);
    }

    #[test]
    fn tuple_budget_trips_with_partial_progress() {
        let db = chain_db(10);
        let limits = GuardLimits::none().with_max_tuples(3);
        let err = try_run_with(&tc(), &db, &EngineConfig::default(), limits).unwrap_err();
        let TryRunError::Fault(f) = err else {
            panic!("expected a fault");
        };
        assert!(matches!(f.kind, EvalErrorKind::BudgetExceeded { .. }));
        assert!(f.stats.tuples_materialized >= 3);
    }

    #[test]
    fn deadline_trips_as_typed_fault() {
        let db = chain_db(10);
        let limits = GuardLimits::none().with_deadline(Duration::ZERO);
        let err = try_run_with(&tc(), &db, &EngineConfig::default(), limits).unwrap_err();
        assert!(matches!(
            err,
            TryRunError::Fault(GuardError {
                kind: EvalErrorKind::DeadlineExceeded { .. },
                ..
            })
        ));
    }

    #[test]
    fn semantic_errors_stay_typed() {
        let p = parse_program("p(x) :- q(x).\n").unwrap();
        let db = Database::new(Schema::new());
        let err = try_run(&p, &db).unwrap_err();
        assert!(matches!(err, TryRunError::Invalid(_)));
    }

    #[test]
    fn stratified_guarded_matches_unguarded() {
        let p = parse_program(
            "r(x, y) :- e(x, y).\n\
             r(x, y) :- r(x, z), e(z, y).\n\
             unreach(x, y) :- v(x), v(y), not r(x, y).\n",
        )
        .unwrap();
        let v = GeneralizedRelation::from_points(
            1,
            (1..=3).map(|i| vec![rat(i, 1)]).collect::<Vec<_>>(),
        );
        let db = Database::new(Schema::new().with("e", 2).with("v", 1))
            .with(
                "e",
                GeneralizedRelation::from_points(
                    2,
                    vec![vec![rat(1, 1), rat(2, 1)], vec![rat(2, 1), rat(3, 1)]],
                ),
            )
            .with("v", v);
        let unguarded = crate::run_stratified(&p, &db).unwrap();
        let guarded = try_run_stratified(&p, &db).unwrap();
        assert!(guarded.value.database.equivalent(&unguarded.database));
    }

    #[test]
    fn unstratifiable_is_not_a_fault() {
        let p = parse_program(
            "a(x) :- v(x), not b(x).\n\
             b(x) :- v(x), not a(x).\n",
        )
        .unwrap();
        let v = GeneralizedRelation::from_points(1, vec![vec![rat(1, 1)]]);
        let db = Database::new(Schema::new().with("v", 1)).with("v", v);
        let err = try_run_stratified(&p, &db).unwrap_err();
        assert!(matches!(err, TryRunError::Unstratifiable(_)));
    }
}
