//! Semi-naive evaluation for the positive fragment.
//!
//! The naive engine re-derives every fact at every stage. For *negation-
//! free* programs the classical semi-naive optimization applies unchanged
//! to constraint relations: a new fact can only be derived by a rule
//! instance that uses at least one fact that was new at the previous
//! stage, so each stage evaluates, per rule and per positive body literal,
//! a variant in which that literal is restricted to the previous delta.
//!
//! For programs *with* negation the inflationary same-stage semantics of
//! §4 makes deltas unsound (a negated literal can newly *fail*), so this
//! module refuses them — callers fall back to [`crate::engine::run`] (or
//! stratify first and run each negation-free stratum semi-naively).

use crate::ast::{Literal, Program};
use crate::engine::{EngineError, EngineStats};
use dco_core::prelude::*;
use dco_fo::eval_in_ctx;
use dco_logic::Formula;
use std::collections::BTreeMap;

/// Error: program has negated literals (not supported semi-naively).
#[derive(Debug)]
pub enum SemiNaiveError {
    /// Negation present.
    HasNegation(String),
    /// Underlying engine error.
    Engine(EngineError),
}

impl std::fmt::Display for SemiNaiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SemiNaiveError::HasNegation(r) => {
                write!(
                    f,
                    "semi-naive evaluation requires a positive program; rule has negation: {r}"
                )
            }
            SemiNaiveError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SemiNaiveError {}

impl From<EngineError> for SemiNaiveError {
    fn from(e: EngineError) -> SemiNaiveError {
        SemiNaiveError::Engine(e)
    }
}

/// Run a positive program to fixpoint with semi-naive deltas.
pub fn run_seminaive(
    program: &Program,
    input: &Database,
) -> Result<(Database, EngineStats), SemiNaiveError> {
    for r in &program.rules {
        if r.body.iter().any(|l| matches!(l, Literal::Neg(..))) {
            return Err(SemiNaiveError::HasNegation(r.to_string()));
        }
    }
    let arities = program
        .arities()
        .map_err(|e| EngineError::BadInput(e.to_string()))?;
    // Working store: EDB from input + IDB empty + shadow delta relations.
    let idb = program.idb_predicates();
    let mut schema = Schema::new();
    for p in program.edb_predicates() {
        let rel = input
            .get(&p)
            .ok_or_else(|| EngineError::BadInput(format!("missing EDB relation {p}")))?;
        schema = schema.with(&p, rel.arity());
    }
    for p in &idb {
        schema = schema.with(p, arities[p]);
        schema = schema.with(&delta_name(p), arities[p]);
    }
    let mut store = Database::new(schema);
    for p in program.edb_predicates() {
        // INVARIANT: `input.get(&p)` returned Some in the schema-building
        // loop above (it errored otherwise), and the schema entry was added
        // there with that relation's arity — both expects are unreachable.
        store
            .set(&p, input.get(&p).expect("checked").clone())
            .expect("schema matches");
    }

    let mut stats = EngineStats::default();
    // Stage 0 (naive): all rules against empty IDBs.
    let mut deltas: BTreeMap<String, GeneralizedRelation> = BTreeMap::new();
    for rule in &program.rules {
        stats.body_evals += 1;
        let derived = eval_rule(&store, rule)?;
        deltas
            .entry(rule.head.clone())
            .and_modify(|d| *d = d.union(&derived))
            .or_insert(derived);
    }
    loop {
        // Guard probe: one hit per semi-naive stage boundary.
        dco_core::guard::probe(dco_core::guard::ProbeSite::FixpointStage);
        stats.stages += 1;
        // fold deltas into the store; compute the genuinely-new parts
        let mut new_deltas: BTreeMap<String, GeneralizedRelation> = BTreeMap::new();
        let mut any_new = false;
        // INVARIANT for the expects in this loop: every IDB predicate and
        // its shadow delta were declared in the schema above, and writes
        // keep the declared arity — `get`/`set` cannot fail.
        for p in &idb {
            let old = store.get(p).expect("idb").clone();
            let delta = deltas
                .get(p)
                .cloned()
                .unwrap_or_else(|| GeneralizedRelation::empty(arities[p]));
            let fresh = match delta.as_points() {
                Some(points) => GeneralizedRelation::from_points(
                    delta.arity(),
                    points
                        .into_iter()
                        .filter(|pt| !old.contains_point(pt))
                        .collect::<Vec<_>>(),
                ),
                None => delta.difference(&old),
            };
            if !fresh.is_empty() {
                any_new = true;
            }
            store.set(p, old.union(&fresh)).expect("schema matches");
            store
                .set(&delta_name(p), fresh.clone())
                .expect("schema matches");
            new_deltas.insert(p.clone(), fresh);
        }
        dco_core::guard::stage_completed();
        if !any_new {
            break;
        }
        // next round: per rule, per positive IDB literal, delta variant
        deltas = BTreeMap::new();
        for rule in &program.rules {
            for (i, lit) in rule.body.iter().enumerate() {
                let Literal::Pos(name, _) = lit else { continue };
                if !idb.contains(name) {
                    continue;
                }
                stats.body_evals += 1;
                let mut variant = rule.clone();
                if let Literal::Pos(n, _) = &mut variant.body[i] {
                    *n = delta_name(name);
                }
                let derived = eval_rule(&store, &variant)?;
                deltas
                    .entry(rule.head.clone())
                    .and_modify(|d| *d = d.union(&derived))
                    .or_insert(derived);
            }
        }
    }
    // strip the delta shadows from the output
    let mut out_schema = Schema::new();
    for p in program.edb_predicates() {
        out_schema = out_schema.with(&p, arities[&p]);
    }
    for p in &idb {
        out_schema = out_schema.with(p, arities[p]);
    }
    let mut out = Database::new(out_schema);
    // INVARIANT: the working store declares every EDB and IDB predicate and
    // the output schema mirrors it minus the shadows — the expects below
    // are unreachable.
    for p in program.edb_predicates() {
        out.set(&p, store.get(&p).expect("edb").clone())
            .expect("schema");
    }
    for p in &idb {
        let rel = store.get(p).expect("idb").clone();
        stats.final_size += rel.size();
        out.set(p, rel).expect("schema");
    }
    Ok((out, stats))
}

fn delta_name(p: &str) -> String {
    format!("__delta_{p}")
}

/// Evaluate one rule body and project onto the head (duplicating repeated
/// head variables).
fn eval_rule(
    store: &Database,
    rule: &crate::ast::Rule,
) -> Result<GeneralizedRelation, EngineError> {
    let body = Formula::And(rule.body.iter().map(Literal::to_formula).collect());
    let mut ctx: Vec<String> = Vec::new();
    for v in &rule.head_vars {
        if !ctx.contains(v) {
            ctx.push(v.clone());
        }
    }
    let distinct_head = ctx.len();
    let mut rest: Vec<String> = body
        .free_vars()
        .into_iter()
        .filter(|v| !ctx.contains(v))
        .collect();
    rest.sort();
    ctx.extend(rest);
    let mut rel = eval_in_ctx(store, &body, &ctx).map_err(|source| EngineError::Body {
        rule: rule.to_string(),
        source,
    })?;
    for i in (distinct_head..ctx.len()).rev() {
        rel = rel.project_out(Var(i as u32));
    }
    let rel = rel.narrow(distinct_head as u32);
    // expand repeated head vars
    let mut firsts: Vec<&String> = Vec::new();
    let layout: Vec<usize> = rule
        .head_vars
        .iter()
        .map(|v| {
            if let Some(i) = firsts.iter().position(|f| *f == v) {
                i
            } else {
                firsts.push(v);
                firsts.len() - 1
            }
        })
        .collect();
    if layout.iter().enumerate().all(|(i, &s)| i == s) && layout.len() == distinct_head {
        return Ok(rel);
    }
    let head_arity = rule.head_vars.len() as u32;
    let src = rel.arity();
    let total = head_arity + src;
    let mut r = rel.rename(total, |v| Var(v.0 + head_arity));
    for (i, &s) in layout.iter().enumerate() {
        r = r.select(RawAtom::new(
            Term::var(i as u32),
            RawOp::Eq,
            Term::var(head_arity + s as u32),
        ));
    }
    for j in (head_arity..total).rev() {
        r = r.project_out(Var(j));
    }
    Ok(r.narrow(head_arity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::parser::parse_program;

    fn points(pairs: &[(i64, i64)]) -> GeneralizedRelation {
        GeneralizedRelation::from_points(
            2,
            pairs
                .iter()
                .map(|&(a, b)| vec![rat(a as i128, 1), rat(b as i128, 1)]),
        )
    }

    fn tc() -> Program {
        parse_program(
            "tc(x, y) :- e(x, y).\n\
             tc(x, y) :- tc(x, z), e(z, y).\n",
        )
        .unwrap()
    }

    #[test]
    fn seminaive_matches_naive_on_path() {
        let db = Database::new(Schema::new().with("e", 2))
            .with("e", points(&[(1, 2), (2, 3), (3, 4), (4, 5)]));
        let naive = run(&tc(), &db).unwrap().database.get("tc").unwrap().clone();
        let (semi, _) = run_seminaive(&tc(), &db).unwrap();
        assert!(semi.get("tc").unwrap().equivalent(&naive));
    }

    #[test]
    fn seminaive_matches_naive_on_dense_relation() {
        let e = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(1, 1))),
            ],
        );
        let db = Database::new(Schema::new().with("e", 2)).with("e", e);
        let naive = run(&tc(), &db).unwrap().database.get("tc").unwrap().clone();
        let (semi, _) = run_seminaive(&tc(), &db).unwrap();
        assert!(semi.get("tc").unwrap().equivalent(&naive));
    }

    #[test]
    fn negation_rejected() {
        let p = parse_program("q(x) :- e(x, x), not e(x, x).\n").unwrap();
        let db = Database::new(Schema::new().with("e", 2)).with("e", points(&[(1, 1)]));
        assert!(matches!(
            run_seminaive(&p, &db),
            Err(SemiNaiveError::HasNegation(_))
        ));
    }

    #[test]
    fn seminaive_converges_in_linear_stages() {
        let edges: Vec<(i64, i64)> = (1..10).map(|i| (i, i + 1)).collect();
        let db = Database::new(Schema::new().with("e", 2)).with("e", points(&edges));
        let (out, stats) = run_seminaive(&tc(), &db).unwrap();
        assert!(out
            .get("tc")
            .unwrap()
            .contains_point(&[rat(1, 1), rat(10, 1)]));
        assert!(stats.stages <= 12, "stages = {}", stats.stages);
    }

    #[test]
    fn repeated_head_vars_supported() {
        let p = parse_program("diag(x, x) :- v(x).\n").unwrap();
        let v = GeneralizedRelation::from_points(1, vec![vec![rat(1, 1)], vec![rat(2, 1)]]);
        let db = Database::new(Schema::new().with("v", 1)).with("v", v);
        let (out, _) = run_seminaive(&p, &db).unwrap();
        let diag = out.get("diag").unwrap();
        assert!(diag.contains_point(&[rat(1, 1), rat(1, 1)]));
        assert!(!diag.contains_point(&[rat(1, 1), rat(2, 1)]));
    }
}
