//! Property tests for the Datalog¬ engine: transitive closure against a
//! reference Floyd–Warshall implementation on random finite graphs, and
//! engine invariants (inflation, fixpoint stability, fast-path/symbolic
//! agreement).

use dco_core::prelude::*;
use dco_datalog::{parse_program, run, run_stratified};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn tc_program() -> dco_datalog::Program {
    parse_program(
        "tc(x, y) :- e(x, y).\n\
         tc(x, y) :- tc(x, z), e(z, y).\n",
    )
    .expect("static program parses")
}

fn arb_graph() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..7, 0i64..7), 0..12)
}

/// Reference transitive closure.
fn reference_tc(edges: &[(i64, i64)]) -> BTreeSet<(i64, i64)> {
    let nodes: BTreeSet<i64> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    let mut reach: BTreeSet<(i64, i64)> = edges.iter().copied().collect();
    loop {
        let mut added = Vec::new();
        for &(a, b) in &reach {
            for &(c, d) in &reach {
                if b == c && !reach.contains(&(a, d)) {
                    added.push((a, d));
                }
            }
        }
        if added.is_empty() {
            break;
        }
        reach.extend(added);
    }
    let _ = nodes;
    reach
}

fn edge_relation(edges: &[(i64, i64)]) -> GeneralizedRelation {
    GeneralizedRelation::from_points(
        2,
        edges
            .iter()
            .map(|&(a, b)| vec![rat(a as i128, 1), rat(b as i128, 1)])
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tc_matches_floyd_warshall(edges in arb_graph()) {
        let db = Database::new(Schema::new().with("e", 2)).with("e", edge_relation(&edges));
        let fix = run(&tc_program(), &db).expect("fixpoint");
        let tc = fix.database.get("tc").expect("tc");
        let expect = reference_tc(&edges);
        // every expected pair present
        for &(a, b) in &expect {
            prop_assert!(
                tc.contains_point(&[rat(a as i128, 1), rat(b as i128, 1)]),
                "missing ({a},{b})"
            );
        }
        // no spurious pairs (checked on the grid)
        for a in 0..7i64 {
            for b in 0..7i64 {
                if !expect.contains(&(a, b)) {
                    prop_assert!(
                        !tc.contains_point(&[rat(a as i128, 1), rat(b as i128, 1)]),
                        "spurious ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn fixpoint_is_stable(edges in arb_graph()) {
        // running the program on its own fixpoint's EDB+tc as input derives
        // nothing new: feed tc back as edges and close again — idempotent
        // on the reachability relation.
        let db = Database::new(Schema::new().with("e", 2)).with("e", edge_relation(&edges));
        let tc1 = run(&tc_program(), &db).expect("fixpoint").database.get("tc").expect("tc").clone();
        let db2 = Database::new(Schema::new().with("e", 2)).with("e", tc1.clone());
        let tc2 = run(&tc_program(), &db2).expect("fixpoint").database.get("tc").expect("tc").clone();
        prop_assert!(tc2.equivalent(&tc1));
    }

    #[test]
    fn inflationary_output_contains_edb(edges in arb_graph()) {
        let e = edge_relation(&edges);
        let db = Database::new(Schema::new().with("e", 2)).with("e", e.clone());
        let fix = run(&tc_program(), &db).expect("fixpoint");
        prop_assert!(e.is_subset(fix.database.get("tc").expect("tc")));
    }

    #[test]
    fn stratified_agrees_with_inflationary_on_negation_free(edges in arb_graph()) {
        let db = Database::new(Schema::new().with("e", 2)).with("e", edge_relation(&edges));
        let inf = run(&tc_program(), &db).expect("fixpoint").database.get("tc").expect("tc").clone();
        let strat = run_stratified(&tc_program(), &db)
            .expect("stratified")
            .database
            .get("tc")
            .expect("tc")
            .clone();
        prop_assert!(inf.equivalent(&strat));
    }

    #[test]
    fn symbolic_path_agrees_with_point_fast_path(edges in arb_graph()) {
        // Force the generic symbolic path by wrapping each edge point in an
        // equivalent non-point tuple (x = a ∧ a <= x): as_points() fails,
        // so the engine uses FO evaluation — answers must match.
        let db_points =
            Database::new(Schema::new().with("e", 2)).with("e", edge_relation(&edges));
        let obfuscated = GeneralizedRelation::from_tuples(
            2,
            edges.iter().flat_map(|&(a, b)| {
                GeneralizedTuple::from_raw(
                    2,
                    vec![
                        RawAtom::new(Term::var(0), RawOp::Eq, Term::cst(rat(a as i128, 1))),
                        RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(a as i128, 1))),
                        RawAtom::new(Term::var(1), RawOp::Eq, Term::cst(rat(b as i128, 1))),
                        RawAtom::new(Term::cst(rat(b as i128, 1)), RawOp::Ge, Term::var(1)),
                    ],
                )
            }),
        );
        let db_symbolic = Database::new(Schema::new().with("e", 2)).with("e", obfuscated);
        let fast = run(&tc_program(), &db_points).expect("fixpoint").database.get("tc").expect("tc").clone();
        let slow = run(&tc_program(), &db_symbolic).expect("fixpoint").database.get("tc").expect("tc").clone();
        prop_assert!(fast.equivalent(&slow));
    }
}

/// An equivalent non-point encoding of the edges (x = a ∧ a ≤ x …):
/// `as_points()` fails, so every engine stage runs the symbolic DNF
/// algebra — the path the parallel layer and the subsumption-filtered
/// deltas actually target.
fn obfuscated_edges(edges: &[(i64, i64)]) -> GeneralizedRelation {
    GeneralizedRelation::from_tuples(
        2,
        edges.iter().flat_map(|&(a, b)| {
            GeneralizedTuple::from_raw(
                2,
                vec![
                    RawAtom::new(Term::var(0), RawOp::Eq, Term::cst(rat(a as i128, 1))),
                    RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(a as i128, 1))),
                    RawAtom::new(Term::var(1), RawOp::Eq, Term::cst(rat(b as i128, 1))),
                    RawAtom::new(Term::cst(rat(b as i128, 1)), RawOp::Ge, Term::var(1)),
                ],
            )
        }),
    )
}

// Parallel runs must reproduce the sequential fixpoint *structurally*
// (same canonical DNF, `==`), and the semi-naive delta engine must agree
// semantically with naive full stages. More cases than the semantic
// suite: no reference implementation runs here.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parallel_fixpoint_identical_to_sequential(edges in arb_graph()) {
        let db = Database::new(Schema::new().with("e", 2)).with("e", obfuscated_edges(&edges));
        let seq = with_eval_config(EvalConfig::sequential(), || run(&tc_program(), &db))
            .expect("fixpoint");
        let par = with_eval_config(
            EvalConfig { threads: 4, parallel_threshold: 1, ..EvalConfig::default() },
            || run(&tc_program(), &db),
        )
        .expect("fixpoint");
        prop_assert_eq!(seq.database, par.database);
    }

    #[test]
    fn delta_engine_agrees_with_naive(edges in arb_graph()) {
        use dco_datalog::{run_with, EngineConfig};
        let db = Database::new(Schema::new().with("e", 2)).with("e", obfuscated_edges(&edges));
        let naive = EngineConfig { use_deltas: false, ..EngineConfig::default() };
        let a = run_with(&tc_program(), &db, &EngineConfig::default()).expect("fixpoint");
        let b = run_with(&tc_program(), &db, &naive).expect("fixpoint");
        prop_assert!(a.database.equivalent(&b.database));
    }
}
