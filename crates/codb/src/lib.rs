//! # dco — Dense-Order Constraint Databases
//!
//! A from-scratch Rust implementation of the system described in
//! *Dense-Order Constraint Databases* (Stéphane Grumbach and Jianwen Su,
//! PODS 1995): infinite databases finitely represented by dense-order
//! constraints over the rationals, with the full query-language stack the
//! paper studies.
//!
//! | Layer | Crate | Paper section |
//! |---|---|---|
//! | Rationals, generalized relations, QE, cells, algebra | [`core`] | §2–§3 |
//! | Formula AST and parser | [`logic`] | §4 |
//! | FO evaluation (closed form, AC⁰ data complexity) | [`fo`] | §4 |
//! | FO+ with linear constraints (Fourier–Motzkin) | [`linear`] | §4, Thm 4.1–4.3 |
//! | Inflationary Datalog¬ (= PTIME, Thm 4.4) | [`datalog`] | §4 |
//! | Complex objects and C-CALC | [`complex`] | §5 |
//! | EF games for the inexpressibility results | [`ef`] | Thm 4.2–4.3 |
//! | Standard encodings, integer homeomorphism | [`encoding`] | §3–§4 |
//! | Regions, topology, region connectivity | [`geo`] | §2, Thm 4.3 |
//! | Static query analysis & lint pass | [`analysis`] | — |
//! | Metrics, per-query tracing, slow-query log | [`obs`] | — |
//! | Durable store: WAL, snapshots, query server | [`store`] | §3 |
//!
//! ## Quickstart
//!
//! ```
//! use dco::prelude::*;
//!
//! // The paper's running example: a triangle as one generalized tuple.
//! let triangle = GeneralizedRelation::from_raw(2, vec![
//!     RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
//!     RawAtom::new(Term::var(0), RawOp::Ge, Term::cst(rat(0, 1))),
//!     RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
//! ]);
//! let db = Database::new(Schema::new().with("R", 2)).with("R", triangle);
//!
//! // FO query, evaluated bottom-up in closed form:
//! let q = dco::fo::eval_str(&db, "exists y . (R(x, y) & x < y)").unwrap();
//! assert!(q.relation.contains_point(&[rat(3, 1)]));
//! ```
//!
//! ## Checked evaluation
//!
//! Every evaluator has a `checked_*` variant that runs the [`analysis`]
//! lint pass first and rejects bad queries with span-carrying diagnostics
//! instead of panicking or failing mid-evaluation:
//!
//! ```
//! use dco::prelude::*;
//! use dco::fo::CheckedEvalError;
//!
//! let db = Database::new(Schema::new().with("e", 2));
//!
//! // Arity mismatch: rejected up front, never evaluated.
//! let err = checked_eval_str(&db, "e(x, y, z)").unwrap_err();
//! let CheckedEvalError::Rejected(diags) = err else { unreachable!() };
//! assert_eq!(diags[0].code, "DCO102");
//!
//! // A statically-dead rule body is pruned before the fixpoint runs.
//! let p = parse_program(
//!     "tc(x,y) :- e(x,y).\n\
//!      tc(x,y) :- e(x,y), x < y, y < x.\n").unwrap();
//! let out = checked_run(&p, &db).unwrap();
//! assert_eq!(out.pruned_rules, 1); // warning DCO401, line 2
//! ```
//!
//! ## Fault-tolerant evaluation
//!
//! Every evaluator also has a `try_*` variant that runs under a runtime
//! guard ([`core::guard`]): deadlines, tuple/atom budgets, cooperative
//! cancellation, checked arithmetic, and panic containment. A fault-free
//! guarded run returns exactly the unguarded result plus
//! [`core::guard::GuardStats`];
//! any trip comes back as a typed fault, never a process abort:
//!
//! ```
//! use dco::prelude::*;
//! use std::time::Duration;
//!
//! let db = Database::new(Schema::new());
//! // Fault-free: identical to the unguarded evaluator, plus stats.
//! let out = try_eval_str(&db, "exists x . (0 < x & x < 1)").unwrap();
//! assert_eq!(out.value.as_bool(), Some(true));
//!
//! // A zero deadline trips deterministically with a typed error.
//! let limits = GuardLimits::none().with_deadline(Duration::ZERO);
//! let formula = parse_formula("exists x . (0 < x & x < 1)").unwrap();
//! let err = dco::fo::try_eval_with(&db, &formula, limits).unwrap_err();
//! assert!(matches!(
//!     err,
//!     dco::fo::TryEvalError::Fault(GuardError {
//!         kind: GuardErrorKind::DeadlineExceeded { .. },
//!         ..
//!     })
//! ));
//! ```

#![warn(missing_docs)]

pub use dco_analysis as analysis;
pub use dco_complex as complex;
pub use dco_core as core;
pub use dco_datalog as datalog;
pub use dco_ef as ef;
pub use dco_encoding as encoding;
pub use dco_fo as fo;
pub use dco_geo as geo;
pub use dco_linear as linear;
pub use dco_logic as logic;
pub use dco_obs as obs;
pub use dco_store as store;

/// One-stop import surface for applications.
pub mod prelude {
    pub use dco_analysis::{
        analyze_formula, analyze_program, has_errors, AnalysisOptions, Diagnostic, Severity,
    };
    pub use dco_core::prelude::*;
    pub use dco_datalog::{
        checked_run, checked_run_stratified, parse_program, run as run_datalog,
        try_run as try_run_datalog, try_run_stratified, try_run_stratified_with,
        try_run_with as try_run_datalog_with, TryRunError,
    };
    pub use dco_fo::{
        checked_eval, checked_eval_str, eval as eval_fo, eval_str as eval_fo_str, try_eval,
        try_eval_str, try_eval_with, CheckedEvalError, EvalError, TryEvalError,
    };
    pub use dco_linear::{
        eval_linear, eval_linear_str, try_eval_linear, try_eval_linear_str, try_eval_linear_with,
        TryLinEvalError,
    };
    pub use dco_logic::{parse_formula, Formula};
    pub use dco_store::{serve, Client, Store, StoreError, StoreOptions};
}
