//! Soundness of the static unsatisfiability pass against the core
//! normalizer: whenever the analyzer declares a conjunction of dense-order
//! constraints unsatisfiable, normalizing the same constraints as a
//! generalized tuple must yield the empty alternative set.

use dco_analysis::{unsat, OrderSystem};
use dco_core::prelude::{rat, Rational, RawAtom, RawOp, Term};
use dco_logic::{Formula, LinExpr};
use proptest::prelude::*;

const VARS: u32 = 4;
const CONSTS: [(i128, i128); 5] = [(-1, 1), (0, 1), (1, 2), (1, 1), (2, 1)];
const OPS: [RawOp; 6] = [
    RawOp::Lt,
    RawOp::Le,
    RawOp::Eq,
    RawOp::Ne,
    RawOp::Ge,
    RawOp::Gt,
];

/// One side of a generated constraint.
#[derive(Debug, Clone, Copy)]
enum Side {
    Var(u32),
    Const(usize),
}

impl Side {
    fn rational(i: usize) -> Rational {
        let (n, d) = CONSTS[i];
        rat(n, d)
    }

    fn to_linexpr(self) -> LinExpr {
        match self {
            Side::Var(v) => LinExpr::var(&format!("x{v}")),
            Side::Const(i) => LinExpr::cst(Side::rational(i)),
        }
    }

    fn to_term(self) -> Term {
        match self {
            Side::Var(v) => Term::var(v),
            Side::Const(i) => Term::cst(Side::rational(i)),
        }
    }
}

fn side_strategy() -> BoxedStrategy<Side> {
    prop_oneof![
        (0u32..VARS).prop_map(Side::Var),
        (0usize..CONSTS.len()).prop_map(Side::Const),
    ]
    .boxed()
}

fn constraint_strategy() -> BoxedStrategy<(Side, usize, Side)> {
    (side_strategy(), 0usize..OPS.len(), side_strategy()).boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn analyzer_unsat_implies_empty_normalization(
        constraints in prop::collection::vec(constraint_strategy(), 1..8),
    ) {
        // The same conjunction, three ways.
        let mut system = OrderSystem::new();
        let mut conjuncts = Vec::new();
        let mut raws = Vec::new();
        for &(l, op_idx, r) in &constraints {
            let op = OPS[op_idx];
            system.add(&l.to_linexpr(), op, &r.to_linexpr());
            conjuncts.push(Formula::Compare(l.to_linexpr(), op, r.to_linexpr()));
            raws.push(RawAtom::new(l.to_term(), op, r.to_term()));
        }
        let formula = Formula::And(conjuncts);

        // The two analyzer views must agree.
        prop_assert_eq!(
            unsat::conjunction_is_unsat(&formula),
            !system.is_satisfiable()
        );

        // Soundness: analyzer-unsat ⇒ the core normalizer finds no
        // satisfiable alternative.
        if !system.is_satisfiable() {
            let alts = dco_core::prelude::GeneralizedTuple::from_raw(VARS, raws);
            prop_assert!(
                alts.is_empty(),
                "analyzer said unsat but normalization kept {} alternative(s) \
                 for {:?}",
                alts.len(),
                constraints
            );
        }
    }
}
