//! Static cost estimation.
//!
//! Closed-form evaluation of a dense-order query is exponential in the
//! quantifier structure, and its intermediate relations live in the cell
//! decomposition of Q^n induced by the constants of the query and database:
//! with `k` distinct constants there are `2k+1` order cells per axis, so at
//! most `(2k+1)^n` cells over `n` variables. The estimator bounds both the
//! quantifier alternation depth and this predicted cell count against a
//! configurable [`CostBudget`]; queries over budget are rejected before any
//! evaluation work is spent.

use crate::diagnostic::{Diagnostic, Span};
use dco_core::guard::GuardLimits;
use dco_core::prelude::Rational;
use dco_logic::datalog::{Literal, Rule};
use dco_logic::{ArgTerm, Formula, LinExpr};
use std::collections::BTreeSet;

/// Limits a query must stay within to be evaluated by `checked_*` entry
/// points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBudget {
    /// Maximum quantifier alternation depth (number of maximal ∃/∀ groups
    /// along any path, with negation flipping the quantifier kind).
    pub max_quantifier_alternation: usize,
    /// Maximum predicted cell-decomposition size `(2k+1)^n`.
    pub max_predicted_cells: u128,
}

impl Default for CostBudget {
    fn default() -> CostBudget {
        CostBudget {
            max_quantifier_alternation: 32,
            max_predicted_cells: 1_000_000_000_000,
        }
    }
}

/// Quantifier alternation depth: the longest chain of quantifier groups of
/// alternating kind along any root-to-leaf path. `∃x∃y.φ` counts 1,
/// `∃x∀y∃z.φ` counts 3. Negation flips the effective kind (`¬∃ ≡ ∀¬`), as
/// does the antecedent of an implication.
pub fn alternation_depth(formula: &Formula) -> usize {
    depth(formula, true, None)
}

fn depth(f: &Formula, positive: bool, last_exists: Option<bool>) -> usize {
    match f {
        Formula::True | Formula::False | Formula::Compare(..) | Formula::Pred(..) => 0,
        Formula::Not(g) => depth(g, !positive, last_exists),
        Formula::And(fs) | Formula::Or(fs) => fs
            .iter()
            .map(|g| depth(g, positive, last_exists))
            .max()
            .unwrap_or(0),
        Formula::Implies(a, b) => {
            depth(a, !positive, last_exists).max(depth(b, positive, last_exists))
        }
        // φ ↔ ψ expands to two implications: each side occurs under both
        // polarities.
        Formula::Iff(a, b) => [a, b]
            .iter()
            .flat_map(|g| {
                [
                    depth(g, positive, last_exists),
                    depth(g, !positive, last_exists),
                ]
            })
            .max()
            .unwrap_or(0),
        Formula::Exists(_, g) | Formula::Forall(_, g) => {
            let exists = matches!(f, Formula::Exists(..)) == positive;
            let step = if last_exists == Some(exists) { 0 } else { 1 };
            step + depth(g, positive, Some(exists))
        }
    }
}

fn constants_of_expr(e: &LinExpr, out: &mut BTreeSet<Rational>) {
    if !e.constant.is_zero() {
        out.insert(e.constant);
    }
}

/// Distinct rational constants a formula mentions (comparison constant
/// terms and constant predicate arguments).
pub fn constants_of_formula(formula: &Formula) -> BTreeSet<Rational> {
    let mut out = BTreeSet::new();
    formula.walk(&mut |f| match f {
        Formula::Compare(l, _, r) => {
            constants_of_expr(l, &mut out);
            constants_of_expr(r, &mut out);
        }
        Formula::Pred(_, args) => {
            for a in args {
                if let ArgTerm::Const(c) = a {
                    out.insert(*c);
                }
            }
        }
        _ => {}
    });
    out
}

/// All variable names of a formula, free and bound.
pub fn all_vars(formula: &Formula) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    formula.walk(&mut |f| match f {
        Formula::Compare(l, _, r) => {
            out.extend(l.vars().chain(r.vars()).map(|s| s.to_string()));
        }
        Formula::Pred(_, args) => {
            for a in args {
                if let ArgTerm::Var(v) = a {
                    out.insert(v.clone());
                }
            }
        }
        Formula::Exists(vs, _) | Formula::Forall(vs, _) => {
            out.extend(vs.iter().cloned());
        }
        _ => {}
    });
    out
}

/// Predicted cell-decomposition size: `(2k+1)^n` for `k` constants and `n`
/// variables, saturating at `u128::MAX`.
pub fn predicted_cells(constants: usize, vars: usize) -> u128 {
    let base = 2 * constants as u128 + 1;
    let Ok(exp) = u32::try_from(vars) else {
        return u128::MAX;
    };
    base.saturating_pow(exp)
}

/// Default runtime guard budgets derived from the static cost estimate —
/// the bridge between the *predictive* cost pass and the *enforcing* guard
/// layer (`dco_core::guard`).
///
/// The tuple budget is a generous multiple of the predicted cell count:
/// the cell-decomposition path materializes at most `cells` disjuncts per
/// operation, and the syntactic paths normally far fewer, so an evaluation
/// that charges past the multiple is genuinely off the predicted envelope
/// rather than merely unlucky. The atom budget scales from the tuple
/// budget (normalized dense-order tuples hold O(k²) atoms, and the bench
/// workloads sit well under 16 per disjunct). Budgets are floored so tiny
/// queries keep headroom for intermediate blowup, and capped so a
/// saturated estimate still yields an *enforceable* guard instead of an
/// unlimited one.
///
/// No deadline is set here: budgets are deterministic across machines,
/// wall clocks are not, so deadlines are left to callers that own one
/// (request handlers, the bench harness).
pub fn suggested_limits(constants: usize, vars: usize) -> GuardLimits {
    limits_for_cells(predicted_cells(constants, vars))
}

fn limits_for_cells(cells: u128) -> GuardLimits {
    let tuples = u64::try_from(cells.saturating_mul(64))
        .unwrap_or(u64::MAX)
        .clamp(100_000, 50_000_000);
    let atoms = tuples.saturating_mul(16);
    GuardLimits::none()
        .with_max_tuples(tuples)
        .with_max_atoms(atoms)
}

/// Cell-decomposition bailout work the kernel pays for the complements a
/// formula forces. Every `Not` node complements its operand's relation;
/// `Implies(a, b)` rewrites to `¬a ∨ b`; `Iff` complements both sides;
/// `Forall` is `¬∃¬` — two complements. When the operand's box structure
/// defeats the syntactic complement path, the kernel falls back to full
/// cell decomposition, whose size is `(2m+1)^n` cells refined by the
/// `fubini(n)` ordered-partition factor — that bailout is what each
/// complement is charged here, so budgets stop under-estimating negated
/// subformulas.
pub fn complement_charge(formula: &Formula) -> u128 {
    let mut total: u128 = 0;
    formula.walk(&mut |f| match f {
        Formula::Not(g) => total = total.saturating_add(bailout_cells(g)),
        Formula::Implies(a, _) => total = total.saturating_add(bailout_cells(a)),
        Formula::Iff(a, b) => {
            total = total
                .saturating_add(bailout_cells(a))
                .saturating_add(bailout_cells(b));
        }
        Formula::Forall(_, g) => {
            total = total
                .saturating_add(bailout_cells(g))
                .saturating_add(bailout_cells(f));
        }
        _ => {}
    });
    total
}

/// The kernel's complement-bailout estimate for one subformula: cell count
/// over its own constants and variables times the Fubini refinement
/// factor, floored at the kernel's minimum decomposition work.
fn bailout_cells(f: &Formula) -> u128 {
    let m = constants_of_formula(f).len();
    let n = all_vars(f).len().max(1);
    let fub = dco_core::cell::fubini(n).map_or(u128::MAX, |v| v as u128);
    predicted_cells(m, n).saturating_mul(fub).max(256)
}

/// [`suggested_limits`] computed from a formula and the database constants
/// it will run against, including the complement charge for its negated
/// subformulas.
pub fn suggested_limits_for_formula(
    formula: &Formula,
    db_constants: impl IntoIterator<Item = Rational>,
) -> GuardLimits {
    let mut constants = constants_of_formula(formula);
    constants.extend(db_constants);
    let cells = predicted_cells(constants.len(), all_vars(formula).len())
        .saturating_add(complement_charge(formula));
    limits_for_cells(cells)
}

/// Estimate-derived guard budgets: the statistics-driven refinement of
/// [`suggested_limits_for_formula`]. The planner's cardinality estimate
/// sizes the tuple budget directly; the heuristic cell-count budget stays
/// as a floor so an under-estimate can never *tighten* guards below what
/// the un-statted path would grant.
pub fn suggested_limits_with_stats(
    formula: &Formula,
    stats: &crate::stats::DbStats,
    db_constants: impl IntoIterator<Item = Rational>,
) -> GuardLimits {
    let heuristic = suggested_limits_for_formula(formula, db_constants);
    let est = crate::planner::estimate_formula(formula, stats);
    let est_tuples = u64::try_from((est as u128).saturating_mul(1024))
        .unwrap_or(u64::MAX)
        .clamp(100_000, 50_000_000);
    let tuples = heuristic
        .max_tuples
        .map_or(est_tuples, |t| t.max(est_tuples));
    GuardLimits::none()
        .with_max_tuples(tuples)
        .with_max_atoms(tuples.saturating_mul(16))
}

/// Project a wall-clock completion time from a planner cost estimate
/// and a calibrated nanoseconds-per-unit rate (the server maintains an
/// EWMA of `elapsed_ns / estimate` over completed queries). A rate of
/// zero means "not yet calibrated" and projects zero — admission
/// control then cannot shed on cost, only on queue depth, which is the
/// safe cold-start default (no false rejections before data exists).
pub fn projected_eval_time(cost_units: f64, ns_per_unit: u64) -> std::time::Duration {
    if ns_per_unit == 0 || !cost_units.is_finite() || cost_units <= 0.0 {
        return std::time::Duration::ZERO;
    }
    let ns = (cost_units * ns_per_unit as f64).min(u64::MAX as f64) as u64;
    std::time::Duration::from_nanos(ns)
}

/// Bound a formula's alternation depth and predicted cells (DCO501/DCO502).
pub fn check_formula(formula: &Formula, budget: &CostBudget) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let alt = alternation_depth(formula);
    if alt > budget.max_quantifier_alternation {
        diags.push(Diagnostic::error(
            "DCO501",
            format!(
                "quantifier alternation depth {alt} exceeds the budget of {}",
                budget.max_quantifier_alternation
            ),
            Span::Unknown,
        ));
    }
    let cells = predicted_cells(constants_of_formula(formula).len(), all_vars(formula).len());
    if cells > budget.max_predicted_cells {
        diags.push(Diagnostic::error(
            "DCO502",
            format!(
                "predicted cell-decomposition size {cells} exceeds the budget \
                 of {}",
                budget.max_predicted_cells
            ),
            Span::Unknown,
        ));
    }
    diags
}

/// Bound a rule's predicted cells (rule bodies are quantifier-free, so only
/// DCO502 applies).
pub fn check_rule(rule: &Rule, budget: &CostBudget) -> Option<Diagnostic> {
    let mut vars: BTreeSet<String> = rule.head_vars.iter().cloned().collect();
    let mut consts: BTreeSet<Rational> = BTreeSet::new();
    for lit in &rule.body {
        vars.extend(lit.vars());
        match lit {
            Literal::Pos(_, args) | Literal::Neg(_, args) => {
                for a in args {
                    if let ArgTerm::Const(c) = a {
                        consts.insert(*c);
                    }
                }
            }
            Literal::Constraint(l, _, r) => {
                constants_of_expr(l, &mut consts);
                constants_of_expr(r, &mut consts);
            }
        }
    }
    let cells = predicted_cells(consts.len(), vars.len());
    if cells > budget.max_predicted_cells {
        return Some(Diagnostic::error(
            "DCO502",
            format!(
                "rule for `{}` predicts cell-decomposition size {cells}, over \
                 the budget of {}",
                rule.head, budget.max_predicted_cells
            ),
            Span::of_rule(rule),
        ));
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_logic::parse_formula;

    #[test]
    fn alternation_ignores_same_kind_blocks() {
        let f = parse_formula("exists x . exists y . x < y").unwrap();
        assert_eq!(alternation_depth(&f), 1);
        let g = parse_formula("exists x . forall y . exists z . x < z").unwrap();
        assert_eq!(alternation_depth(&g), 3);
    }

    #[test]
    fn negation_flips_quantifier_kind() {
        // ¬∃y inside ∃x is effectively ∃x∀y: depth 2.
        let f = parse_formula("exists x . !(exists y . y < x)").unwrap();
        assert_eq!(alternation_depth(&f), 2);
        // ¬∀y inside ∃x collapses to ∃x∃y: depth 1.
        let g = parse_formula("exists x . !(forall y . y < x)").unwrap();
        assert_eq!(alternation_depth(&g), 1);
    }

    #[test]
    fn predicted_cells_saturate() {
        assert_eq!(predicted_cells(1, 2), 9);
        assert_eq!(predicted_cells(0, 10), 1);
        assert_eq!(predicted_cells(u32::MAX as usize, 200), u128::MAX);
    }

    #[test]
    fn over_budget_is_rejected() {
        let f = parse_formula("exists x . forall y . exists z . x < z").unwrap();
        let tight = CostBudget {
            max_quantifier_alternation: 2,
            ..CostBudget::default()
        };
        let diags = check_formula(&f, &tight);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "DCO501");
        assert!(check_formula(&f, &CostBudget::default()).is_empty());
    }

    #[test]
    fn negated_subformulas_raise_budgets() {
        let pos = parse_formula("x < 1 & y < 2 & z < 3").unwrap();
        let neg = parse_formula("!(x < 1 & y < 2 & z < 3)").unwrap();
        assert_eq!(complement_charge(&pos), 0);
        assert!(complement_charge(&neg) >= 256);
        let lp = suggested_limits_for_formula(&pos, []);
        let ln = suggested_limits_for_formula(&neg, []);
        assert!(
            ln.max_tuples > lp.max_tuples,
            "complement must be charged: {:?} vs {:?}",
            ln.max_tuples,
            lp.max_tuples
        );
        // Forall pays the double complement of its ¬∃¬ rewrite.
        let fa = parse_formula("forall y . (x < 1 & y < 2 & z < 3)").unwrap();
        assert!(complement_charge(&fa) > complement_charge(&neg));
    }

    #[test]
    fn stats_limits_never_tighter_than_heuristic() {
        let f = parse_formula("e(x, y)").unwrap();
        let heuristic = suggested_limits_for_formula(&f, []);
        let statted = suggested_limits_with_stats(&f, &crate::stats::DbStats::default(), []);
        assert!(statted.max_tuples >= heuristic.max_tuples);
    }

    #[test]
    fn cell_budget_rejection() {
        // 3 constants, 3 variables: (2·3+1)³ = 343 cells.
        let f = parse_formula("x < 1 & y < 2 & z < 3").unwrap();
        let tight = CostBudget {
            max_predicted_cells: 100,
            ..CostBudget::default()
        };
        let diags = check_formula(&f, &tight);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "DCO502");
    }
}
