//! Static unsatisfiability of dense-order constraint conjunctions.
//!
//! The DUNLO feasibility criterion: a conjunction of order constraints over
//! a dense domain is unsatisfiable exactly when its constraint graph forces
//! a cycle `t₁ ≤ t₂ ≤ … ≤ t₁` containing a strict edge, or forces `t = u`
//! (a ≤-cycle) while also demanding `t ≠ u`. We build the graph — one node
//! per variable and per distinct rational constant, with the constants'
//! total order added as implicit strict edges — and test each strongly
//! connected component.
//!
//! The check is *conservative for conjunctions it fully models*: non-simple
//! sides (genuine linear arithmetic like `2x + y`) are skipped, so
//! [`OrderSystem::is_satisfiable`] returning `false` always means genuinely
//! unsatisfiable, while `true` may just mean "not provably unsat here".

use crate::diagnostic::{Diagnostic, Span};
use dco_core::prelude::{Rational, RawOp};
use dco_logic::datalog::{Literal, Rule};
use dco_logic::{Formula, LinExpr};
use std::collections::BTreeMap;

/// A term in the order-constraint graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Node {
    Var(String),
    Const(Rational),
}

/// An accumulating conjunction of simple dense-order constraints.
#[derive(Debug, Default, Clone)]
pub struct OrderSystem {
    nodes: Vec<Node>,
    ids: BTreeMap<Node, usize>,
    /// `(u, v, strict)`: u ≤ v, or u < v when strict.
    edges: Vec<(usize, usize, bool)>,
    /// Pairs required to be distinct.
    disequal: Vec<(usize, usize)>,
}

impl OrderSystem {
    /// An empty (trivially satisfiable) system.
    pub fn new() -> OrderSystem {
        OrderSystem::default()
    }

    fn node(&mut self, n: Node) -> usize {
        if let Some(&i) = self.ids.get(&n) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(n.clone());
        self.ids.insert(n, i);
        i
    }

    fn side(&mut self, e: &LinExpr) -> Option<usize> {
        if let Some(v) = e.as_simple_var() {
            Some(self.node(Node::Var(v.to_string())))
        } else {
            e.as_const().map(|c| self.node(Node::Const(c)))
        }
    }

    /// Add `l op r`. Returns `false` (constraint ignored) when either side
    /// is non-simple linear arithmetic, which this order-level test cannot
    /// model.
    pub fn add(&mut self, l: &LinExpr, op: RawOp, r: &LinExpr) -> bool {
        let (Some(u), Some(v)) = (self.side(l), self.side(r)) else {
            return false;
        };
        match op {
            RawOp::Lt => self.edges.push((u, v, true)),
            RawOp::Le => self.edges.push((u, v, false)),
            RawOp::Gt => self.edges.push((v, u, true)),
            RawOp::Ge => self.edges.push((v, u, false)),
            RawOp::Eq => {
                self.edges.push((u, v, false));
                self.edges.push((v, u, false));
            }
            RawOp::Ne => self.disequal.push((u, v)),
        }
        true
    }

    /// Apply the feasibility test.
    pub fn is_satisfiable(&self) -> bool {
        let n = self.nodes.len();
        if n == 0 {
            return true;
        }
        // The constants' total order: implicit strict edges both ways are
        // NOT equivalent — add c→d strict for c < d only.
        let mut edges = self.edges.clone();
        let consts: Vec<(usize, Rational)> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n {
                Node::Const(c) => Some((i, *c)),
                Node::Var(_) => None,
            })
            .collect();
        for (i, c) in &consts {
            for (j, d) in &consts {
                if c < d {
                    edges.push((*i, *j, true));
                }
            }
        }
        let comp = sccs(n, &edges);
        // A strict edge inside an SCC forces t < t.
        for &(u, v, strict) in &edges {
            if strict && comp[u] == comp[v] {
                return false;
            }
        }
        // A disequality inside an SCC contradicts the forced equality.
        for &(u, v) in &self.disequal {
            if comp[u] == comp[v] {
                return false;
            }
        }
        true
    }
}

/// Whether a formula, viewed as a conjunction, is provably unsatisfiable.
///
/// Flattens nested [`Formula::And`] nodes and feeds the comparison conjuncts
/// into an [`OrderSystem`]; other conjuncts (disjunctions, predicates,
/// quantifiers) are ignored, which only ever *weakens* the conjunction — so
/// `true` here really means the formula has no models.
pub fn conjunction_is_unsat(formula: &Formula) -> bool {
    let mut sys = OrderSystem::new();
    let mut any = false;
    let mut stack = vec![formula];
    while let Some(f) = stack.pop() {
        match f {
            Formula::False => return true,
            Formula::And(fs) => stack.extend(fs.iter()),
            Formula::Compare(l, op, r) => any |= sys.add(l, *op, r),
            _ => {}
        }
    }
    any && !sys.is_satisfiable()
}

/// Whether a rule body's constraint literals are jointly unsatisfiable
/// (the rule can never fire).
pub fn rule_body_is_unsat(rule: &Rule) -> bool {
    let mut sys = OrderSystem::new();
    for lit in &rule.body {
        if let Literal::Constraint(l, op, r) = lit {
            sys.add(l, *op, r);
        }
    }
    !sys.is_satisfiable()
}

/// Report dead subformulas (DCO402): the formula itself if it is an
/// unsatisfiable conjunction, and every statically-unsat disjunct of every
/// disjunction. These are warnings — the query still evaluates, just
/// provably to less than it says.
pub fn check_formula(formula: &Formula) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if conjunction_is_unsat(formula) {
        diags.push(Diagnostic::warning(
            "DCO402",
            "the formula is a statically unsatisfiable conjunction: the \
             result is always empty",
            Span::Unknown,
        ));
        return diags;
    }
    formula.walk(&mut |f| {
        let Formula::Or(fs) = f else { return };
        for (i, d) in fs.iter().enumerate() {
            if conjunction_is_unsat(d) {
                diags.push(Diagnostic::warning(
                    "DCO402",
                    format!(
                        "disjunct {} (`{d}`) is statically unsatisfiable and \
                         contributes nothing",
                        i + 1
                    ),
                    Span::Unknown,
                ));
            }
        }
    });
    diags
}

/// Strongly connected components of the edge list (Tarjan, iterative);
/// returns the component id of each node.
fn sccs(n: usize, edges: &[(usize, usize, bool)]) -> Vec<usize> {
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v, _) in edges {
        succs[u].push(v);
    }
    let mut comp = vec![usize::MAX; n];
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, pos)) = frames.last() {
            if index[v] == usize::MAX {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succs[v].get(pos) {
                frames.last_mut().expect("frame exists").1 += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    comp
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_core::prelude::rat;

    fn var(name: &str) -> LinExpr {
        LinExpr::var(name)
    }

    fn cst(n: i128, d: i128) -> LinExpr {
        LinExpr::cst(rat(n, d))
    }

    fn sat(constraints: &[(&LinExpr, RawOp, &LinExpr)]) -> bool {
        let mut sys = OrderSystem::new();
        for (l, op, r) in constraints {
            sys.add(l, *op, r);
        }
        sys.is_satisfiable()
    }

    #[test]
    fn strict_cycle_is_unsat() {
        let (x, y, z) = (var("x"), var("y"), var("z"));
        assert!(!sat(&[
            (&x, RawOp::Lt, &y),
            (&y, RawOp::Lt, &z),
            (&z, RawOp::Lt, &x),
        ]));
    }

    #[test]
    fn nonstrict_cycle_is_sat() {
        let (x, y) = (var("x"), var("y"));
        assert!(sat(&[(&x, RawOp::Le, &y), (&y, RawOp::Le, &x)]));
    }

    #[test]
    fn equality_cycle_with_disequality_is_unsat() {
        let (x, y) = (var("x"), var("y"));
        assert!(!sat(&[
            (&x, RawOp::Le, &y),
            (&y, RawOp::Le, &x),
            (&x, RawOp::Ne, &y),
        ]));
    }

    #[test]
    fn contradictory_bounds_via_constants() {
        // x < 1 ∧ x > 2 — the constants' order closes the strict cycle.
        let x = var("x");
        assert!(!sat(&[
            (&x, RawOp::Lt, &cst(1, 1)),
            (&x, RawOp::Gt, &cst(2, 1)),
        ]));
        // x < 2 ∧ x > 1 is fine (dense domain).
        assert!(sat(&[
            (&x, RawOp::Lt, &cst(2, 1)),
            (&x, RawOp::Gt, &cst(1, 1)),
        ]));
    }

    #[test]
    fn equal_bounds_strictness_matters() {
        let x = var("x");
        // 1 ≤ x ≤ 1 is x = 1; adding x ≠ 1 kills it.
        assert!(sat(&[
            (&cst(1, 1), RawOp::Le, &x),
            (&x, RawOp::Le, &cst(1, 1)),
        ]));
        assert!(!sat(&[
            (&cst(1, 1), RawOp::Le, &x),
            (&x, RawOp::Le, &cst(1, 1)),
            (&x, RawOp::Ne, &cst(1, 1)),
        ]));
        // 1 ≤ x < 1 is empty.
        assert!(!sat(&[
            (&cst(1, 1), RawOp::Le, &x),
            (&x, RawOp::Lt, &cst(1, 1)),
        ]));
    }

    #[test]
    fn constant_comparisons_evaluate() {
        assert!(!sat(&[(&cst(3, 1), RawOp::Lt, &cst(2, 1))]));
        assert!(sat(&[(&cst(2, 1), RawOp::Lt, &cst(3, 1))]));
        assert!(!sat(&[(&cst(1, 2), RawOp::Eq, &cst(1, 3))]));
        assert!(!sat(&[(&cst(1, 2), RawOp::Ne, &cst(1, 2))]));
    }

    #[test]
    fn self_comparison() {
        let x = var("x");
        assert!(!sat(&[(&x, RawOp::Lt, &x)]));
        assert!(!sat(&[(&x, RawOp::Ne, &x)]));
        assert!(sat(&[(&x, RawOp::Le, &x)]));
    }

    #[test]
    fn formula_conjunction_detection() {
        let f = dco_logic::parse_formula("x < y & y < z & z < x").unwrap();
        assert!(conjunction_is_unsat(&f));
        let g = dco_logic::parse_formula("x < y & y < z").unwrap();
        assert!(!conjunction_is_unsat(&g));
        // Non-comparison conjuncts weaken, never strengthen.
        let h = dco_logic::parse_formula("R(x) & x < y & y < x").unwrap();
        assert!(conjunction_is_unsat(&h));
    }

    #[test]
    fn rule_body_strict_cycle() {
        let p = dco_logic::parse_program("p(x, y) :- e(x, y), x < y, y < x.\n").unwrap();
        assert!(rule_body_is_unsat(&p.rules[0]));
        let q = dco_logic::parse_program("p(x, y) :- e(x, y), x < y.\n").unwrap();
        assert!(!rule_body_is_unsat(&q.rules[0]));
    }

    #[test]
    fn dead_disjunct_warned() {
        let f = dco_logic::parse_formula("(x < 1 & x > 2) | x = 0").unwrap();
        let diags = check_formula(&f);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "DCO402");
        assert!(diags[0].message.contains("disjunct 1"));
    }

    #[test]
    fn nonsimple_sides_are_ignored() {
        let two_x = LinExpr::var("x").scale(&rat(2, 1));
        let mut sys = OrderSystem::new();
        assert!(!sys.add(&two_x, RawOp::Lt, &LinExpr::var("x")));
        assert!(sys.is_satisfiable());
    }
}
