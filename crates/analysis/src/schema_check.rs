//! Schema conformance: predicate existence, arities, and the dense-order
//! sort restriction.

use crate::diagnostic::{Diagnostic, Severity, Span};
use dco_core::prelude::Schema;
use dco_logic::datalog::{Literal, Program};
use dco_logic::Formula;
use std::collections::{BTreeMap, BTreeSet};

fn dense_order_diag(require: bool, what: String, span: Span) -> Diagnostic {
    let severity = if require {
        Severity::Error
    } else {
        Severity::Warning
    };
    Diagnostic {
        severity,
        code: "DCO104",
        message: format!(
            "{what} is outside the dense-order fragment (a comparison side \
             uses genuine linear arithmetic)"
        ),
        span,
    }
}

/// Check a formula's predicates against a schema (when given) and flag
/// non-dense-order comparisons.
pub fn check_formula(
    formula: &Formula,
    schema: Option<&Schema>,
    require_dense_order: bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    formula.walk(&mut |f| match f {
        Formula::Pred(name, args) => {
            let Some(schema) = schema else { return };
            match schema.arity(name) {
                None => diags.push(Diagnostic::error(
                    "DCO101",
                    format!("unknown predicate `{name}`: not in the database schema"),
                    Span::Unknown,
                )),
                Some(declared) if declared as usize != args.len() => diags.push(Diagnostic::error(
                    "DCO102",
                    format!(
                        "predicate `{name}` used with {} argument(s) but \
                             declared with arity {declared}",
                        args.len()
                    ),
                    Span::Unknown,
                )),
                Some(_) => {}
            }
        }
        Formula::Compare(l, _, r) if !(l.is_simple() && r.is_simple()) => {
            diags.push(dense_order_diag(
                require_dense_order,
                format!("comparison `{f}`"),
                Span::Unknown,
            ));
        }
        _ => {}
    });
    diags
}

/// Check a program: EDB predicates against the schema, IDB arity
/// consistency across rules, and constraint sorts.
pub fn check_program(
    program: &Program,
    schema: Option<&Schema>,
    require_dense_order: bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let idb: BTreeSet<String> = program.idb_predicates().into_iter().collect();
    // First use of each predicate: (arity, line).
    let mut first_use: BTreeMap<String, (usize, usize)> = BTreeMap::new();

    let mut check_pred = |name: &str, arity: usize, line: usize, diags: &mut Vec<Diagnostic>| {
        let span = if line == 0 {
            Span::Unknown
        } else {
            Span::Line(line)
        };
        match first_use.get(name) {
            None => {
                first_use.insert(name.to_string(), (arity, line));
            }
            Some(&(seen, seen_line)) if seen != arity => diags.push(Diagnostic::error(
                "DCO103",
                format!(
                    "predicate `{name}` used with arity {arity} here but \
                         with arity {seen} at line {seen_line}"
                ),
                span,
            )),
            Some(_) => {}
        }
        if idb.contains(name) {
            return;
        }
        let Some(schema) = schema else { return };
        match schema.arity(name) {
            None => diags.push(Diagnostic::error(
                "DCO101",
                format!(
                    "unknown predicate `{name}`: not defined by a rule \
                             and not in the database schema"
                ),
                span,
            )),
            Some(declared) if declared as usize != arity => diags.push(Diagnostic::error(
                "DCO102",
                format!(
                    "predicate `{name}` used with {arity} argument(s) \
                             but the schema declares arity {declared}"
                ),
                span,
            )),
            Some(_) => {}
        }
    };

    for rule in &program.rules {
        check_pred(&rule.head, rule.head_vars.len(), rule.line, &mut diags);
        for lit in &rule.body {
            match lit {
                Literal::Pos(name, args) | Literal::Neg(name, args) => {
                    check_pred(name, args.len(), rule.line, &mut diags);
                }
                Literal::Constraint(l, _, r) => {
                    if !(l.is_simple() && r.is_simple()) {
                        diags.push(dense_order_diag(
                            require_dense_order,
                            format!("constraint `{lit}`"),
                            Span::of_rule(rule),
                        ));
                    }
                }
            }
        }
    }
    diags
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_logic::datalog::parse_program;
    use dco_logic::parse_formula;

    fn schema() -> Schema {
        Schema::new().with("e", 2).with("v", 1)
    }

    #[test]
    fn conforming_formula_is_clean() {
        let f = parse_formula("exists y . (e(x, y) & x < y)").unwrap();
        assert!(check_formula(&f, Some(&schema()), true).is_empty());
    }

    #[test]
    fn unknown_predicate_in_formula() {
        let f = parse_formula("r(x, y)").unwrap();
        let diags = check_formula(&f, Some(&schema()), true);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "DCO101");
    }

    #[test]
    fn formula_arity_mismatch() {
        let f = parse_formula("e(x, y, z)").unwrap();
        let diags = check_formula(&f, Some(&schema()), true);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "DCO102");
        assert!(diags[0].message.contains("arity 2"));
    }

    #[test]
    fn no_schema_means_no_predicate_checks() {
        let f = parse_formula("mystery(x)").unwrap();
        assert!(check_formula(&f, None, true).is_empty());
    }

    #[test]
    fn program_edb_arity_mismatch_carries_line() {
        let p = parse_program(
            "p(x) :- v(x).\n\
             q(x) :- e(x, x, x).\n",
        )
        .unwrap();
        let diags = check_program(&p, Some(&schema()), true);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "DCO102");
        assert_eq!(diags[0].span, Span::Line(2));
    }

    #[test]
    fn program_unknown_edb() {
        let p = parse_program("p(x) :- w(x).\n").unwrap();
        let diags = check_program(&p, Some(&schema()), true);
        assert_eq!(diags[0].code, "DCO101");
    }
}
