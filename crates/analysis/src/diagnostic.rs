//! Diagnostics: the single currency every analysis pass reports in.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note (never blocks evaluation).
    Info,
    /// Suspicious but evaluable (dead code, likely mistakes).
    Warning,
    /// The query/program is rejected by `checked_*` entry points.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where in the source a finding points.
///
/// Formulas are parsed from a single line, so their parser reports byte
/// offsets; Datalog programs are line-oriented, so rules carry 1-based line
/// numbers ([`dco_logic::datalog::Rule::line`]). Programmatically built
/// syntax has no location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// Byte offset into a formula source string.
    Byte(usize),
    /// 1-based line in a Datalog program source.
    Line(usize),
    /// No source location available.
    Unknown,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Byte(b) => write!(f, "byte {b}"),
            Span::Line(l) => write!(f, "line {l}"),
            Span::Unknown => write!(f, "unknown location"),
        }
    }
}

impl Span {
    /// Span for a rule: its source line if known.
    pub fn of_rule(rule: &dco_logic::datalog::Rule) -> Span {
        if rule.line == 0 {
            Span::Unknown
        } else {
            Span::Line(rule.line)
        }
    }
}

/// One finding from the analyzer.
///
/// Diagnostic codes are stable strings, grouped by pass:
///
/// | range  | pass                          |
/// |--------|-------------------------------|
/// | DCO1xx | schema / arity / sort checks  |
/// | DCO2xx | safety & range restriction    |
/// | DCO3xx | stratifiability               |
/// | DCO4xx | static unsatisfiability       |
/// | DCO5xx | cost budget                   |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `"DCO102"`).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Source location, when known.
    pub span: Span,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            span,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message: message.into(),
            span,
        }
    }

    /// An info-severity diagnostic.
    pub fn info(code: &'static str, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Info,
            code,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity, self.code, self.message, self.span
        )
    }
}

/// Whether any diagnostic is error severity (the `checked_*` gate).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_shape() {
        let d = Diagnostic::error("DCO102", "arity mismatch for R", Span::Line(4));
        assert_eq!(
            d.to_string(),
            "error[DCO102]: arity mismatch for R (line 4)"
        );
        let w = Diagnostic::warning("DCO401", "dead rule", Span::Unknown);
        assert!(w.to_string().starts_with("warning[DCO401]"));
    }

    #[test]
    fn error_gate() {
        let w = Diagnostic::warning("DCO401", "dead rule", Span::Unknown);
        assert!(!has_errors(std::slice::from_ref(&w)));
        let e = Diagnostic::error("DCO101", "unknown predicate", Span::Byte(2));
        assert!(has_errors(&[w, e]));
    }
}
