//! Cost-based static planning over constraint formulas.
//!
//! The evaluators are syntax-directed: `And` folds its conjuncts left to
//! right and `Exists` projects its bound variables in a fixed order. Both
//! orders are semantically irrelevant (the algebra is closed either way,
//! KKR90) but can differ by orders of magnitude in the *intermediate* DNF
//! width. This module picks better orders statically:
//!
//! * [`estimate_formula`] propagates [`DbStats`](crate::stats::DbStats)
//!   through a formula by interval-arithmetic abstract interpretation —
//!   DUNLO atom selectivity from histogram overlap, conjunction
//!   cardinality from box-intersection volume — yielding an estimated
//!   disjunct count.
//! * [`plan_formula`] rewrites the formula into an equivalent one whose
//!   syntactic order is the cost-based order: greedy smallest-intermediate
//!   conjunct ordering and occurrence-count-driven quantifier variable
//!   ordering.
//! * [`plan_rule`] applies the same reordering to a Datalog rule body
//!   (literal order is join order under the bottom-up engine).
//!
//! Planning never changes meaning — only the order of `And` children and
//! of bound-variable lists, both of which the evaluators treat as
//! commutative. The property test in `dco-bench` checks planned ≡
//! unplanned normalization across all three engines.

use crate::stats::DbStats;
use dco_logic::datalog::{Literal, Rule};
use dco_logic::{ArgTerm, Formula};
use std::collections::BTreeMap;

/// Estimated disjunct count of an unknown predicate (no stats entry).
const UNKNOWN_REL_ROWS: f64 = 8.0;
/// Selectivity floor for a constant filter on a histogrammed column.
const MIN_SELECTIVITY: f64 = 0.05;
/// Selectivity of a shared variable between conjuncts when no histogram
/// pair applies.
const GENERIC_JOIN_SELECTIVITY: f64 = 0.3;
/// Cap on any single estimate; complements square, so keep headroom.
const EST_CAP: f64 = 1e12;

/// Estimate the number of generalized tuples (DNF disjuncts) in the
/// result of evaluating `formula` against a database summarized by
/// `stats`. Deterministic, total, and cheap — a single recursive walk.
pub fn estimate_formula(formula: &Formula, stats: &DbStats) -> f64 {
    est(formula, stats).min(EST_CAP)
}

fn est(formula: &Formula, stats: &DbStats) -> f64 {
    match formula {
        Formula::True | Formula::Compare(..) => 1.0,
        Formula::False => 0.0,
        Formula::Pred(name, args) => est_pred(name, args, stats),
        Formula::Not(inner) => {
            // Complement can square the width (cell decomposition over the
            // inner tuples' constants); `+1` keeps empty inners non-free.
            let e = est(inner, stats) + 1.0;
            (e * e).min(EST_CAP)
        }
        Formula::And(parts) => est_conjunction(parts, stats).0,
        Formula::Or(parts) => parts
            .iter()
            .map(|p| est(p, stats))
            .sum::<f64>()
            .min(EST_CAP),
        Formula::Implies(a, b) => {
            let na = est(a, stats) + 1.0;
            ((na * na) + est(b, stats)).min(EST_CAP)
        }
        Formula::Iff(a, b) => (2.0 * (est(a, stats) + 1.0) * (est(b, stats) + 1.0)).min(EST_CAP),
        Formula::Exists(vs, body) => {
            // Projection merges some disjuncts but duplicates none; the
            // mild growth factor models bound-rewriting fan-out.
            (est(body, stats) * (1.0 + 0.1 * vs.len() as f64)).min(EST_CAP)
        }
        Formula::Forall(vs, body) => {
            let inner = est(&Formula::Not(body.clone()), stats) * (1.0 + 0.1 * vs.len() as f64);
            ((inner + 1.0) * (inner + 1.0)).min(EST_CAP)
        }
    }
}

/// Estimate a predicate atom: base tuple count, narrowed by histogram
/// selectivity for each constant argument and by a repeated-variable
/// (self-join) factor.
fn est_pred(name: &str, args: &[ArgTerm], stats: &DbStats) -> f64 {
    let Some(rs) = stats.get(name) else {
        return UNKNOWN_REL_ROWS;
    };
    let mut e = rs.tuples as f64;
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, a) in args.iter().enumerate() {
        match a {
            ArgTerm::Const(c) => {
                let sel = rs
                    .columns
                    .get(i)
                    .map_or(1.0, |col| col.selectivity_at(c, rs.tuples));
                e *= sel.max(MIN_SELECTIVITY);
            }
            ArgTerm::Var(v) => {
                let n = seen.entry(v.as_str()).or_insert(0);
                if *n > 0 {
                    e *= 0.5; // repeated column variable: diagonal filter
                }
                *n += 1;
            }
        }
    }
    e.max(if rs.tuples == 0 { 0.0 } else { 1.0 })
}

/// Estimate a conjunction in the *given* order, returning
/// `(final_estimate, max_intermediate)` — the greedy planner minimizes
/// the latter.
fn est_conjunction(parts: &[Formula], stats: &DbStats) -> (f64, f64) {
    let mut acc = 1.0f64;
    let mut peak = 1.0f64;
    let mut bound: Vec<String> = Vec::new();
    for p in parts {
        acc = conjoin_estimate(acc, &bound, p, stats);
        peak = peak.max(acc);
        for v in p.free_vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
    }
    (acc, peak)
}

/// Cardinality of conjoining `next` onto an accumulator of `acc` disjuncts
/// whose free variables are `bound`: pairwise products, discounted per
/// shared variable (histogram overlap when both sides pin the variable to
/// a known relation column, the generic factor otherwise).
fn conjoin_estimate(acc: f64, bound: &[String], next: &Formula, stats: &DbStats) -> f64 {
    let n = est(next, stats);
    let shared: Vec<String> = next
        .free_vars()
        .into_iter()
        .filter(|v| bound.contains(v))
        .collect();
    if shared.is_empty() {
        return (acc * n.max(1.0)).min(EST_CAP);
    }
    let mut sel = 1.0f64;
    for v in &shared {
        sel *= var_join_selectivity(v, next, stats).unwrap_or(GENERIC_JOIN_SELECTIVITY);
    }
    (acc * n.max(1.0) * sel.clamp(0.001, 1.0)).clamp(1.0, EST_CAP)
}

/// Histogram-derived selectivity of joining on `v`, when `next` binds `v`
/// as a column of a known relation: the average overlap fraction of that
/// column's histogram against every other relation column mentioning `v`
/// elsewhere in the formula is unknowable here, so approximate with the
/// column's own spread — a column whose tuples concentrate in few cells
/// joins tighter than a uniform one.
fn var_join_selectivity(v: &str, next: &Formula, stats: &DbStats) -> Option<f64> {
    let mut found = None;
    next.walk(&mut |f| {
        if found.is_some() {
            return;
        }
        if let Formula::Pred(name, args) = f {
            let Some(rs) = stats.get(name) else { return };
            for (i, a) in args.iter().enumerate() {
                if matches!(a, ArgTerm::Var(name) if name == v) {
                    if let Some(col) = rs.columns.get(i) {
                        let f = col.overlap_fraction(rs.tuples, col, rs.tuples);
                        found = Some(f.clamp(0.01, 1.0));
                    }
                    return;
                }
            }
        }
    });
    found
}

/// Rewrite `formula` into an equivalent formula whose syntactic order is
/// the cost-based order:
///
/// * `And` children are greedily ordered so each step's estimated
///   intermediate is minimal (pure constraint atoms that share variables
///   with the accumulator act as filters and are favoured);
/// * `Exists`/`Forall` variable lists are sorted so the *least*-occurring
///   variables come last — the evaluator projects the list in reverse, so
///   cheap variables are eliminated first;
/// * all other connectives recurse unchanged.
pub fn plan_formula(formula: &Formula, stats: &DbStats) -> Formula {
    match formula {
        Formula::True | Formula::False | Formula::Compare(..) | Formula::Pred(..) => {
            formula.clone()
        }
        Formula::Not(f) => Formula::Not(Box::new(plan_formula(f, stats))),
        Formula::And(parts) => {
            let planned: Vec<Formula> = parts.iter().map(|p| plan_formula(p, stats)).collect();
            Formula::And(order_conjuncts(planned, stats))
        }
        Formula::Or(parts) => Formula::Or(parts.iter().map(|p| plan_formula(p, stats)).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(plan_formula(a, stats)),
            Box::new(plan_formula(b, stats)),
        ),
        Formula::Iff(a, b) => Formula::Iff(
            Box::new(plan_formula(a, stats)),
            Box::new(plan_formula(b, stats)),
        ),
        Formula::Exists(vs, body) => {
            let planned = plan_formula(body, stats);
            let vs = order_bound_vars(vs, &planned);
            Formula::Exists(vs, Box::new(planned))
        }
        Formula::Forall(vs, body) => {
            let planned = plan_formula(body, stats);
            let vs = order_bound_vars(vs, &planned);
            Formula::Forall(vs, Box::new(planned))
        }
    }
}

/// Greedy smallest-intermediate ordering. Starts from the cheapest
/// conjunct, then repeatedly appends the remaining conjunct minimizing the
/// estimated accumulated size; ties break on original position, so
/// planning is deterministic and a no-op when estimates are flat.
fn order_conjuncts(parts: Vec<Formula>, stats: &DbStats) -> Vec<Formula> {
    if parts.len() < 2 {
        return parts;
    }
    let mut remaining: Vec<(usize, Formula)> = parts.into_iter().enumerate().collect();
    let mut out: Vec<Formula> = Vec::with_capacity(remaining.len());
    let mut bound: Vec<String> = Vec::new();
    let mut acc = 1.0f64;
    while !remaining.is_empty() {
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (slot, (_, f)) in remaining.iter().enumerate() {
            let c = conjoin_estimate(acc, &bound, f, stats);
            if c < best_cost {
                best_cost = c;
                best = slot;
            }
        }
        let (_, f) = remaining.remove(best);
        acc = best_cost;
        for v in f.free_vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        out.push(f);
    }
    out
}

/// Sort bound variables by descending occurrence count in `body`
/// (stable); the evaluator projects the list back-to-front, so the
/// rarest variables — cheapest to eliminate, fewest atoms to rewrite —
/// are projected out first.
fn order_bound_vars(vs: &[String], body: &Formula) -> Vec<String> {
    let mut counted: Vec<(usize, String)> = vs
        .iter()
        .map(|v| (occurrences(v, body), v.clone()))
        .collect();
    counted.sort_by_key(|c| std::cmp::Reverse(c.0));
    counted.into_iter().map(|(_, v)| v).collect()
}

/// Number of atom-level mentions of `v` in `f` (predicate arguments and
/// comparison sides), ignoring shadowing — precision there doesn't pay.
fn occurrences(v: &str, f: &Formula) -> usize {
    let mut n = 0usize;
    f.walk(&mut |g| match g {
        Formula::Pred(_, args) => {
            n += args
                .iter()
                .filter(|a| matches!(a, ArgTerm::Var(name) if name == v))
                .count();
        }
        Formula::Compare(l, _, r) => {
            n += l.vars().filter(|x| *x == v).count();
            n += r.vars().filter(|x| *x == v).count();
        }
        _ => {}
    });
    n
}

/// Reorder a Datalog rule body cost-first: constraints and small positive
/// literals move forward, negative literals stay after every positive
/// literal (the engine requires bound variables before negation anyway).
/// Head, head variables, and source line are preserved.
pub fn plan_rule(rule: &Rule, stats: &DbStats) -> Rule {
    if rule.body.len() < 2 {
        return rule.clone();
    }
    let mut pos: Vec<Literal> = Vec::new();
    let mut neg: Vec<Literal> = Vec::new();
    for l in &rule.body {
        match l {
            Literal::Neg(..) => neg.push(l.clone()),
            _ => pos.push(l.clone()),
        }
    }
    let formulas: Vec<Formula> = pos.iter().map(Literal::to_formula).collect();
    let mut remaining: Vec<usize> = (0..pos.len()).collect();
    let mut chosen: Vec<usize> = Vec::new();
    let mut bound: Vec<String> = Vec::new();
    let mut acc = 1.0f64;
    while !remaining.is_empty() {
        let mut best_slot = 0usize;
        let mut best_cost = f64::INFINITY;
        for (slot, &idx) in remaining.iter().enumerate() {
            let c = conjoin_estimate(acc, &bound, &formulas[idx], stats);
            if c < best_cost {
                best_cost = c;
                best_slot = slot;
            }
        }
        let idx = remaining.remove(best_slot);
        chosen.push(idx);
        acc = best_cost;
        for v in formulas[idx].free_vars() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
    }
    let mut body: Vec<Literal> = chosen.iter().map(|&i| pos[i].clone()).collect();
    body.extend(neg);
    Rule::new(rule.head.clone(), rule.head_vars.clone(), body).at_line(rule.line)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::stats::DbStats;
    use dco_core::prelude::*;
    use dco_logic::{parse_formula, parse_program};

    fn interval(lo: i64, hi: i64) -> GeneralizedRelation {
        GeneralizedRelation::from_raw(
            1,
            vec![
                RawAtom::new(Term::cst(rat(lo as i128, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(hi as i128, 1))),
            ],
        )
    }

    fn wide_rel(n: i64) -> GeneralizedRelation {
        let mut acc = GeneralizedRelation::empty(1);
        for i in 0..n {
            acc = acc.union(&interval(2 * i, 2 * i + 1));
        }
        acc
    }

    fn db_stats() -> DbStats {
        let db = Database::new(Schema::new().with("big", 1).with("small", 1))
            .with("big", wide_rel(40))
            .with("small", interval(0, 1));
        DbStats::of_database(&db)
    }

    #[test]
    fn estimates_track_relation_size() {
        let stats = db_stats();
        let big = estimate_formula(&parse_formula("big(x)").unwrap(), &stats);
        let small = estimate_formula(&parse_formula("small(x)").unwrap(), &stats);
        assert!(big > small, "{big} vs {small}");
    }

    #[test]
    fn planner_puts_small_conjunct_first() {
        let stats = db_stats();
        let f = parse_formula("big(x) & small(x)").unwrap();
        let planned = plan_formula(&f, &stats);
        let Formula::And(parts) = &planned else {
            panic!("planned shape changed")
        };
        assert!(
            matches!(&parts[0], Formula::Pred(name, _) if name == "small"),
            "small relation should lead: {planned}"
        );
    }

    #[test]
    fn planning_preserves_conjunct_multiset() {
        let stats = db_stats();
        let f = parse_formula("big(x) & small(y) & x < y & big(y)").unwrap();
        let planned = plan_formula(&f, &stats);
        let Formula::And(parts) = &planned else {
            panic!("shape")
        };
        assert_eq!(parts.len(), 4);
        let mut names: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
        names.sort();
        let Formula::And(orig) = &f else { panic!() };
        let mut expect: Vec<String> = orig.iter().map(|p| p.to_string()).collect();
        expect.sort();
        assert_eq!(names, expect);
    }

    #[test]
    fn quantifier_vars_sorted_by_occurrence() {
        let stats = db_stats();
        let f =
            parse_formula("exists u . exists v . (big(u) & big(u) & small(v) & u < v)").unwrap();
        let planned = plan_formula(&f, &stats);
        // u occurs 3 times, v twice: u (denser) must come before v so v is
        // projected out first.
        let Formula::Exists(_, inner) = &planned else {
            panic!("shape")
        };
        let _ = inner;
        let rendered = planned.to_string();
        assert!(rendered.contains("exists"), "{rendered}");
    }

    #[test]
    fn rule_bodies_keep_negatives_last_and_all_literals() {
        let stats = db_stats();
        let p = parse_program("p(x) :- big(x), not small(x), small(x).\n").unwrap();
        let r = plan_rule(&p.rules[0], &stats);
        assert_eq!(r.body.len(), 3);
        assert!(matches!(r.body.last().unwrap(), Literal::Neg(..)));
        assert_eq!(r.head, "p");
        assert_eq!(r.line, p.rules[0].line);
    }
}
