//! Safety (range restriction) for Datalog¬ rules.
//!
//! A rule is *safe* when every head variable and every variable of a negated
//! literal is **range restricted**: bound by a positive body literal, or
//! connected to one (or to a constant) by a chain of equality constraints.
//! Unsafe rules have no finite representation — `p(x) :- not q(x)` would
//! assert `p` of every rational — so the analyzer reports them as errors.

use crate::diagnostic::{Diagnostic, Span};
use dco_core::prelude::RawOp;
use dco_logic::datalog::{Literal, Program, Rule};
use dco_logic::ArgTerm;
use std::collections::BTreeSet;

/// Variables of a rule bound by a positive literal or by an equality chain
/// reaching one (or a constant).
pub fn range_restricted_vars(rule: &Rule) -> BTreeSet<String> {
    let mut bound: BTreeSet<String> = BTreeSet::new();
    for lit in &rule.body {
        match lit {
            Literal::Pos(_, args) => {
                for a in args {
                    if let ArgTerm::Var(v) = a {
                        bound.insert(v.clone());
                    }
                }
            }
            // An equality to a constant pins the variable directly.
            Literal::Constraint(l, RawOp::Eq, r) => {
                if let (Some(v), Some(_)) = (l.as_simple_var(), r.as_const()) {
                    bound.insert(v.to_string());
                }
                if let (Some(_), Some(v)) = (l.as_const(), r.as_simple_var()) {
                    bound.insert(v.to_string());
                }
            }
            _ => {}
        }
    }
    // Propagate bindings across var = var equalities to a fixpoint.
    loop {
        let mut changed = false;
        for lit in &rule.body {
            let Literal::Constraint(l, RawOp::Eq, r) = lit else {
                continue;
            };
            let (Some(a), Some(b)) = (l.as_simple_var(), r.as_simple_var()) else {
                continue;
            };
            if bound.contains(a) && bound.insert(b.to_string()) {
                changed = true;
            }
            if bound.contains(b) && bound.insert(a.to_string()) {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    bound
}

/// Report every unsafe variable of every rule (DCO201 head, DCO202 negated).
pub fn check_program(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for rule in &program.rules {
        let bound = range_restricted_vars(rule);
        let span = Span::of_rule(rule);
        for v in &rule.head_vars {
            if !bound.contains(v) {
                diags.push(Diagnostic::error(
                    "DCO201",
                    format!(
                        "head variable `{v}` of `{}` is not range-restricted: \
                         it must appear in a positive body literal or be \
                         equated to one by a constraint chain",
                        rule.head
                    ),
                    span,
                ));
            }
        }
        for lit in &rule.body {
            let Literal::Neg(name, args) = lit else {
                continue;
            };
            for a in args {
                if let ArgTerm::Var(v) = a {
                    if !bound.contains(v) {
                        diags.push(Diagnostic::error(
                            "DCO202",
                            format!(
                                "variable `{v}` of negated literal `not {name}(…)` \
                                 in the rule for `{}` is not range-restricted",
                                rule.head
                            ),
                            span,
                        ));
                    }
                }
            }
        }
    }
    diags
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_logic::datalog::parse_program;

    fn codes(src: &str) -> Vec<&'static str> {
        let p = parse_program(src).unwrap();
        check_program(&p).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn safe_rules_are_clean() {
        assert!(codes(
            "tc(x, y) :- e(x, y).\n\
             tc(x, y) :- tc(x, z), e(z, y).\n"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_negated_var_reported() {
        // y occurs only under negation.
        let p = parse_program("p(x) :- v(x), not e(x, y).\n").unwrap();
        let diags = check_program(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "DCO202");
        assert_eq!(diags[0].span, Span::Line(1));
        assert!(diags[0].message.contains('y'));
    }

    #[test]
    fn equality_chain_binds() {
        // z is bound transitively: z = y, y = x, x positive.
        assert!(codes("p(z) :- v(x), y = x, z = y.\n").is_empty());
        // constant equality binds directly.
        assert!(codes("q(c) :- v(x), c = 3.\n").is_empty());
    }

    #[test]
    fn inequality_does_not_bind() {
        let diags = codes("p(y) :- v(x), y < x.\n");
        assert_eq!(diags, vec!["DCO201"]);
    }
}
