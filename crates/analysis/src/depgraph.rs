//! The predicate dependency graph of a Datalog¬ program.
//!
//! One edge `h → b` per body literal: the head predicate *depends on* the
//! body predicate, positively or negatively. Stratified evaluation needs
//! every negative edge to cross strictly downward between strata, which is
//! possible exactly when no cycle of the graph contains a negative edge.
//! `dco-datalog`'s stratifier consumes [`DepGraph::strata`]; the analyzer
//! reports negative cycles as full paths.

use dco_logic::datalog::{Literal, Program};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Whether a dependency passes through negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// Plain body atom.
    Positive,
    /// Negated body atom.
    Negative,
}

/// Predicate dependency graph over the IDB predicates of a program.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// `head → (body predicate, polarity)`, deduplicated, IDB targets only.
    edges: BTreeMap<String, Vec<(String, Polarity)>>,
    idb: BTreeSet<String>,
}

impl DepGraph {
    /// Build the graph from a program. Edges to EDB predicates are dropped:
    /// extensional relations are fixed inputs and cannot participate in a
    /// recursion cycle.
    pub fn of_program(program: &Program) -> DepGraph {
        let idb: BTreeSet<String> = program.idb_predicates().into_iter().collect();
        let mut edges: BTreeMap<String, Vec<(String, Polarity)>> =
            idb.iter().map(|p| (p.clone(), Vec::new())).collect();
        for rule in &program.rules {
            for lit in &rule.body {
                let (name, polarity) = match lit {
                    Literal::Pos(n, _) => (n, Polarity::Positive),
                    Literal::Neg(n, _) => (n, Polarity::Negative),
                    Literal::Constraint(..) => continue,
                };
                if !idb.contains(name) {
                    continue;
                }
                let deps = edges.entry(rule.head.clone()).or_default();
                let edge = (name.clone(), polarity);
                if !deps.contains(&edge) {
                    deps.push(edge);
                }
            }
        }
        DepGraph { edges, idb }
    }

    /// The IDB predicates (graph nodes).
    pub fn predicates(&self) -> impl Iterator<Item = &str> {
        self.idb.iter().map(|s| s.as_str())
    }

    /// Direct dependencies of a predicate.
    pub fn dependencies(&self, pred: &str) -> &[(String, Polarity)] {
        self.edges.get(pred).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Strongly connected components (Tarjan, iterative).
    fn sccs(&self) -> BTreeMap<&str, usize> {
        let nodes: Vec<&str> = self.idb.iter().map(|s| s.as_str()).collect();
        let index_of: BTreeMap<&str, usize> =
            nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let succs: Vec<Vec<usize>> = nodes
            .iter()
            .map(|n| {
                self.dependencies(n)
                    .iter()
                    .map(|(d, _)| index_of[d.as_str()])
                    .collect()
            })
            .collect();

        let n = nodes.len();
        let mut comp = vec![usize::MAX; n];
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut next_comp = 0usize;

        // Iterative Tarjan: (node, next-successor-position) call frames.
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&(v, pos)) = frames.last() {
                if index[v] == usize::MAX {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = succs[v].get(pos) {
                    frames.last_mut().expect("frame exists").1 += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp[w] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
        nodes.iter().map(|n| (*n, comp[index_of[n]])).collect()
    }

    /// A cycle through a negative edge, if one exists, as the dependency
    /// path `[p, q, …, p]` (first and last elements equal).
    pub fn negative_cycle(&self) -> Option<Vec<String>> {
        let comp = self.sccs();
        for (head, deps) in &self.edges {
            for (dep, polarity) in deps {
                if *polarity == Polarity::Negative && comp[head.as_str()] == comp[dep.as_str()] {
                    return Some(self.cycle_through(head, dep, &comp));
                }
            }
        }
        None
    }

    /// Reconstruct `head → dep → … → head` where the `dep → … → head` tail
    /// is a shortest dependency path inside the shared SCC.
    fn cycle_through(&self, head: &str, dep: &str, comp: &BTreeMap<&str, usize>) -> Vec<String> {
        let scc = comp[head];
        if head == dep {
            return vec![head.to_string(), head.to_string()];
        }
        // BFS from dep back to head along intra-SCC edges.
        let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        queue.push_back(dep);
        'bfs: while let Some(v) = queue.pop_front() {
            for (w, _) in self.dependencies(v) {
                let w = w.as_str();
                if comp[w] != scc || prev.contains_key(w) || w == dep {
                    continue;
                }
                prev.insert(w, v);
                if w == head {
                    break 'bfs;
                }
                queue.push_back(w);
            }
        }
        let mut tail = vec![head];
        let mut cur = head;
        while cur != dep {
            cur = prev[cur];
            tail.push(cur);
        }
        tail.reverse(); // dep, …, head
        let mut cycle = vec![head.to_string()];
        cycle.extend(tail.into_iter().map(|s| s.to_string()));
        cycle
    }

    /// Assign strata: positive edges may stay level, negative edges must
    /// strictly descend (the dependency is evaluated in an earlier stratum).
    /// Returns the stratum of each IDB predicate, or the offending cycle.
    pub fn strata(&self) -> Result<BTreeMap<String, usize>, Vec<String>> {
        if let Some(cycle) = self.negative_cycle() {
            return Err(cycle);
        }
        let mut stratum: BTreeMap<String, usize> =
            self.idb.iter().map(|p| (p.clone(), 0)).collect();
        // No negative cycle ⇒ relaxation converges within |idb| rounds.
        for _ in 0..=self.idb.len() {
            let mut changed = false;
            for (head, deps) in &self.edges {
                let mut need = stratum[head];
                for (dep, polarity) in deps {
                    let d = stratum[dep];
                    need = need.max(match polarity {
                        Polarity::Positive => d,
                        Polarity::Negative => d + 1,
                    });
                }
                if need > stratum[head] {
                    stratum.insert(head.clone(), need);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Ok(stratum)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_logic::datalog::parse_program;

    #[test]
    fn tc_is_one_stratum() {
        let p = parse_program(
            "tc(x, y) :- e(x, y).\n\
             tc(x, y) :- tc(x, z), e(z, y).\n",
        )
        .unwrap();
        let g = DepGraph::of_program(&p);
        assert!(g.negative_cycle().is_none());
        assert_eq!(g.strata().unwrap()["tc"], 0);
    }

    #[test]
    fn negation_pushes_up_a_stratum() {
        let p = parse_program(
            "r(x, y) :- e(x, y).\n\
             r(x, y) :- r(x, z), e(z, y).\n\
             unreach(x, y) :- v(x), v(y), not r(x, y).\n",
        )
        .unwrap();
        let s = DepGraph::of_program(&p).strata().unwrap();
        assert_eq!(s["r"], 0);
        assert_eq!(s["unreach"], 1);
    }

    #[test]
    fn mutual_negation_cycle_path() {
        let p = parse_program(
            "a(x) :- v(x), not b(x).\n\
             b(x) :- v(x), not a(x).\n",
        )
        .unwrap();
        let cycle = DepGraph::of_program(&p).negative_cycle().unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 3, "a -> b -> a, got {cycle:?}");
        assert!(cycle.contains(&"a".to_string()) && cycle.contains(&"b".to_string()));
        assert!(DepGraph::of_program(&p).strata().is_err());
    }

    #[test]
    fn self_negation_cycle() {
        let p = parse_program("p(x) :- v(x), not p(x).\n").unwrap();
        let cycle = DepGraph::of_program(&p).negative_cycle().unwrap();
        assert_eq!(cycle, vec!["p".to_string(), "p".to_string()]);
    }

    #[test]
    fn long_cycle_reports_full_path() {
        // a -> b -> c -> a with one negative edge: the cycle must name all
        // three predicates.
        let p = parse_program(
            "a(x) :- b(x).\n\
             b(x) :- c(x).\n\
             c(x) :- v(x), not a(x).\n",
        )
        .unwrap();
        let cycle = DepGraph::of_program(&p).negative_cycle().unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert_eq!(cycle.len(), 4, "c -> a -> b -> c, got {cycle:?}");
        for pred in ["a", "b", "c"] {
            assert!(
                cycle.contains(&pred.to_string()),
                "missing {pred} in {cycle:?}"
            );
        }
    }

    #[test]
    fn edb_negation_is_stratifiable() {
        let p = parse_program("q(x) :- v(x), not e(x, x).\n").unwrap();
        let g = DepGraph::of_program(&p);
        assert!(g.negative_cycle().is_none());
        assert_eq!(g.strata().unwrap()["q"], 0);
    }
}
