//! # dco-analysis — static query analysis for dense-order constraint databases
//!
//! A multi-pass analyzer that runs *before* evaluation and reports
//! everything it finds as [`Diagnostic`]s instead of panicking or failing
//! mid-evaluation. Five passes:
//!
//! 1. **Schema conformance** ([`schema_check`]) — predicates exist, arities
//!    match the [`Schema`] and are consistent across a program, comparisons
//!    stay in the dense-order fragment (DCO101–DCO104).
//! 2. **Safety** ([`safety`]) — every head variable and negated-literal
//!    variable of a Datalog¬ rule is range-restricted (DCO201, DCO202).
//! 3. **Stratifiability** ([`depgraph`]) — the predicate dependency graph
//!    has no cycle through negation; violations report the full cycle path
//!    (DCO301).
//! 4. **Static unsatisfiability** ([`unsat`]) — rule bodies and conjunctions
//!    whose order constraints are infeasible over a dense domain (strict
//!    cycles, contradictory bounds) are flagged before any fixpoint work
//!    (DCO401, DCO402).
//! 5. **Cost bounding** ([`cost`]) — quantifier alternation depth and
//!    predicted cell-decomposition size are checked against a
//!    [`CostBudget`] (DCO501, DCO502).
//!
//! The `dco-fo` and `dco-datalog` evaluators expose `checked_*` entry
//! points that run these passes and refuse to evaluate when any
//! error-severity diagnostic is present.
//!
//! ```
//! use dco_analysis::{analyze_program, has_errors, AnalysisOptions};
//! use dco_logic::parse_program;
//!
//! let p = parse_program("p(x, y) :- e(x, y), x < y, y < x.\n").unwrap();
//! let diags = analyze_program(&p, None, &AnalysisOptions::default());
//! assert!(has_errors(&diags)); // DCO401: the body can never be satisfied
//! ```

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod cost;
pub mod depgraph;
pub mod diagnostic;
pub mod explain;
pub mod planner;
pub mod safety;
pub mod schema_check;
pub mod stats;
pub mod unsat;

pub use cost::CostBudget;
pub use depgraph::{DepGraph, Polarity};
pub use diagnostic::{has_errors, Diagnostic, Severity, Span};
pub use explain::{PlanNode, QueryPlan};
pub use planner::{estimate_formula, plan_formula, plan_rule};
pub use stats::{ColumnStats, DbStats, RelStats};
pub use unsat::OrderSystem;

use dco_core::prelude::Schema;
use dco_logic::datalog::{Literal, Program};
use dco_logic::Formula;

/// Knobs for the analyzer. The defaults make every structural problem an
/// error (the strictest useful setting); evaluators relax individual
/// severities to match their own semantics — e.g. the inflationary engine
/// does not need stratification, so its `checked_run` downgrades DCO301 to
/// a warning.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Report unstratifiable programs (DCO301) as errors rather than
    /// warnings.
    pub require_stratified: bool,
    /// Report non-dense-order comparisons (DCO104) as errors rather than
    /// warnings.
    pub require_dense_order: bool,
    /// Report statically-unsatisfiable rule bodies (DCO401) as errors
    /// rather than warnings.
    pub dead_rule_is_error: bool,
    /// Cost limits (DCO501, DCO502).
    pub budget: CostBudget,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            require_stratified: true,
            require_dense_order: true,
            dead_rule_is_error: true,
            budget: CostBudget::default(),
        }
    }
}

impl AnalysisOptions {
    /// Options for the inflationary engine: unstratifiable programs and
    /// dead rules are warnings (the engine tolerates both).
    pub fn inflationary() -> AnalysisOptions {
        AnalysisOptions {
            require_stratified: false,
            dead_rule_is_error: false,
            ..AnalysisOptions::default()
        }
    }

    fn severity(&self, as_error: bool) -> Severity {
        if as_error {
            Severity::Error
        } else {
            Severity::Warning
        }
    }
}

/// Run every formula-level pass: schema conformance, dead-subformula
/// detection, and cost bounding.
pub fn analyze_formula(
    formula: &Formula,
    schema: Option<&Schema>,
    options: &AnalysisOptions,
) -> Vec<Diagnostic> {
    let mut diags = schema_check::check_formula(formula, schema, options.require_dense_order);
    diags.extend(unsat::check_formula(formula));
    diags.extend(cost::check_formula(formula, &options.budget));
    diags
}

/// Formula preflight for serving layers (the store's query server runs
/// this on every request before spending evaluation budget): run every
/// formula-level pass and partition the outcome. `Ok` carries the
/// non-blocking findings (warnings, notes); `Err` carries only the
/// blocking errors.
pub fn preflight_formula(
    formula: &Formula,
    schema: Option<&Schema>,
    options: &AnalysisOptions,
) -> Result<Vec<Diagnostic>, Vec<Diagnostic>> {
    let diags = analyze_formula(formula, schema, options);
    if has_errors(&diags) {
        Err(diags
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect())
    } else {
        Ok(diags)
    }
}

/// Run every program-level pass: schema conformance, safety,
/// stratifiability, per-rule unsatisfiability, and cost bounding.
pub fn analyze_program(
    program: &Program,
    schema: Option<&Schema>,
    options: &AnalysisOptions,
) -> Vec<Diagnostic> {
    let mut diags = schema_check::check_program(program, schema, options.require_dense_order);
    diags.extend(safety::check_program(program));

    let graph = DepGraph::of_program(program);
    if let Some(cycle) = graph.negative_cycle() {
        diags.push(Diagnostic {
            severity: options.severity(options.require_stratified),
            code: "DCO301",
            message: format!(
                "program is not stratifiable: negation cycle {}",
                cycle.join(" -> ")
            ),
            span: negative_edge_span(program, &cycle),
        });
    }

    for rule in &program.rules {
        if unsat::rule_body_is_unsat(rule) {
            diags.push(Diagnostic {
                severity: options.severity(options.dead_rule_is_error),
                code: "DCO401",
                message: format!(
                    "rule for `{}` has a statically unsatisfiable body and \
                     can never fire",
                    rule.head
                ),
                span: Span::of_rule(rule),
            });
        }
        if let Some(d) = cost::check_rule(rule, &options.budget) {
            diags.push(d);
        }
    }
    diags
}

/// The span of the rule providing the negative edge `cycle[0] → cycle[1]`.
fn negative_edge_span(program: &Program, cycle: &[String]) -> Span {
    let (Some(head), Some(dep)) = (cycle.first(), cycle.get(1)) else {
        return Span::Unknown;
    };
    for rule in &program.rules {
        if rule.head != *head {
            continue;
        }
        let negates = rule
            .body
            .iter()
            .any(|l| matches!(l, Literal::Neg(name, _) if name == dep));
        if negates {
            return Span::of_rule(rule);
        }
    }
    Span::Unknown
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_logic::{parse_formula, parse_program};

    fn schema() -> Schema {
        Schema::new().with("e", 2).with("v", 1)
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let p = parse_program(
            "tc(x, y) :- e(x, y).\n\
             tc(x, y) :- tc(x, z), e(z, y).\n",
        )
        .unwrap();
        assert!(analyze_program(&p, Some(&schema()), &AnalysisOptions::default()).is_empty());
    }

    #[test]
    fn arity_mismatch_is_rejected_with_span() {
        let p = parse_program("p(x) :- e(x, x, x).\n").unwrap();
        let diags = analyze_program(&p, Some(&schema()), &AnalysisOptions::default());
        assert!(has_errors(&diags));
        assert_eq!(diags[0].code, "DCO102");
        assert_eq!(diags[0].span, Span::Line(1));
    }

    #[test]
    fn unsafe_rule_is_rejected() {
        let p = parse_program("p(x, y) :- v(x), y < x.\n").unwrap();
        let diags = analyze_program(&p, Some(&schema()), &AnalysisOptions::default());
        assert!(has_errors(&diags));
        assert!(diags.iter().any(|d| d.code == "DCO201"));
    }

    #[test]
    fn unstratifiable_program_reports_full_cycle() {
        let p = parse_program(
            "a(x) :- b(x).\n\
             b(x) :- c(x).\n\
             c(x) :- v(x), not a(x).\n",
        )
        .unwrap();
        let diags = analyze_program(&p, Some(&schema()), &AnalysisOptions::default());
        let d = diags.iter().find(|d| d.code == "DCO301").unwrap();
        assert_eq!(d.severity, Severity::Error);
        for pred in ["a", "b", "c"] {
            assert!(d.message.contains(pred), "missing {pred}: {}", d.message);
        }
        assert_eq!(d.span, Span::Line(3), "the rule with the negation");
        // Inflationary options downgrade to a warning.
        let relaxed = analyze_program(&p, Some(&schema()), &AnalysisOptions::inflationary());
        assert!(!has_errors(&relaxed));
        assert!(relaxed.iter().any(|d| d.code == "DCO301"));
    }

    #[test]
    fn unsat_body_is_rejected_with_line() {
        let p = parse_program(
            "p(x, y) :- e(x, y).\n\
             p(x, y) :- e(x, y), x < y, y < x.\n",
        )
        .unwrap();
        let diags = analyze_program(&p, Some(&schema()), &AnalysisOptions::default());
        assert!(has_errors(&diags));
        let d = diags.iter().find(|d| d.code == "DCO401").unwrap();
        assert_eq!(d.span, Span::Line(2));
    }

    #[test]
    fn formula_passes_compose() {
        let f = parse_formula("exists y . (e(x, y) & x < y)").unwrap();
        assert!(analyze_formula(&f, Some(&schema()), &AnalysisOptions::default()).is_empty());
        let bad = parse_formula("missing(x) & x < 1 & x > 2").unwrap();
        let diags = analyze_formula(&bad, Some(&schema()), &AnalysisOptions::default());
        assert!(diags.iter().any(|d| d.code == "DCO101"));
        assert!(diags.iter().any(|d| d.code == "DCO402"));
    }

    #[test]
    fn cost_budget_rejects_formula() {
        let f = parse_formula("exists x . forall y . exists z . x < z").unwrap();
        let opts = AnalysisOptions {
            budget: CostBudget {
                max_quantifier_alternation: 2,
                ..CostBudget::default()
            },
            ..AnalysisOptions::default()
        };
        let diags = analyze_formula(&f, None, &opts);
        assert!(has_errors(&diags));
        assert_eq!(diags[0].code, "DCO501");
    }
}
