//! Typed EXPLAIN plans: the planner's view of a formula as a tree of
//! operator nodes, each carrying an estimated cardinality and — once an
//! evaluator has run the same shape — an actual one.
//!
//! The estimated side is produced here from [`DbStats`] alone (a pure
//! static analysis); the actual side is filled in by the engines'
//! instrumented evaluators (`dco_fo::explain`), which mirror their
//! evaluation recursion and record the width of every intermediate
//! relation. [`PlanNode::render`] prints the tree with `est=` and `act=`
//! on every line, which is also the payload of the store's `EXPLAIN`
//! protocol verb.

use crate::planner::estimate_formula;
use crate::stats::DbStats;
use dco_logic::Formula;
use std::fmt::Write as _;

/// One operator in an explained plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Operator label (`and`, `exists`, `pred e`, …).
    pub label: String,
    /// Operator-specific detail (the atom text, bound variables, …).
    pub detail: String,
    /// Estimated result width in generalized tuples (DNF disjuncts).
    pub estimated: f64,
    /// Measured result width, when an evaluator has run this node.
    pub actual: Option<u64>,
    /// Child operators, in execution order.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// A leaf/interior node with no actual measurement yet.
    pub fn new(label: impl Into<String>, detail: impl Into<String>, estimated: f64) -> PlanNode {
        PlanNode {
            label: label.into(),
            detail: detail.into(),
            estimated,
            actual: None,
            children: Vec::new(),
        }
    }

    /// Attach a measured cardinality.
    pub fn with_actual(mut self, actual: u64) -> PlanNode {
        self.actual = Some(actual);
        self
    }

    /// Attach children (execution order).
    pub fn with_children(mut self, children: Vec<PlanNode>) -> PlanNode {
        self.children = children;
        self
    }

    /// Render this subtree as an indented text plan. Every node prints
    /// both cardinalities: `est=<n>` and `act=<n|->`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let act = match self.actual {
            Some(n) => n.to_string(),
            None => "-".to_string(),
        };
        let _ = if self.detail.is_empty() {
            writeln!(out, "{} est={:.1} act={}", self.label, self.estimated, act)
        } else {
            writeln!(
                out,
                "{} {} est={:.1} act={}",
                self.label, self.detail, self.estimated, act
            )
        };
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    /// Total node count of the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PlanNode::size).sum::<usize>()
    }

    /// `true` when every node in the subtree carries a measured
    /// cardinality — the acceptance bar for engine-produced plans.
    pub fn fully_measured(&self) -> bool {
        self.actual.is_some() && self.children.iter().all(PlanNode::fully_measured)
    }
}

/// A complete explained query: the (possibly planner-reordered) formula
/// text plus the operator tree.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Display form of the formula the plan describes (post-planning).
    pub planned: String,
    /// Root operator.
    pub root: PlanNode,
}

impl QueryPlan {
    /// Render the whole plan: header line then the tree.
    pub fn render(&self) -> String {
        format!("plan: {}\n{}", self.planned, self.root.render())
    }

    /// Record the measured root cardinality on an estimates-only plan.
    /// Used by the slow-query log, which knows the final result width
    /// but did not re-run the evaluator to measure interior nodes.
    pub fn set_root_actual(&mut self, actual: u64) {
        self.root.actual = Some(actual);
    }
}

/// Build the estimates-only plan of `formula` under `stats` — no
/// evaluation, no actuals. Engines overlay actuals by re-walking the same
/// shape.
pub fn explain_formula(formula: &Formula, stats: &DbStats) -> QueryPlan {
    QueryPlan {
        planned: formula.to_string(),
        root: node_of(formula, stats),
    }
}

fn node_of(formula: &Formula, stats: &DbStats) -> PlanNode {
    let est = estimate_formula(formula, stats);
    match formula {
        Formula::True => PlanNode::new("true", "", est),
        Formula::False => PlanNode::new("false", "", est),
        Formula::Compare(..) => PlanNode::new("compare", formula.to_string(), est),
        Formula::Pred(name, _) => PlanNode::new("pred", name.clone(), est),
        Formula::Not(f) => PlanNode::new("not", "", est).with_children(vec![node_of(f, stats)]),
        Formula::And(parts) => PlanNode::new("and", "", est)
            .with_children(parts.iter().map(|p| node_of(p, stats)).collect()),
        Formula::Or(parts) => PlanNode::new("or", "", est)
            .with_children(parts.iter().map(|p| node_of(p, stats)).collect()),
        Formula::Implies(a, b) => PlanNode::new("implies", "", est)
            .with_children(vec![node_of(a, stats), node_of(b, stats)]),
        Formula::Iff(a, b) => {
            PlanNode::new("iff", "", est).with_children(vec![node_of(a, stats), node_of(b, stats)])
        }
        Formula::Exists(vs, body) => {
            PlanNode::new("exists", vs.join(", "), est).with_children(vec![node_of(body, stats)])
        }
        Formula::Forall(vs, body) => {
            PlanNode::new("forall", vs.join(", "), est).with_children(vec![node_of(body, stats)])
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_logic::parse_formula;

    #[test]
    fn every_node_prints_both_cardinalities() {
        let f = parse_formula("exists y . (e(x, y) & not v(x))").unwrap();
        let plan = explain_formula(&f, &DbStats::default());
        let text = plan.render();
        for line in text.lines().skip(1) {
            assert!(line.contains("est="), "missing est: {line}");
            assert!(line.contains("act="), "missing act: {line}");
        }
        assert_eq!(plan.root.size(), 5); // exists / and / pred, not / pred
    }

    #[test]
    fn fully_measured_requires_every_node() {
        let mut n = PlanNode::new("and", "", 2.0)
            .with_children(vec![PlanNode::new("pred", "e", 1.0).with_actual(3)]);
        assert!(!n.fully_measured());
        n.actual = Some(4);
        assert!(n.fully_measured());
    }
}
