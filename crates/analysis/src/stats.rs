//! Relation statistics by abstract interpretation of stored constraints.
//!
//! The planner needs to know, *before* evaluation, roughly how wide each
//! stored relation's DNF is and where its tuples live on each axis. This
//! module abstract-interprets a [`GeneralizedRelation`] into a [`RelStats`]
//! summary built entirely from information the kernel already maintains
//! incrementally at insert time:
//!
//! * each tuple's per-variable interval bounding box
//!   ([`dco_core::sat::VarBox`], kept atom-by-atom by the tuple's
//!   `SatState`) feeds a per-column **interval-bound histogram**;
//! * tuple and atom counts, distinct-constant counts, and the strict/weak
//!   order-edge density come from the tuple kernel's own accessors.
//!
//! A [`DbStats`] aggregates one [`RelStats`] per relation and supports
//! relation-granular incremental update — `dco-store` snapshots one per
//! generation, recomputing only the relation a write touched. Everything
//! here is a pure function of relation *content*, so stats computed after
//! a WAL replay are identical (to the byte, under the canonical rendering)
//! to the stats computed before the crash.
//!
//! The histogram is comparison-only: bucket boundaries are chosen from the
//! distinct bound constants actually mentioned, and counting is done by
//! interval overlap — no rational arithmetic, hence no overflow and full
//! determinism.

use dco_core::prelude::{Database, GeneralizedRelation, Rational, VarBox};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Maximum number of histogram buckets per column (boundaries are one
/// fewer). Small on purpose: the planner needs shape, not precision, and
/// store generations snapshot one histogram set per relation.
pub const HISTOGRAM_BUCKETS: usize = 8;

/// Interval-bound histogram for one column of a relation.
///
/// `boundaries` splits Q into `boundaries.len() + 1` cells
/// `(-∞, b₀), [b₀, b₁), …, [b_last, +∞)`; `counts[i]` is the number of
/// stored tuples whose bounding box *overlaps* cell `i` (a tuple with no
/// direct bound on the column overlaps every cell, so counts sum to more
/// than the tuple count in general — they are overlap counters, which is
/// exactly the shape selectivity estimation needs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ColumnStats {
    /// Sorted bucket split points, at most [`HISTOGRAM_BUCKETS`]` - 1`.
    pub boundaries: Vec<Rational>,
    /// Per-bucket overlap counts, length `boundaries.len() + 1`.
    pub counts: Vec<u64>,
    /// Tuples with a direct lower bound on this column.
    pub lo_bounded: u64,
    /// Tuples with a direct upper bound on this column.
    pub hi_bounded: u64,
}

impl ColumnStats {
    /// Fraction of tuples estimated to intersect the half-line `x < c`
    /// (or `x ≤ c`; strictness is below histogram resolution). In `[0, 1]`.
    pub fn selectivity_below(&self, c: &Rational, tuples: u64) -> f64 {
        self.selectivity_interval(None, Some(c), tuples)
    }

    /// Fraction of tuples estimated to intersect the half-line `x > c`.
    pub fn selectivity_above(&self, c: &Rational, tuples: u64) -> f64 {
        self.selectivity_interval(Some(c), None, tuples)
    }

    /// Fraction of tuples estimated to intersect `x = c` — the overlap
    /// share of the single cell containing `c`, damped by the cell's
    /// width being a point's worth of it.
    pub fn selectivity_at(&self, c: &Rational, tuples: u64) -> f64 {
        if tuples == 0 {
            return 0.0;
        }
        let cell = match self.boundaries.binary_search(c) {
            Ok(i) => i + 1, // boundary values open the cell to their right
            Err(i) => i,
        };
        let overlap = self.counts.get(cell).copied().unwrap_or(tuples) as f64;
        ((overlap / tuples as f64) * 0.5).clamp(0.01, 1.0)
    }

    /// Fraction of tuples estimated to intersect `(lo, hi)` (either side
    /// may be unbounded). Cells fully inside count fully; the two fringe
    /// cells count half.
    pub fn selectivity_interval(
        &self,
        lo: Option<&Rational>,
        hi: Option<&Rational>,
        tuples: u64,
    ) -> f64 {
        if tuples == 0 {
            return 0.0;
        }
        if self.counts.is_empty() {
            return 1.0;
        }
        let first = lo.map_or(0, |c| match self.boundaries.binary_search(c) {
            Ok(i) => i + 1,
            Err(i) => i,
        });
        let last = hi.map_or(self.counts.len() - 1, |c| {
            match self.boundaries.binary_search(c) {
                Ok(i) => i + 1,
                Err(i) => i,
            }
        });
        let mut mass = 0.0;
        for (i, &n) in self.counts.iter().enumerate() {
            if i < first || i > last {
                continue;
            }
            let fringe = (i == first && lo.is_some()) || (i == last && hi.is_some());
            mass += n as f64 * if fringe { 0.5 } else { 1.0 };
        }
        (mass / tuples as f64).clamp(0.0, 1.0)
    }

    /// Estimated fraction of tuple *pairs* (one from each side) whose
    /// boxes overlap on this column — the box-intersection-volume measure
    /// the planner uses for join cardinality. Evaluates `other`'s overlap
    /// share over each of `self`'s cells, weighted by `self`'s own
    /// distribution.
    pub fn overlap_fraction(&self, tuples: u64, other: &ColumnStats, other_tuples: u64) -> f64 {
        if tuples == 0 || other_tuples == 0 {
            return 0.0;
        }
        if self.counts.is_empty() || other.counts.is_empty() {
            return 1.0;
        }
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mut acc = 0.0;
        for (i, &n) in self.counts.iter().enumerate() {
            let lo = if i == 0 {
                None
            } else {
                self.boundaries.get(i - 1)
            };
            let hi = self.boundaries.get(i);
            let share = n as f64 / total as f64;
            acc += share * other.selectivity_interval(lo, hi, other_tuples);
        }
        acc.clamp(0.0, 1.0)
    }
}

/// Abstract summary of one stored relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelStats {
    /// Relation arity.
    pub arity: u32,
    /// Number of generalized tuples (DNF disjuncts).
    pub tuples: u64,
    /// Total atom count across all tuples.
    pub atoms: u64,
    /// Distinct rational constants mentioned.
    pub distinct_constants: u64,
    /// Total strict order obligations across tuples.
    pub strict_edges: u64,
    /// Total weak order obligations across tuples.
    pub weak_edges: u64,
    /// One histogram per column.
    pub columns: Vec<ColumnStats>,
}

impl RelStats {
    /// Summarize a relation. Pure in its content: two relations with equal
    /// tuple lists produce byte-identical stats.
    pub fn of_relation(rel: &GeneralizedRelation) -> RelStats {
        let arity = rel.arity() as usize;
        let mut endpoints: Vec<BTreeSet<Rational>> = vec![BTreeSet::new(); arity];
        let mut atoms = 0u64;
        let mut strict_edges = 0u64;
        let mut weak_edges = 0u64;
        for t in rel.tuples() {
            atoms += t.len() as u64;
            let (s, w) = t.order_edge_counts();
            strict_edges += s as u64;
            weak_edges += w as u64;
            for (col, b) in t.bounding_box().iter().enumerate() {
                if let Some((c, _)) = b.lo {
                    endpoints[col].insert(c);
                }
                if let Some((c, _)) = b.hi {
                    endpoints[col].insert(c);
                }
            }
        }
        let mut columns: Vec<ColumnStats> = endpoints
            .iter()
            .map(|set| {
                let all: Vec<Rational> = set.iter().copied().collect();
                let boundaries = thin_boundaries(&all);
                let counts = vec![0u64; boundaries.len() + 1];
                ColumnStats {
                    boundaries,
                    counts,
                    lo_bounded: 0,
                    hi_bounded: 0,
                }
            })
            .collect();
        for t in rel.tuples() {
            let boxes = t.bounding_box();
            for (col, stats) in columns.iter_mut().enumerate() {
                let b = boxes.get(col).copied().unwrap_or_default();
                if b.lo.is_some() {
                    stats.lo_bounded += 1;
                }
                if b.hi.is_some() {
                    stats.hi_bounded += 1;
                }
                bump_overlaps(stats, &b);
            }
        }
        RelStats {
            arity: rel.arity(),
            tuples: rel.len() as u64,
            atoms,
            distinct_constants: rel.constants().len() as u64,
            strict_edges,
            weak_edges,
            columns,
        }
    }

    /// Mean order obligations per tuple (strict + weak) — a proxy for how
    /// much satisfiability work each conjoin against this relation costs.
    pub fn edge_density(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            (self.strict_edges + self.weak_edges) as f64 / self.tuples as f64
        }
    }
}

/// Reduce a sorted endpoint list to at most `HISTOGRAM_BUCKETS - 1`
/// boundaries by even-stride quantile picking (deterministic in content).
fn thin_boundaries(all: &[Rational]) -> Vec<Rational> {
    let max = HISTOGRAM_BUCKETS - 1;
    if all.len() <= max {
        return all.to_vec();
    }
    (1..=max)
        .map(|i| all[i * all.len() / (max + 1)])
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect()
}

/// Increment every bucket the box `[lo, hi]` overlaps.
fn bump_overlaps(stats: &mut ColumnStats, b: &VarBox) {
    let first = match b.lo {
        None => 0,
        Some((c, _)) => match stats.boundaries.binary_search(&c) {
            Ok(i) => i + 1,
            Err(i) => i,
        },
    };
    let last = match b.hi {
        None => stats.counts.len() - 1,
        Some((c, _)) => match stats.boundaries.binary_search(&c) {
            // An upper bound exactly on a boundary still touches the cell
            // opening at that boundary only when weak; below resolution,
            // count it.
            Ok(i) => i + 1,
            Err(i) => i,
        },
    };
    for i in first..=last.min(stats.counts.len() - 1) {
        stats.counts[i] += 1;
    }
}

/// Per-database statistics: one [`RelStats`] per relation, updatable at
/// relation granularity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DbStats {
    /// Per-relation summaries, keyed by relation name.
    pub relations: BTreeMap<String, RelStats>,
}

impl DbStats {
    /// Summarize every relation of a database.
    pub fn of_database(db: &Database) -> DbStats {
        let mut out = DbStats::default();
        for (name, rel) in db.relations() {
            out.relations
                .insert(name.to_string(), RelStats::of_relation(rel));
        }
        out
    }

    /// Recompute the summary of one relation (the incremental path: a
    /// store write touches one relation, so only that summary changes).
    pub fn update(&mut self, name: &str, rel: &GeneralizedRelation) {
        self.relations
            .insert(name.to_string(), RelStats::of_relation(rel));
    }

    /// Drop the summary of a removed relation.
    pub fn remove(&mut self, name: &str) {
        self.relations.remove(name);
    }

    /// Absorb another stats map (on overlap, `other` wins). The sharded
    /// store maintains one `DbStats` per shard — recomputed at relation
    /// granularity by that shard's writers — and composes the global
    /// view by merging the per-shard maps; since the maps are summaries
    /// keyed by relation name, the merge is pure bookkeeping and the
    /// composite stays a pure function of the catalog content.
    pub fn merge(&mut self, other: &DbStats) {
        for (name, rs) in &other.relations {
            self.relations.insert(name.clone(), rs.clone());
        }
    }

    /// The summary for a relation, if known.
    pub fn get(&self, name: &str) -> Option<&RelStats> {
        self.relations.get(name)
    }

    /// A canonical, line-oriented rendering: relations sorted by name,
    /// exact rationals, fixed field order. Two `DbStats` are equal iff
    /// their canonical strings are byte-identical — the form the store's
    /// replay-identity test compares.
    pub fn canonical_string(&self) -> String {
        let mut out = String::new();
        for (name, r) in &self.relations {
            let _ = write!(
                out,
                "{name} arity={} tuples={} atoms={} consts={} strict={} weak={}",
                r.arity, r.tuples, r.atoms, r.distinct_constants, r.strict_edges, r.weak_edges
            );
            for (i, c) in r.columns.iter().enumerate() {
                let bounds: Vec<String> = c.boundaries.iter().map(|b| b.to_string()).collect();
                let counts: Vec<String> = c.counts.iter().map(|n| n.to_string()).collect();
                let _ = write!(
                    out,
                    " col{i}[lo={} hi={} b={} n={}]",
                    c.lo_bounded,
                    c.hi_bounded,
                    bounds.join(","),
                    counts.join(",")
                );
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_core::prelude::*;

    fn interval(lo: i64, hi: i64) -> GeneralizedRelation {
        GeneralizedRelation::from_raw(
            1,
            vec![
                RawAtom::new(Term::cst(rat(lo as i128, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(hi as i128, 1))),
            ],
        )
    }

    fn union_of_intervals(spans: &[(i64, i64)]) -> GeneralizedRelation {
        let mut acc = GeneralizedRelation::empty(1);
        for &(lo, hi) in spans {
            acc = acc.union(&interval(lo, hi));
        }
        acc
    }

    #[test]
    fn counts_and_histogram_reflect_content() {
        let rel = union_of_intervals(&[(0, 1), (2, 3), (4, 5)]);
        let s = RelStats::of_relation(&rel);
        assert_eq!(s.tuples, 3);
        assert_eq!(s.atoms, 6);
        assert_eq!(s.distinct_constants, 6);
        assert_eq!(s.columns.len(), 1);
        let c = &s.columns[0];
        assert_eq!(c.lo_bounded, 3);
        assert_eq!(c.hi_bounded, 3);
        // Every tuple overlaps at least one cell.
        assert!(c.counts.iter().sum::<u64>() >= 3);
    }

    #[test]
    fn selectivity_orders_narrow_below_wide() {
        let rel = union_of_intervals(&[(0, 1), (2, 3), (4, 5), (6, 7)]);
        let s = RelStats::of_relation(&rel);
        let c = &s.columns[0];
        let low = c.selectivity_below(&rat(1, 1), s.tuples);
        let all = c.selectivity_below(&rat(100, 1), s.tuples);
        assert!(low < all, "narrow half-line must be more selective");
        assert!(all <= 1.0 && low > 0.0);
    }

    #[test]
    fn overlap_fraction_separated_vs_nested() {
        let a = RelStats::of_relation(&union_of_intervals(&[(0, 1), (0, 2), (1, 2)]));
        let far = RelStats::of_relation(&union_of_intervals(&[(100, 101), (102, 103)]));
        let near = RelStats::of_relation(&union_of_intervals(&[(0, 1), (1, 2)]));
        let f_far = a.columns[0].overlap_fraction(a.tuples, &far.columns[0], far.tuples);
        let f_near = a.columns[0].overlap_fraction(a.tuples, &near.columns[0], near.tuples);
        assert!(
            f_far < f_near,
            "separated boxes must score lower overlap ({f_far} vs {f_near})"
        );
    }

    #[test]
    fn boundaries_thin_deterministically() {
        let spans: Vec<(i64, i64)> = (0..40).map(|i| (3 * i, 3 * i + 1)).collect();
        let rel = union_of_intervals(&spans);
        let s = RelStats::of_relation(&rel);
        assert!(s.columns[0].boundaries.len() < HISTOGRAM_BUCKETS);
        let again = RelStats::of_relation(&rel);
        assert_eq!(s, again);
    }

    #[test]
    fn db_stats_incremental_update_matches_full_recompute() {
        let mut db = Database::new(Schema::new().with("a", 1).with("b", 1));
        db.set("a", union_of_intervals(&[(0, 1)])).unwrap();
        db.set("b", union_of_intervals(&[(2, 3), (4, 5)])).unwrap();
        let mut inc = DbStats::of_database(&db);
        db.set("b", union_of_intervals(&[(9, 10)])).unwrap();
        inc.update("b", db.get("b").unwrap());
        let full = DbStats::of_database(&db);
        assert_eq!(inc, full);
        assert_eq!(inc.canonical_string(), full.canonical_string());
    }

    #[test]
    fn canonical_string_distinguishes_content() {
        let a = DbStats::of_database(
            &Database::new(Schema::new().with("r", 1)).with("r", union_of_intervals(&[(0, 1)])),
        );
        let b = DbStats::of_database(
            &Database::new(Schema::new().with("r", 1)).with("r", union_of_intervals(&[(0, 2)])),
        );
        assert_ne!(a.canonical_string(), b.canonical_string());
    }
}
