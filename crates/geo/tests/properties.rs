//! Property tests for the spatial layer: random box unions, topology
//! operator laws, and connectivity invariants.

use dco_geo::connectivity::{component_count, is_connected};
use dco_geo::region::Region;
use dco_geo::topology::{boundary, closure, interior};
use proptest::prelude::*;

/// A random region: union of up to 4 closed/open boxes on a small grid.
fn arb_region() -> impl Strategy<Value = Region> {
    prop::collection::vec((0i64..6, 1i64..3, 0i64..6, 1i64..3, prop::bool::ANY), 1..4).prop_map(
        |boxes| {
            let mut r = Region::empty();
            for (x, w, y, h, open) in boxes {
                let b = if open {
                    Region::open_box(x, x + w, y, y + h)
                } else {
                    Region::closed_box(x, x + w, y, y + h)
                };
                r = r.union(&b);
            }
            r
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn closure_is_extensive_and_idempotent(r in arb_region()) {
        let c = closure(&r);
        prop_assert!(r.relation().is_subset(c.relation()));
        prop_assert!(closure(&c).equivalent(&c));
    }

    #[test]
    fn interior_is_intensive_and_idempotent(r in arb_region()) {
        let i = interior(&r);
        prop_assert!(i.relation().is_subset(r.relation()));
        prop_assert!(interior(&i).equivalent(&i));
    }

    #[test]
    fn boundary_disjoint_from_interior(r in arb_region()) {
        let b = boundary(&r);
        let i = interior(&r);
        prop_assert!(b.intersect(&i).is_empty());
        prop_assert!(b.union(&i).equivalent(&closure(&r)));
    }

    #[test]
    fn interior_closure_duality(r in arb_region()) {
        // int(R) = ¬cl(¬R)
        let lhs = interior(&r);
        let rhs = closure(&r.complement()).complement();
        prop_assert!(lhs.equivalent(&rhs));
    }

    #[test]
    fn union_does_not_increase_components(a in arb_region(), b in arb_region()) {
        // components(A ∪ B) ≤ components(A) + components(B)
        let ca = component_count(&a);
        let cb = component_count(&b);
        let cu = component_count(&a.union(&b));
        prop_assert!(cu <= ca + cb, "{cu} > {ca} + {cb}");
    }

    #[test]
    fn connected_union_with_overlap(a in arb_region()) {
        // A ∪ A is A: same component count
        prop_assert_eq!(component_count(&a.union(&a)), component_count(&a));
    }

    #[test]
    fn closure_preserves_or_reduces_components(r in arb_region()) {
        // closing can merge touching components, never split them
        prop_assert!(component_count(&closure(&r)) <= component_count(&r).max(1));
        if is_connected(&r) {
            prop_assert!(is_connected(&closure(&r)));
        }
    }
}
