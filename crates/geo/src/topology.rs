//! Topological operators on dense-order regions.
//!
//! §3 of the paper connects its query definition to the topology of the
//! rational plane: queries are closed under monotone homeomorphisms, and
//! interior / closure / boundary of a definable pointset are themselves
//! first-order definable (e.g. `int(R)(p) = ∃ box ∋ p. box ⊆ R`). Rather
//! than evaluating those rank-6 formulas with the generic evaluator — whose
//! DNF complements blow up at arity 8 — we use the equivalent *cell
//! computation*, which is how a real engine would implement them:
//!
//! * **closure**: a satisfiable conjunction of order constraints defines a
//!   convex set whose topological closure is obtained by weakening every
//!   strict atom to `≤` (the standard convexity argument: for `w` in the
//!   weakened set and `s` a witness of the strict set, every point of the
//!   open segment `(s, w)` satisfies all strict constraints strictly);
//!   closure distributes over finite unions;
//! * **interior**: `int(R) = ¬ cl(¬ R)`, with the complement taken
//!   cell-wise over `R`'s constants (exact, since `R` is a union of cells);
//! * **boundary**: `cl(R) \ int(R)`.
//!
//! Each operator returns a finitely representable region — closure of the
//! algebra, again.

use crate::region::Region;
use dco_core::prelude::*;

/// The topological closure of a region (product order topology on `Q²`).
pub fn closure(region: &Region) -> Region {
    Region::from_relation(closure_rel(region.relation()))
}

fn closure_rel(rel: &GeneralizedRelation) -> GeneralizedRelation {
    GeneralizedRelation::from_tuples(rel.arity(), rel.tuples().iter().map(weaken_tuple))
}

/// Weaken every strict atom of a (satisfiable) tuple to its non-strict
/// counterpart — the closure of the denoted convex set.
fn weaken_tuple(t: &GeneralizedTuple) -> GeneralizedTuple {
    GeneralizedTuple::from_atoms(
        t.arity(),
        t.atoms().iter().map(|a| match a.op() {
            CompOp::Lt => Atom::normalized(a.lhs(), CompOp::Le, a.rhs())
                .expect("weakened atom is satisfiable")
                .remove(0),
            _ => *a,
        }),
    )
}

/// The interior of a region: `¬ cl(¬ R)`, complement taken over the cell
/// space of the region's own constants (exact for definable regions).
pub fn interior(region: &Region) -> Region {
    let rel = region.relation();
    let space = CellSpace::for_relations(2, [rel]);
    let comp = space.complement(rel);
    let cl_comp = closure_rel(&comp);
    // The second complement may introduce no new constants: cl only weakens.
    let space2 = CellSpace::for_relations(2, [&cl_comp, rel]);
    Region::from_relation(space2.complement(&cl_comp))
}

/// The boundary of a region: closure minus interior.
pub fn boundary(region: &Region) -> Region {
    closure(region).difference(&interior(region))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_of_closed_box_is_open_box() {
        let b = Region::closed_box(0, 2, 0, 2);
        let int = interior(&b);
        assert!(int.contains(1, 1));
        assert!(!int.contains(0, 1)); // boundary edge
        assert!(!int.contains(0, 0)); // corner
        assert!(int.equivalent(&Region::open_box(0, 2, 0, 2)));
    }

    #[test]
    fn closure_of_open_box_is_closed_box() {
        let b = Region::open_box(0, 2, 0, 2);
        let cl = closure(&b);
        assert!(cl.contains(0, 0));
        assert!(cl.contains(2, 2));
        assert!(!cl.contains(3, 1));
        assert!(cl.equivalent(&Region::closed_box(0, 2, 0, 2)));
    }

    #[test]
    fn boundary_of_box() {
        let b = Region::closed_box(0, 2, 0, 2);
        let bd = boundary(&b);
        assert!(bd.contains(0, 1)); // left edge
        assert!(bd.contains(2, 2)); // corner
        assert!(bd.contains(1, 0)); // bottom edge
        assert!(!bd.contains(1, 1)); // interior
        assert!(!bd.contains(5, 5)); // exterior
    }

    #[test]
    fn isolated_point_has_empty_interior() {
        let p = Region::point(3, 4);
        assert!(interior(&p).is_empty());
        assert!(closure(&p).equivalent(&p));
        assert!(boundary(&p).equivalent(&p));
    }

    #[test]
    fn interior_of_plane_is_plane() {
        let pl = Region::plane();
        assert!(interior(&pl).equivalent(&pl));
        assert!(boundary(&pl).is_empty());
    }

    #[test]
    fn closure_idempotent_and_monotone() {
        let r = Region::open_box(0, 1, 0, 1).union(&Region::point(5, 5));
        let c1 = closure(&r);
        let c2 = closure(&c1);
        assert!(c1.equivalent(&c2));
        assert!(r.relation().is_subset(c1.relation()));
    }

    #[test]
    fn triangle_topology() {
        // the wedge x ≤ y within [0,2]²: interior is the strict wedge
        let wedge = Region::from_relation(GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(2, 1))),
            ],
        ));
        let int = interior(&wedge);
        assert!(int.contains(rat(1, 2), rat(3, 2)));
        assert!(!int.contains(1, 1)); // on the diagonal edge
        let bd = boundary(&wedge);
        assert!(bd.contains(1, 1));
        assert!(bd.contains(0, 1));
    }
}
