//! Region connectivity — the query of Theorem 4.3.
//!
//! The paper proves region connectivity is **not** expressible with linear
//! constraints (FO+), yet it is a PTIME query, hence expressible in
//! inflationary Datalog¬ by Theorem 4.4. The PTIME algorithm is the one the
//! capture proof would synthesize: decompose the region into its order
//! cells (an FO-computable, polynomial-size set), connect cells whose
//! closures meet (again FO), and compute the transitive closure of the
//! finite adjacency graph (Datalog¬ / union-find). We implement both
//! back-ends: a union-find decision procedure, and the actual Datalog¬
//! program run on the encoded cell graph — the cross-check used by
//! experiment E3.

use crate::region::Region;
use dco_core::prelude::*;
use dco_datalog::programs::is_connected as datalog_is_connected;

/// The cell decomposition of a region: satisfiable cells (as tuples).
pub fn region_cells(region: &Region) -> Vec<GeneralizedTuple> {
    let space = CellSpace::for_relations(2, [region.relation()]);
    let form = space.canonicalize(region.relation());
    let all = space.enumerate();
    form.members()
        .iter()
        .map(|&i| space.to_tuple(&all[i]))
        .collect()
}

/// Adjacency in the cell graph: `cl(a) ∩ b ≠ ∅` or `a ∩ cl(b) ≠ ∅` — the
/// one-sided-closure criterion for when the union of two convex sets is
/// connected. (Two-sided closure would be wrong: two open boxes separated
/// by a missing segment have intersecting *closures* but a disconnected
/// union.) For order cells, closure = weaken every strict atom to ≤.
pub fn cells_touch(a: &GeneralizedTuple, b: &GeneralizedTuple) -> bool {
    let weaken = |t: &GeneralizedTuple| {
        GeneralizedTuple::from_atoms(
            t.arity(),
            t.atoms().iter().map(|atom| match atom.op() {
                CompOp::Lt => Atom::normalized(atom.lhs(), CompOp::Le, atom.rhs())
                    .expect("weakening a satisfiable atom stays satisfiable")
                    .remove(0),
                _ => *atom,
            }),
        )
    };
    weaken(a).conjoin(b).is_satisfiable() || a.conjoin(&weaken(b)).is_satisfiable()
}

/// Connected components of the region's cell graph (union-find).
/// Returns the number of components (0 for the empty region).
pub fn component_count(region: &Region) -> usize {
    let cells = region_cells(region);
    let n = cells.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if cells_touch(&cells[i], &cells[j]) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut roots: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

/// Is the region connected? (The empty region counts as connected.)
///
/// NOTE: cell adjacency by closure-intersection decides *polygonal*
/// connectivity, which over finite unions of order cells coincides with
/// topological connectivity.
pub fn is_connected(region: &Region) -> bool {
    component_count(region) <= 1
}

/// The same decision routed through the Datalog¬ engine: the cell graph is
/// emitted as a finite vertex/edge database (vertices numbered into Q) and
/// the connectivity program of `dco-datalog` runs on it. Agreement with
/// [`is_connected`] is asserted by the E3 experiment and the integration
/// tests.
pub fn is_connected_via_datalog(region: &Region) -> bool {
    let cells = region_cells(region);
    let n = cells.len();
    if n <= 1 {
        return true;
    }
    let vertices =
        GeneralizedRelation::from_points(1, (0..n).map(|i| vec![Rational::from_int(i as i64)]));
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if cells_touch(&cells[i], &cells[j]) {
                edges.push(vec![
                    Rational::from_int(i as i64),
                    Rational::from_int(j as i64),
                ]);
            }
        }
    }
    let edges = GeneralizedRelation::from_points(2, edges);
    datalog_is_connected(&vertices, &edges).expect("cell graph program runs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_box_is_connected() {
        assert!(is_connected(&Region::closed_box(0, 1, 0, 1)));
        assert_eq!(component_count(&Region::closed_box(0, 1, 0, 1)), 1);
    }

    #[test]
    fn two_far_boxes_are_disconnected() {
        let r = Region::closed_box(0, 1, 0, 1).union(&Region::closed_box(5, 6, 5, 6));
        assert!(!is_connected(&r));
        assert_eq!(component_count(&r), 2);
    }

    #[test]
    fn touching_boxes_are_connected() {
        // share the edge x = 1
        let r = Region::closed_box(0, 1, 0, 1).union(&Region::closed_box(1, 2, 0, 1));
        assert!(is_connected(&r));
    }

    #[test]
    fn corner_touching_boxes_are_connected() {
        // share only the corner point (1,1)
        let r = Region::closed_box(0, 1, 0, 1).union(&Region::closed_box(1, 2, 1, 2));
        assert!(is_connected(&r));
    }

    #[test]
    fn open_boxes_separated_by_a_line_are_disconnected() {
        // (0,1)×(0,1) and (1,2)×(0,1): the segment x=1 is missing
        let r = Region::open_box(0, 1, 0, 1).union(&Region::open_box(1, 2, 0, 1));
        assert!(!is_connected(&r));
        // adding the separating open segment x=1, 0<y<1 reconnects
        let seg = Region::from_relation(GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::var(0), RawOp::Eq, Term::cst(rat(1, 1))),
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Lt, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Lt, Term::cst(rat(1, 1))),
            ],
        ));
        assert!(is_connected(&r.union(&seg)));
    }

    #[test]
    fn isolated_point_makes_extra_component() {
        let r = Region::closed_box(0, 1, 0, 1).union(&Region::point(5, 5));
        assert_eq!(component_count(&r), 2);
    }

    #[test]
    fn empty_region_connected_by_convention() {
        assert!(is_connected(&Region::empty()));
        assert_eq!(component_count(&Region::empty()), 0);
    }

    #[test]
    fn datalog_backend_agrees() {
        let connected = Region::closed_box(0, 1, 0, 1).union(&Region::closed_box(1, 2, 1, 2));
        let disconnected = Region::closed_box(0, 1, 0, 1).union(&Region::closed_box(3, 4, 3, 4));
        assert_eq!(
            is_connected(&connected),
            is_connected_via_datalog(&connected)
        );
        assert_eq!(
            is_connected(&disconnected),
            is_connected_via_datalog(&disconnected)
        );
        assert!(is_connected_via_datalog(&connected));
        assert!(!is_connected_via_datalog(&disconnected));
    }
}
