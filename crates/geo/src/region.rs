//! Planar regions as binary dense-order relations.
//!
//! §2 of the paper motivates dense-order constraint databases with
//! geographical pointsets: planar regions finitely represented by order
//! constraints. Over `(Q, ≤)` the definable regions are exactly the finite
//! unions of axis-aligned "order cells" — boxes, segments, points, and the
//! order wedges (`x ≤ y`-style half-planes). This module wraps binary
//! generalized relations with region constructors and predicates.

use dco_core::prelude::*;

/// A planar region: a binary generalized relation with set semantics.
#[derive(Clone, Debug, PartialEq)]
pub struct Region {
    relation: GeneralizedRelation,
}

impl Region {
    /// The empty region.
    pub fn empty() -> Region {
        Region {
            relation: GeneralizedRelation::empty(2),
        }
    }

    /// The whole plane.
    pub fn plane() -> Region {
        Region {
            relation: GeneralizedRelation::universe(2),
        }
    }

    /// Wrap an existing binary relation.
    pub fn from_relation(relation: GeneralizedRelation) -> Region {
        assert_eq!(relation.arity(), 2, "regions are binary");
        Region { relation }
    }

    /// The closed box `[x0, x1] × [y0, y1]`.
    pub fn closed_box(
        x0: impl Into<Rational>,
        x1: impl Into<Rational>,
        y0: impl Into<Rational>,
        y1: impl Into<Rational>,
    ) -> Region {
        let (x0, x1, y0, y1) = (x0.into(), x1.into(), y0.into(), y1.into());
        Region {
            relation: GeneralizedRelation::from_raw(
                2,
                vec![
                    RawAtom::new(Term::Const(x0), RawOp::Le, Term::var(0)),
                    RawAtom::new(Term::var(0), RawOp::Le, Term::Const(x1)),
                    RawAtom::new(Term::Const(y0), RawOp::Le, Term::var(1)),
                    RawAtom::new(Term::var(1), RawOp::Le, Term::Const(y1)),
                ],
            ),
        }
    }

    /// The open box `(x0, x1) × (y0, y1)`.
    pub fn open_box(
        x0: impl Into<Rational>,
        x1: impl Into<Rational>,
        y0: impl Into<Rational>,
        y1: impl Into<Rational>,
    ) -> Region {
        let (x0, x1, y0, y1) = (x0.into(), x1.into(), y0.into(), y1.into());
        Region {
            relation: GeneralizedRelation::from_raw(
                2,
                vec![
                    RawAtom::new(Term::Const(x0), RawOp::Lt, Term::var(0)),
                    RawAtom::new(Term::var(0), RawOp::Lt, Term::Const(x1)),
                    RawAtom::new(Term::Const(y0), RawOp::Lt, Term::var(1)),
                    RawAtom::new(Term::var(1), RawOp::Lt, Term::Const(y1)),
                ],
            ),
        }
    }

    /// A single point.
    pub fn point(x: impl Into<Rational>, y: impl Into<Rational>) -> Region {
        Region {
            relation: GeneralizedRelation::from_points(2, vec![vec![x.into(), y.into()]]),
        }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &GeneralizedRelation {
        &self.relation
    }

    /// Union.
    pub fn union(&self, other: &Region) -> Region {
        Region {
            relation: self.relation.union(&other.relation),
        }
    }

    /// Intersection.
    pub fn intersect(&self, other: &Region) -> Region {
        Region {
            relation: self.relation.intersect(&other.relation),
        }
    }

    /// Complement.
    pub fn complement(&self) -> Region {
        Region {
            relation: self.relation.complement(),
        }
    }

    /// Set difference.
    pub fn difference(&self, other: &Region) -> Region {
        Region {
            relation: self.relation.difference(&other.relation),
        }
    }

    /// Membership.
    pub fn contains(&self, x: impl Into<Rational>, y: impl Into<Rational>) -> bool {
        self.relation.contains_point(&[x.into(), y.into()])
    }

    /// Emptiness.
    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// Semantic equality.
    pub fn equivalent(&self, other: &Region) -> bool {
        self.relation.equivalent(&other.relation)
    }

    /// The paper's §2 figure: a staircase-shaped shaded region assembled
    /// from rectangles with marked points `(a₁,b₁) … (a₇,b₇)` on its
    /// boundary — reconstructed here as a concrete instance used by the
    /// examples and experiment E7.
    pub fn paper_figure() -> Region {
        Region::closed_box(0, 4, 0, 2)
            .union(&Region::closed_box(2, 6, 2, 4))
            .union(&Region::closed_box(4, 8, 4, 6))
            .union(&Region::point(1, 5))
            .union(&Region::point(7, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_membership() {
        let b = Region::closed_box(0, 2, 0, 2);
        assert!(b.contains(0, 0));
        assert!(b.contains(2, 2));
        assert!(b.contains(rat(1, 2), rat(3, 2)));
        assert!(!b.contains(3, 1));
        let o = Region::open_box(0, 2, 0, 2);
        assert!(!o.contains(0, 0));
        assert!(o.contains(1, 1));
    }

    #[test]
    fn boolean_algebra() {
        let a = Region::closed_box(0, 2, 0, 2);
        let b = Region::closed_box(1, 3, 1, 3);
        let u = a.union(&b);
        assert!(u.contains(0, 0) && u.contains(3, 3));
        let i = a.intersect(&b);
        assert!(i.contains(1, 1) && i.contains(2, 2));
        assert!(!i.contains(0, 0));
        let d = a.difference(&b);
        assert!(d.contains(0, 0));
        assert!(!d.contains(2, 2));
        assert!(a.complement().contains(5, 5));
        assert!(!a.complement().contains(1, 1));
    }

    #[test]
    fn paper_figure_shape() {
        let r = Region::paper_figure();
        assert!(r.contains(1, 1)); // first step
        assert!(r.contains(5, 3)); // second step
        assert!(r.contains(7, 5)); // third step
        assert!(r.contains(1, 5)); // isolated point
        assert!(!r.contains(1, 3)); // above first step, left of second
        assert!(!r.contains(rat(1, 1), rat(11, 2))); // near but not at the point
    }

    #[test]
    fn equivalence_is_semantic() {
        let a = Region::closed_box(0, 2, 0, 1).union(&Region::closed_box(1, 3, 0, 1));
        let b = Region::closed_box(0, 3, 0, 1);
        assert!(a.equivalent(&b));
    }
}
