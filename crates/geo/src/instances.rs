//! Instance families for the region-connectivity experiment (E3).
//!
//! Theorem 4.3's proof needs, for every quantifier rank r, a *connected*
//! region and a *disconnected* region that rank-r sentences cannot tell
//! apart. Our family: **staircases** of corner-touching unit boxes
//! `[2i, 2i+1]²` joined by connector boxes — locally identical everywhere,
//! so bounded-rank FO (which is local) cannot detect whether one connector
//! somewhere in the middle is missing. The experiment encodes both regions
//! as finite slot structures (`dco-ef::bridge`) and verifies
//! EF-equivalence while `dco-geo::connectivity` distinguishes them.

use crate::region::Region;

/// A connected staircase of `n ≥ 1` steps: unit boxes `[2i, 2i+1]²` plus
/// connector boxes `[2i+1, 2i+2] × [2i, 2i+3]`-corner pieces joining
/// consecutive steps through their corners.
pub fn staircase(n: usize) -> Region {
    assert!(n >= 1);
    let mut r = Region::empty();
    for i in 0..n {
        let base = 2 * i as i64;
        r = r.union(&Region::closed_box(base, base + 1, base, base + 1));
        if i + 1 < n {
            // connector: the corner-to-corner diagonal is not definable
            // with order constraints; use the small bridging box
            // [base+1, base+2]² which shares corners with both steps.
            r = r.union(&Region::closed_box(base + 1, base + 2, base + 1, base + 2));
        }
    }
    r
}

/// The broken staircase: same as [`staircase`], but the connector after
/// step `break_at` is removed — two components, locally indistinguishable
/// from the connected one away from the gap.
pub fn broken_staircase(n: usize, break_at: usize) -> Region {
    assert!(n >= 2 && break_at + 1 < n, "need a connector to remove");
    let mut r = Region::empty();
    for i in 0..n {
        let base = 2 * i as i64;
        r = r.union(&Region::closed_box(base, base + 1, base, base + 1));
        if i + 1 < n && i != break_at {
            r = r.union(&Region::closed_box(base + 1, base + 2, base + 1, base + 2));
        }
    }
    r
}

/// A row of `n` disjoint unit boxes `[3i, 3i+1] × [0, 1]` — the maximally
/// disconnected control instance.
pub fn scattered_boxes(n: usize) -> Region {
    let mut r = Region::empty();
    for i in 0..n {
        let base = 3 * i as i64;
        r = r.union(&Region::closed_box(base, base + 1, 0, 1));
    }
    r
}

/// A horizontal bar `[0, n] × [0, 1]` built from `n` abutting unit boxes —
/// connected, same box count as [`scattered_boxes`].
pub fn bar(n: usize) -> Region {
    let mut r = Region::empty();
    for i in 0..n {
        let base = i as i64;
        r = r.union(&Region::closed_box(base, base + 1, 0, 1));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{component_count, is_connected};

    #[test]
    fn staircase_is_connected() {
        for n in 1..=4 {
            assert!(is_connected(&staircase(n)), "staircase({n})");
        }
    }

    #[test]
    fn broken_staircase_has_two_components() {
        for n in 2..=4 {
            for b in 0..n - 1 {
                assert_eq!(
                    component_count(&broken_staircase(n, b)),
                    2,
                    "broken_staircase({n},{b})"
                );
            }
        }
    }

    #[test]
    fn scattered_vs_bar() {
        assert_eq!(component_count(&scattered_boxes(4)), 4);
        assert!(is_connected(&bar(4)));
    }

    #[test]
    fn membership_spot_checks() {
        let s = staircase(2);
        assert!(s.contains(0, 0)); // first step
        assert!(s.contains(2, 2)); // second step... wait: step 1 is [2,3]²
        assert!(s.contains(3, 3));
        assert!(s.contains(2, 1)); // connector [1,2]² corner region
        assert!(!s.contains(0, 3));
    }
}
