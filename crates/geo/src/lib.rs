//! # dco-geo — the spatial layer of dense-order constraint databases
//!
//! §2 of *Dense-Order Constraint Databases* (Grumbach & Su, PODS 1995)
//! motivates the model with geographical pointsets; §3 ties queries to the
//! topology of the rational plane; Theorem 4.3 proves region connectivity
//! is not linear (FO+) while Theorem 4.4 places it in Datalog¬. This crate
//! provides planar [`region::Region`]s over the dense-order algebra, the
//! FO-definable topological operators ([`topology`]), the PTIME region
//! connectivity decision with both union-find and Datalog¬ back-ends
//! ([`connectivity`]), and the staircase instance families used by
//! experiment E3 ([`instances`]).
//!
//! ```
//! use dco_geo::region::Region;
//! use dco_geo::connectivity::is_connected;
//!
//! let two = Region::closed_box(0, 1, 0, 1).union(&Region::closed_box(5, 6, 0, 1));
//! assert!(!is_connected(&two));
//! ```

#![warn(missing_docs)]

pub mod connectivity;
pub mod instances;
pub mod region;
pub mod topology;

pub use connectivity::{component_count, is_connected, is_connected_via_datalog};
pub use region::Region;
