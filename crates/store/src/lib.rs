//! # dco-store — a persistent, concurrently-served constraint database
//!
//! The paper treats a dense-order constraint database as a *finitely
//! representable* infinite relation: what is stored is the byte string of
//! its quantifier-free representation (§3's standard encoding). This
//! crate makes that storage literal and durable, and puts a server in
//! front of it:
//!
//! * [`codec`] — length-prefixed, versioned, CRC-checksummed binary
//!   records of relations, linear tuples, and whole catalogs, layered on
//!   `dco-encoding`'s standard bit encoding (exact rationals preserved);
//! * [`wal`] — an append-only write-ahead log of catalog updates with
//!   torn-record detection;
//! * [`snapshot`] — periodic whole-catalog checkpoints published by
//!   atomic rename, with log truncation;
//! * [`store`] — the durable database: open ≡ latest valid snapshot +
//!   WAL replay; snapshot-isolated reads via immutable, atomically
//!   swapped catalog generations; writes serialized through the WAL.
//!   Fsync and append points carry [`dco_core::guard`] probes so the
//!   chaos suite can kill a write mid-append deterministically;
//! * [`server`] / [`client`] — a dependency-free `std::net` TCP server
//!   (thread per connection, capped by the `par` config) plus a matching
//!   client. Every query runs through `dco-analysis` preflight and the
//!   guarded evaluator, and a prepared-query cache keyed by formula
//!   fingerprint × catalog generation makes repeated queries cheap.
//!
//! ```no_run
//! use dco_store::{Store, StoreOptions};
//! use dco_core::prelude::*;
//!
//! let store = Store::open("/tmp/my.dco", StoreOptions::default())?;
//! store.create("r", 2)?;
//! store.insert("r", GeneralizedRelation::from_raw(2, vec![
//!     RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1)),
//! ]))?;
//! let out = store.query("r(x, y) and x >= 0")?;
//! # Ok::<(), dco_store::StoreError>(())
//! ```

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod client;
pub mod codec;
pub mod server;
pub mod snapshot;
pub mod store;
pub mod wal;
pub mod wire;

pub use client::Client;
pub use codec::{CodecError, RecordKind};
pub use server::{serve, ServerHandle};
pub use store::{Generation, QueryOutput, Store, StoreError, StoreOptions, StoreStats};
pub use wal::LogOp;
