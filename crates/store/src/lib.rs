//! # dco-store — a persistent, concurrently-served constraint database
//!
//! The paper treats a dense-order constraint database as a *finitely
//! representable* infinite relation: what is stored is the byte string of
//! its quantifier-free representation (§3's standard encoding). This
//! crate makes that storage literal and durable, and puts a server in
//! front of it:
//!
//! * [`codec`] — length-prefixed, versioned, CRC-checksummed binary
//!   records of relations, linear tuples, and whole catalogs, layered on
//!   `dco-encoding`'s standard bit encoding (exact rationals preserved);
//! * [`wal`] — an append-only write-ahead log of catalog updates with
//!   torn-record detection and a group-commit batch append (one write
//!   pass + one fsync for a whole batch of commits);
//! * [`snapshot`] — per-shard checkpoint slices published by atomic
//!   rename, with log truncation; each slice records the shard
//!   coordinates it was written under, so recovery resolves relations
//!   by newest-owner-wins even across shard-count changes;
//! * [`store`] — the durable database, sharded by relation-name
//!   fingerprint ([`store::shard_of`]): writers to different shards
//!   validate and compute successor states in parallel, a global commit
//!   sequencer assigns monotone seqs, and one *leader* per batch makes
//!   the whole batch durable before anyone is acknowledged. Reads are
//!   snapshot-isolated via immutable, atomically swapped catalog
//!   generations carrying per-shard watermarks. Open ≡ newest owning
//!   slices + WAL replay. The WAL append, batch fsync, shard
//!   publication, and slice-write instants carry [`dco_core::guard`]
//!   probes so the chaos suite can kill a commit mid-batch
//!   deterministically;
//! * [`server`] / [`client`] — a dependency-free `std::net` TCP server
//!   built on an event-driven reactor ([`reactor`]: nonblocking sockets
//!   plus `poll(2)` declared directly against the C runtime): one thread
//!   multiplexes thousands of connections through per-connection frame
//!   state machines, while a small evaluator worker pool runs the
//!   actual queries, so a slow query never stalls the event loop.
//!   Connections open with a `HELLO` protocol/codec version handshake.
//!   Every query runs through `dco-analysis` preflight and the guarded
//!   evaluator, and a prepared-query cache keyed by formula fingerprint
//!   × touched-shard watermark epoch makes repeated queries cheap —
//!   and writes to unrelated shards don't invalidate them;
//! * [`repl`] — primary→replica replication: replicas dial in with
//!   `REPL <last_seq>`, the primary streams sealed WAL records (group-
//!   commit batches verbatim) or a checkpoint when the replica is too
//!   far behind its backlog ring, and replicas apply through the same
//!   validate→publish path as local commits — replica generations are
//!   prefixes of the primary's commit order. [`repl::ReplicaClient`]
//!   fans reads across replicas and pins writes to the primary;
//! * [`netfault`] — an in-process TCP fault-injection proxy (seeded
//!   latency, torn frames, mid-frame hangups, byte corruption,
//!   slow-loris) that the network chaos suite routes clients and
//!   replicas through, asserting every fault surfaces as a typed error
//!   or a verified-correct reply — never a hang.
//!
//! Requests carry optional deadlines and budgets end to end: the wire
//! protocol propagates them ([`wire::QueryOpts`]), the server sheds
//! work it cannot finish in time (typed `OVERLOADED` /
//! `DEADLINE_EXCEEDED` replies), and the client pairs timeouts with
//! deadline-aware seeded-jitter retries and a per-endpoint circuit
//! breaker ([`client::ClientOptions`]).
//!
//! ```no_run
//! use dco_store::{Store, StoreOptions};
//! use dco_core::prelude::*;
//!
//! let store = Store::open("/tmp/my.dco", StoreOptions::default())?;
//! store.create("r", 2)?;
//! store.insert("r", GeneralizedRelation::from_raw(2, vec![
//!     RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1)),
//! ]))?;
//! let out = store.query("r(x, y) and x >= 0")?;
//! # Ok::<(), dco_store::StoreError>(())
//! ```

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod client;
pub mod codec;
pub mod netfault;
pub mod reactor;
pub mod repl;
pub mod server;
pub mod snapshot;
pub mod store;
pub mod wal;
pub mod wire;

pub use client::{Client, ClientError, ClientOptions, RetryPolicy};
pub use codec::{CodecError, RecordKind};
pub use netfault::{ConnFault, Fault, FaultProxy};
pub use repl::{replicate, ReplicaClient, ReplicaHandle};
pub use server::{serve, ServerHandle};
pub use store::{
    shard_of, Generation, QueryOutput, ReplBacklog, Store, StoreError, StoreOptions, StoreStats,
};
pub use wal::LogOp;
pub use wire::QueryOpts;
