//! In-process network fault-injection proxy.
//!
//! The transport-layer sibling of [`dco_core::guard`]'s crash-fault
//! probes: where `guard::faults` kills a commit *inside* the process at
//! a deterministic probe site, this module breaks the *wire* between
//! two processes-worth of state — a TCP relay that injects seeded
//! latency, torn frames, mid-frame hangups, byte corruption, and
//! slow-loris dribbling between a client (or replica) and a serving
//! store. `tests/store_netchaos.rs` drives it: every injected fault
//! must surface as a typed error or a verified-correct reply, never a
//! hang and never replica-state corruption.
//!
//! The proxy is std-only and runs entirely in-process: bind an
//! ephemeral listener, point the client at [`FaultProxy::addr`], and
//! each accepted connection is relayed to the upstream address with the
//! next fault from the schedule applied to one direction of the stream.
//! Connections beyond the schedule relay untouched, which is what lets
//! redial-after-fault scenarios (the replica's reconnect loop, the
//! client's retry loop) converge.
//!
//! Faults are plain data ([`Fault`], [`ConnFault`]) so tests can
//! generate them from a pinned seed ([`ConnFault::seeded`] uses the
//! same splitmix64 generator as the chaos suites) and print the failing
//! case verbatim.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Tick at which pump threads re-check the stop flag while blocked on a
/// read; also the granularity of injected delays.
const PUMP_TICK: Duration = Duration::from_millis(50);

/// One injected fault, applied to a single direction of one proxied
/// connection. Byte offsets count from the start of that direction's
/// stream, so a fault at offset 0–3 lands in the first frame's length
/// prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Relay every byte unchanged.
    None,
    /// Hold the stream back for this long before relaying anything,
    /// then relay unchanged — pure added latency.
    Delay {
        /// Injected latency in milliseconds.
        ms: u64,
    },
    /// Relay `after` bytes, then silently swallow the rest while
    /// keeping the connection open: the receiver stalls mid-frame until
    /// its own read timeout fires. This is the fault a read timeout
    /// exists to catch.
    TornFrame {
        /// Bytes relayed before the stream goes dark.
        after: u64,
    },
    /// Relay `after` bytes, then hard-close both sockets — a peer
    /// dying mid-frame.
    Hangup {
        /// Bytes relayed before the connection is destroyed.
        after: u64,
    },
    /// XOR the byte at stream offset `at` with `mask` (forced nonzero),
    /// relay everything else unchanged — a single flipped byte in
    /// flight.
    CorruptByte {
        /// Stream offset of the corrupted byte.
        at: u64,
        /// XOR mask; 0 is promoted to 1 so the byte always changes.
        mask: u8,
    },
    /// Dribble the stream one byte per pause — a slow-loris peer. Each
    /// byte still arrives within any sane read timeout, so the
    /// exchange completes, just slowly.
    SlowLoris {
        /// Pause between relayed bytes, in milliseconds.
        pause_ms: u64,
    },
}

/// Which direction of a proxied connection a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bytes flowing from the connecting client toward the upstream
    /// server (requests, replica ACKs).
    ToUpstream,
    /// Bytes flowing from the upstream server back to the client
    /// (replies, replication frames).
    ToClient,
}

/// The fault assignment for one accepted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnFault {
    /// What to inject.
    pub fault: Fault,
    /// Which direction to inject it into (the other relays untouched).
    pub direction: Direction,
}

impl ConnFault {
    /// A connection that relays both directions untouched.
    pub fn passthrough() -> ConnFault {
        ConnFault {
            fault: Fault::None,
            direction: Direction::ToClient,
        }
    }

    /// Draw a fault from a splitmix64 stream (same generator as the
    /// chaos suites, so a pinned seed reproduces the schedule). Offsets
    /// are kept small so they land in the first frames of the
    /// conversation, where all the interesting framing state lives.
    pub fn seeded(state: &mut u64) -> ConnFault {
        let r = splitmix(state);
        let direction = if r & 1 == 0 {
            Direction::ToUpstream
        } else {
            Direction::ToClient
        };
        let fault = match (r >> 1) % 6 {
            0 => Fault::None,
            1 => Fault::Delay {
                ms: 1 + (splitmix(state) % 120),
            },
            2 => Fault::TornFrame {
                after: splitmix(state) % 64,
            },
            3 => Fault::Hangup {
                after: splitmix(state) % 64,
            },
            4 => Fault::CorruptByte {
                at: splitmix(state) % 4, // inside the length prefix
                mask: (splitmix(state) % 255) as u8 + 1,
            },
            _ => Fault::SlowLoris {
                pause_ms: 1 + (splitmix(state) % 8),
            },
        };
        ConnFault { fault, direction }
    }
}

/// splitmix64, the repo's standard deterministic scatter.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Handle to a running proxy. [`FaultProxy::stop`] tears down the
/// listener, every live relay, and joins all threads; dropping the
/// handle without stopping leaks the threads until process exit (fine
/// in tests, which always stop).
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Start a relay on an ephemeral local port toward `upstream`. The
    /// `i`-th accepted connection gets `schedule[i]`; connections past
    /// the end of the schedule relay untouched.
    pub fn start(upstream: impl Into<String>, schedule: Vec<ConnFault>) -> io::Result<FaultProxy> {
        let upstream = upstream.into();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let stop = stop.clone();
            let conns = conns.clone();
            Some(std::thread::spawn(move || {
                accept_loop(&listener, &upstream, &schedule, &stop, &conns)
            }))
        };
        Ok(FaultProxy {
            addr,
            stop,
            conns,
            accept_thread,
        })
    }

    /// The address clients should dial instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, destroy every live relay, and join all threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for s in plock(&self.conns).drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: &str,
    schedule: &[ConnFault],
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
) {
    let mut next = 0usize;
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let assigned = schedule
                    .get(next)
                    .copied()
                    .unwrap_or_else(ConnFault::passthrough);
                next += 1;
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                {
                    let mut live = plock(conns);
                    if let Ok(c) = client.try_clone() {
                        live.push(c);
                    }
                    if let Ok(s) = server.try_clone() {
                        live.push(s);
                    }
                }
                let (up_fault, down_fault) = match assigned.direction {
                    Direction::ToUpstream => (assigned.fault, Fault::None),
                    Direction::ToClient => (Fault::None, assigned.fault),
                };
                if let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) {
                    let stop_up = stop.clone();
                    let stop_down = stop.clone();
                    pumps.push(std::thread::spawn(move || {
                        pump(client, server, up_fault, &stop_up)
                    }));
                    pumps.push(std::thread::spawn(move || {
                        pump(s2, c2, down_fault, &stop_down)
                    }));
                } else {
                    let _ = client.shutdown(Shutdown::Both);
                    let _ = server.shutdown(Shutdown::Both);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for p in pumps {
        let _ = p.join();
    }
}

/// Sleep `ms` in stop-aware ticks.
fn tick_sleep(ms: u64, stop: &AtomicBool) {
    let mut left = Duration::from_millis(ms);
    while !left.is_zero() && !stop.load(Ordering::SeqCst) {
        let step = left.min(PUMP_TICK);
        std::thread::sleep(step);
        left -= step;
    }
}

/// Relay one direction of one connection, applying `fault`. Exits on
/// EOF (propagated as a write-side shutdown so half-closes behave),
/// transport failure, an exhausted fault (hangup), or the stop flag.
fn pump(mut from: TcpStream, mut to: TcpStream, fault: Fault, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(PUMP_TICK));
    let _ = to.set_write_timeout(Some(Duration::from_secs(5)));
    let mut seen: u64 = 0; // bytes read off `from` so far
    let mut delayed = false;
    let mut buf = [0u8; 8 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => {
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
        };
        let mut chunk = buf[..n].to_vec();
        let offset = seen;
        seen += n as u64;
        match fault {
            Fault::None => {}
            Fault::Delay { ms } => {
                if !delayed {
                    tick_sleep(ms, stop);
                    delayed = true;
                }
            }
            Fault::TornFrame { after } => {
                if offset >= after {
                    continue; // swallow: the stream has gone dark
                }
                chunk.truncate((after - offset).min(n as u64) as usize);
                if chunk.is_empty() {
                    continue;
                }
            }
            Fault::Hangup { after } => {
                if offset >= after {
                    let _ = from.shutdown(Shutdown::Both);
                    let _ = to.shutdown(Shutdown::Both);
                    return;
                }
                chunk.truncate((after - offset).min(n as u64) as usize);
            }
            Fault::CorruptByte { at, mask } => {
                if at >= offset && at < offset + n as u64 {
                    chunk[(at - offset) as usize] ^= mask.max(1);
                }
            }
            Fault::SlowLoris { pause_ms } => {
                for &b in &chunk {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    if to.write_all(&[b]).is_err() {
                        let _ = from.shutdown(Shutdown::Both);
                        return;
                    }
                    tick_sleep(pause_ms, stop);
                }
                continue;
            }
        }
        if to.write_all(&chunk).is_err() {
            let _ = from.shutdown(Shutdown::Both);
            return;
        }
        if let Fault::Hangup { after } = fault {
            if seen >= after {
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// An echo server good for one line per connection.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 256];
                let Ok(n) = s.read(&mut buf) else { break };
                if n == 0 || s.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        });
        (addr, t)
    }

    #[test]
    fn passthrough_relays_and_corrupt_flips_exactly_one_byte() {
        let (up, _t) = echo_server();
        let proxy = FaultProxy::start(
            up.to_string(),
            vec![
                ConnFault::passthrough(),
                ConnFault {
                    fault: Fault::CorruptByte { at: 2, mask: 0xFF },
                    direction: Direction::ToClient,
                },
            ],
        )
        .unwrap();

        let mut clean = TcpStream::connect(proxy.addr()).unwrap();
        clean
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        clean.write_all(b"hello").unwrap();
        let mut got = [0u8; 5];
        clean.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello");

        let mut dirty = TcpStream::connect(proxy.addr()).unwrap();
        dirty
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        dirty.write_all(b"hello").unwrap();
        dirty.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"he\x93lo", "byte 2 XOR 0xFF");

        proxy.stop();
    }

    #[test]
    fn hangup_closes_and_torn_frame_stalls_until_the_read_timeout() {
        let (up, _t) = echo_server();
        let proxy = FaultProxy::start(
            up.to_string(),
            vec![
                ConnFault {
                    fault: Fault::Hangup { after: 2 },
                    direction: Direction::ToClient,
                },
                ConnFault {
                    fault: Fault::TornFrame { after: 0 },
                    direction: Direction::ToUpstream,
                },
            ],
        )
        .unwrap();

        // Hangup: at most 2 bytes arrive, then EOF/reset — never a hang.
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        let mut total = 0;
        loop {
            match c.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => total += n,
            }
        }
        assert!(total <= 2, "hangup relayed {total} bytes, cap is 2");

        // Torn request: the echo server never hears us, so the read
        // times out instead of hanging.
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        c.write_all(b"hello").unwrap();
        let err = c.read(&mut buf).expect_err("stalled stream must time out");
        assert!(matches!(
            err.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ));

        proxy.stop();
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let mut a = 42u64;
        let mut b = 42u64;
        let sa: Vec<ConnFault> = (0..32).map(|_| ConnFault::seeded(&mut a)).collect();
        let sb: Vec<ConnFault> = (0..32).map(|_| ConnFault::seeded(&mut b)).collect();
        assert_eq!(sa, sb);
    }
}
