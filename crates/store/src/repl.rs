//! WAL-streaming read replicas and a read-fanout client.
//!
//! A replica is an ordinary [`Store`] (own directory, own WAL, own
//! snapshots) kept in sync by a background thread that dials the
//! primary, announces its last applied seq with `REPL <seq>`, and
//! applies whatever the primary streams back:
//!
//! - **Batch frames** (`b'B'` + concatenated sealed WAL records): the
//!   primary's group-commit output forwarded verbatim. The replica
//!   validates every record (envelope, CRC, seq contiguity, op
//!   applicability) *before* touching its own WAL, then appends the
//!   primary's bytes unchanged and publishes through the same
//!   validate→publish path local commits use — so a replica generation
//!   is always a prefix of the primary's commit order, and replica
//!   reads are snapshot-isolated exactly like primary reads.
//! - **Checkpoint frames** (`b'S'` + a snapshot slice): sent when the
//!   replica is too far behind the primary's backlog ring to catch up
//!   record-by-record; installed atomically as a new baseline.
//!
//! Every applied frame is acknowledged with `ACK <seq>`, which feeds
//! the primary's `repl_lag` gauge. A torn stream (bad CRC, seq gap,
//! short record) never corrupts the replica: validation rejects the
//! frame while the store is still untouched, the connection is dropped,
//! and the next dial resumes from the last *applied* seq.
//!
//! [`ReplicaClient`] is the routing layer: reads round-robin across
//! replicas (failing over to the next replica, then the primary),
//! writes always pin to the primary.

use crate::client::{backoff_with_jitter, Client, ClientError, RetryPolicy};
use crate::store::{QueryOutput, Store, StoreError};
use crate::{snapshot, wal, wire};
use dco_core::prelude::GeneralizedRelation;
use std::io::{self, Read};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// First redial pause after a broken replica connection; consecutive
/// failures double it (with seeded jitter) up to [`RECONNECT_CAP`], and
/// a session that actually reached streaming resets the ladder.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(100);

/// Redial backoff ceiling.
const RECONNECT_CAP: Duration = Duration::from_secs(5);

/// Deterministic redial backoff for consecutive failure `attempt`
/// (0-based). Shares the client's seeded-jitter generator so chaos runs
/// with a pinned seed replay the exact redial schedule.
fn reconnect_backoff(attempt: u32, jitter_state: &mut u64) -> Duration {
    let policy = RetryPolicy {
        attempts: u32::MAX,
        base: RECONNECT_BACKOFF,
        cap: RECONNECT_CAP,
        seed: 0, // unused: the caller threads jitter_state explicitly
    };
    backoff_with_jitter(&policy, attempt, jitter_state)
}

/// Read timeout on the replica's socket: the granularity at which the
/// stream loop notices a shutdown request.
const STREAM_TICK: Duration = Duration::from_millis(100);

/// How long a partially-received frame may sit without a single new
/// byte before the stream is declared wedged and redialed; also bounds
/// the whole wait for a handshake reply. An idle stream with *no*
/// partial frame is legitimate (a quiet primary) and never trips this —
/// but a peer that stalls mid-frame (torn frame, corrupted length
/// prefix pointing past the data) would otherwise hang the stream
/// forever.
const STALL_TIMEOUT: Duration = Duration::from_secs(5);

/// Live counters for one replication stream.
#[derive(Default)]
pub struct ReplStatus {
    last_applied: AtomicU64,
    connected: AtomicBool,
    resyncs: AtomicU64,
    batches: AtomicU64,
    bytes: AtomicU64,
    /// Mirror of `last_applied` under a lock, so waiters can park on
    /// the condvar instead of busy-polling the atomic.
    applied: Mutex<u64>,
    applied_cv: Condvar,
}

impl ReplStatus {
    /// Seq of the last record durably applied to the replica store.
    pub fn last_applied(&self) -> u64 {
        self.last_applied.load(Ordering::SeqCst)
    }

    /// Publish a newly applied seq: lock-free readers see the atomic,
    /// parked [`ReplicaHandle::wait_for_seq`] callers are woken through
    /// the condvar.
    fn note_applied(&self, seq: u64) {
        self.last_applied.store(seq, Ordering::SeqCst);
        *plock(&self.applied) = seq;
        self.applied_cv.notify_all();
    }

    /// Whether the stream to the primary is currently up.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    /// Checkpoint resyncs performed (replica fell off the backlog ring).
    pub fn resyncs(&self) -> u64 {
        self.resyncs.load(Ordering::SeqCst)
    }

    /// Batch frames applied.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::SeqCst)
    }

    /// Replication payload bytes received.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::SeqCst)
    }
}

impl std::fmt::Debug for ReplStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplStatus")
            .field("last_applied", &self.last_applied())
            .field("connected", &self.is_connected())
            .field("resyncs", &self.resyncs())
            .finish()
    }
}

/// Handle to a running replication stream. [`ReplicaHandle::shutdown`]
/// stops the background thread; dropping the handle does not.
#[derive(Debug)]
pub struct ReplicaHandle {
    stop: Arc<AtomicBool>,
    status: Arc<ReplStatus>,
    /// Clone of the live socket, so shutdown can unblock a read in
    /// progress instead of waiting out its timeout tick.
    conn: Arc<Mutex<Option<TcpStream>>>,
    thread: Option<JoinHandle<()>>,
}

impl ReplicaHandle {
    /// The stream's live counters.
    pub fn status(&self) -> &ReplStatus {
        &self.status
    }

    /// Seq of the last record applied to the replica.
    pub fn last_applied(&self) -> u64 {
        self.status.last_applied()
    }

    /// Whether the stream to the primary is currently up.
    pub fn is_connected(&self) -> bool {
        self.status.is_connected()
    }

    /// Block until the replica has applied `seq` or `timeout` passes.
    /// Returns whether the seq was reached. Waiters park on a condvar
    /// the apply path notifies, so they wake at the apply that crosses
    /// `seq` instead of polling.
    pub fn wait_for_seq(&self, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut applied = plock(&self.status.applied);
        while *applied < seq {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, wait) = self
                .status
                .applied_cv
                .wait_timeout(applied, remaining)
                .unwrap_or_else(|p| p.into_inner());
            applied = guard;
            if wait.timed_out() && *applied < seq {
                return false;
            }
        }
        true
    }

    /// Stop streaming and join the background thread. The replica
    /// store itself stays open and serves reads at its last applied
    /// generation.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(s) = plock(&self.conn).take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Start replicating `primary` into `store` (which should be an empty
/// or previously-replicated directory — its seq must come from the
/// primary's history). Returns immediately; the stream runs on a
/// background thread and redials with backoff until shut down, so it
/// survives primary restarts.
pub fn replicate(store: Store, primary: impl Into<String>) -> ReplicaHandle {
    let primary = primary.into();
    let stop = Arc::new(AtomicBool::new(false));
    let status = Arc::new(ReplStatus::default());
    let conn: Arc<Mutex<Option<TcpStream>>> = Arc::new(Mutex::new(None));
    status.note_applied(store.read().seq);
    let thread = {
        let stop = stop.clone();
        let status = status.clone();
        let conn = conn.clone();
        std::thread::spawn(move || {
            let mut attempt = 0u32;
            let mut jitter_state = 0xD1A1_5EED_u64;
            while !stop.load(Ordering::SeqCst) {
                let outcome = run_stream(&store, &primary, &stop, &status, &conn);
                // A session that reached streaming resets the backoff
                // ladder: the next failure is a fresh incident, not the
                // continuation of this one.
                if status.is_connected() {
                    attempt = 0;
                }
                *plock(&conn) = None;
                status.connected.store(false, Ordering::SeqCst);
                match outcome {
                    StreamEnd::Stopped => break,
                    StreamEnd::StoreDown => break, // wounded store: stop, don't hammer
                    StreamEnd::Disconnected => {
                        // Torn stream or dead primary: redial and resume
                        // from the last seq we actually applied, waiting
                        // out a capped-exponential, seeded-jitter pause
                        // so a down primary isn't hammered at a fixed
                        // cadence. A shutdown sets `stop` before
                        // shutting the socket, so the EOF it provokes
                        // must not pay the redial backoff.
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(reconnect_backoff(attempt, &mut jitter_state));
                        attempt = attempt.saturating_add(1);
                    }
                }
            }
        })
    };
    ReplicaHandle {
        stop,
        status,
        conn,
        thread: Some(thread),
    }
}

enum StreamEnd {
    /// Shutdown was requested.
    Stopped,
    /// Transport failed or the primary sent an unusable frame; redial.
    Disconnected,
    /// The replica store refused an apply (unhealthy / version drift);
    /// retrying cannot help.
    StoreDown,
}

/// Dial the primary and pump one replication session.
fn run_stream(
    store: &Store,
    primary: &str,
    stop: &AtomicBool,
    status: &ReplStatus,
    conn: &Mutex<Option<TcpStream>>,
) -> StreamEnd {
    let Ok(stream) = TcpStream::connect(primary) else {
        return StreamEnd::Disconnected;
    };
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(STREAM_TICK)).is_err() {
        return StreamEnd::Disconnected;
    }
    *plock(conn) = stream.try_clone().ok();
    if stop.load(Ordering::SeqCst) {
        return StreamEnd::Stopped; // raced a shutdown during the dial
    }
    let mut stream = stream;
    let mut rbuf: Vec<u8> = Vec::new();

    // Version handshake first: a primary from a different protocol or
    // WAL codec generation refuses us here, before any record flows.
    let hello = format!(
        "HELLO {} {}",
        wire::PROTOCOL_VERSION,
        crate::codec::FORMAT_VERSION
    );
    if wire::write_frame(&mut stream, &hello).is_err() {
        return StreamEnd::Disconnected;
    }
    match next_text_frame(&mut stream, &mut rbuf, stop) {
        Some(reply) if reply.starts_with("OK ") => {}
        Some(_) => return StreamEnd::StoreDown, // typed version mismatch
        None => {
            return if stop.load(Ordering::SeqCst) {
                StreamEnd::Stopped
            } else {
                StreamEnd::Disconnected
            }
        }
    }

    // Announce where our history ends; the primary streams from there.
    let from = store.read().seq;
    if wire::write_frame(&mut stream, &format!("REPL {from}")).is_err() {
        return StreamEnd::Disconnected;
    }
    match next_text_frame(&mut stream, &mut rbuf, stop) {
        Some(reply) if reply.starts_with("OK repl") => {}
        Some(_) => return StreamEnd::StoreDown,
        None => {
            return if stop.load(Ordering::SeqCst) {
                StreamEnd::Stopped
            } else {
                StreamEnd::Disconnected
            }
        }
    }
    status.connected.store(true, Ordering::SeqCst);

    loop {
        let frame = match next_frame(&mut stream, &mut rbuf, stop, None) {
            Ok(Some(f)) => f,
            Ok(None) => return StreamEnd::Stopped,
            Err(_) => return StreamEnd::Disconnected,
        };
        status.bytes.fetch_add(frame.len() as u64, Ordering::SeqCst);
        let applied = match frame.split_first() {
            Some((&wire::REPL_FRAME_BATCH, body)) => {
                let records = match wal::split_records(body) {
                    Ok(r) => r,
                    Err(_) => return StreamEnd::Disconnected, // torn mid-flight
                };
                match store.apply_replicated(records) {
                    Ok(seq) => {
                        status.batches.fetch_add(1, Ordering::SeqCst);
                        seq
                    }
                    // A stream the validator rejects (gap, bad op) is a
                    // transport problem: resume from the applied prefix.
                    Err(StoreError::Codec(_)) | Err(StoreError::Invalid(_)) => {
                        return StreamEnd::Disconnected
                    }
                    Err(_) => return StreamEnd::StoreDown,
                }
            }
            Some((&wire::REPL_FRAME_CHECKPOINT, body)) => {
                let slice = match snapshot::decode_slice(body) {
                    Ok(s) => s,
                    Err(_) => return StreamEnd::Disconnected,
                };
                let seq = slice.seq;
                match store.install_checkpoint(seq, slice.relations) {
                    Ok(()) => {
                        status.resyncs.fetch_add(1, Ordering::SeqCst);
                        seq
                    }
                    Err(StoreError::Codec(_)) | Err(StoreError::Invalid(_)) => {
                        return StreamEnd::Disconnected
                    }
                    Err(_) => return StreamEnd::StoreDown,
                }
            }
            _ => return StreamEnd::Disconnected, // not a replication frame
        };
        status.note_applied(applied);
        if wire::write_frame(&mut stream, &format!("ACK {applied}")).is_err() {
            return StreamEnd::Disconnected;
        }
    }
}

/// Read one frame, ticking the socket timeout so `stop` is honored.
/// `Ok(None)` = stop requested; `Err` = transport failure, EOF, a frame
/// stalled mid-flight past [`STALL_TIMEOUT`], or `overall` elapsing.
fn next_frame(
    stream: &mut TcpStream,
    rbuf: &mut Vec<u8>,
    stop: &AtomicBool,
    overall: Option<Instant>,
) -> io::Result<Option<Vec<u8>>> {
    let mut chunk = [0u8; 16 * 1024];
    let mut last_progress = Instant::now();
    loop {
        if let Some(frame) = wire::take_frame(rbuf)? {
            return Ok(Some(frame));
        }
        if stop.load(Ordering::SeqCst) {
            return Ok(None);
        }
        let now = Instant::now();
        if !rbuf.is_empty() && now.duration_since(last_progress) >= STALL_TIMEOUT {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "replication frame stalled mid-flight",
            ));
        }
        if overall.is_some_and(|d| now >= d) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "timed out waiting for a reply",
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => {
                rbuf.extend_from_slice(&chunk[..n]);
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// [`next_frame`] narrowed to UTF-8 (handshake replies), with the whole
/// wait bounded by [`STALL_TIMEOUT`] — a healthy peer answers a
/// handshake immediately, so an absent reply means the connection is
/// wedged, not idle. `None` folds together stop, timeout, EOF, and
/// non-text frames; callers disambiguate via the stop flag.
fn next_text_frame(
    stream: &mut TcpStream,
    rbuf: &mut Vec<u8>,
    stop: &AtomicBool,
) -> Option<String> {
    match next_frame(stream, rbuf, stop, Some(Instant::now() + STALL_TIMEOUT)) {
        Ok(Some(frame)) => String::from_utf8(frame).ok(),
        _ => None,
    }
}

/// Routing client: reads round-robin across replicas with failover,
/// writes pin to the primary. Like [`Client`], not thread-safe — one
/// per thread.
///
/// With [`ReplicaClient::with_max_lag`] the routing inverts into a
/// freshness-first mode: reads pin to the primary, and when the primary
/// sheds a read with `OVERLOADED` the client degrades to a replica —
/// but only one whose answer is within `max_lag` generations of the
/// newest primary seq this client has observed. Bounded-stale answers
/// under overload instead of errors; unboundedly-stale answers never.
#[derive(Debug)]
pub struct ReplicaClient {
    primary_addr: String,
    replica_addrs: Vec<String>,
    primary: Option<Client>,
    replicas: Vec<Option<Client>>,
    next: usize,
    /// Staleness bound (in generations) for overload-degraded reads;
    /// `None` keeps the default replica-first routing.
    max_lag: Option<u64>,
    /// Highest primary seq observed through this client (write acks and
    /// primary read generations) — the freshness yardstick replicas are
    /// measured against.
    write_high: u64,
}

impl ReplicaClient {
    /// Build a router over one primary and any number of replicas.
    /// Connections are dialed lazily and redialed after failures.
    pub fn new(primary: impl Into<String>, replicas: Vec<String>) -> ReplicaClient {
        let n = replicas.len();
        ReplicaClient {
            primary_addr: primary.into(),
            replica_addrs: replicas,
            primary: None,
            replicas: (0..n).map(|_| None).collect(),
            next: 0,
            max_lag: None,
            write_high: 0,
        }
    }

    /// Switch reads to freshness-first routing: primary first, and on
    /// `OVERLOADED` degrade to a replica at most `lag` generations
    /// behind the newest primary seq this client has observed.
    pub fn with_max_lag(mut self, lag: u64) -> ReplicaClient {
        self.max_lag = Some(lag);
        self
    }

    /// The pinned write connection (dialed on first use).
    pub fn primary(&mut self) -> Result<&mut Client, ClientError> {
        if self.primary.is_none() {
            self.primary = Some(Client::connect(&self.primary_addr)?);
        }
        self.primary
            .as_mut()
            .ok_or_else(|| ClientError::Protocol("primary connection unavailable".into()))
    }

    /// Evaluate a read. Default routing: a replica, failing over to the
    /// next replica, then the primary. With [`Self::with_max_lag`]:
    /// the primary, degrading to a bounded-staleness replica only when
    /// the primary sheds the read with `OVERLOADED`. The result carries
    /// the generation it was computed against, so callers can see
    /// replica staleness.
    pub fn query(&mut self, formula: &str) -> Result<QueryOutput, ClientError> {
        let line = format!("QUERY {formula}");
        if self.max_lag.is_none() {
            let body = self.read_call(&line)?;
            return wire::query_output_from_json(&body).map_err(ClientError::Protocol);
        }
        match self.on_primary(|c| c.call(&line)) {
            Ok(body) => {
                let out = wire::query_output_from_json(&body).map_err(ClientError::Protocol)?;
                self.write_high = self.write_high.max(out.generation);
                Ok(out)
            }
            Err(ClientError::Overloaded { retry_after_ms }) => self
                .query_replica_bounded(&line)
                .ok_or(ClientError::Overloaded { retry_after_ms }),
            Err(e) => Err(e),
        }
    }

    /// Degraded read path: sweep the replicas once from the round-robin
    /// cursor and return the first answer within `max_lag` generations
    /// of the newest observed primary seq. `None` = no replica close
    /// enough (the caller surfaces the primary's original error).
    fn query_replica_bounded(&mut self, line: &str) -> Option<QueryOutput> {
        let bound = self.max_lag?;
        let n = self.replica_addrs.len();
        for attempt in 0..n {
            let i = (self.next + attempt) % n;
            if self.replicas[i].is_none() {
                match Client::connect(self.replica_addrs[i].as_str()) {
                    Ok(c) => self.replicas[i] = Some(c),
                    Err(_) => continue,
                }
            }
            let Some(conn) = self.replicas[i].as_mut() else {
                continue;
            };
            match conn.call(line) {
                Ok(body) => {
                    let Ok(out) = wire::query_output_from_json(&body) else {
                        self.replicas[i] = None;
                        continue;
                    };
                    if self.write_high.saturating_sub(out.generation) <= bound {
                        self.next = (i + 1) % n.max(1);
                        return Some(out);
                    }
                    // Too stale: the connection is healthy, the data is
                    // just behind — leave it up and try the next one.
                }
                Err(_) => self.replicas[i] = None,
            }
        }
        None
    }

    /// `EXPLAIN` on a replica, with the same failover as [`Self::query`].
    pub fn explain(&mut self, formula: &str) -> Result<String, ClientError> {
        self.read_call(&format!("EXPLAIN {formula}"))
    }

    /// Declare a relation on the primary; returns the committed seq.
    pub fn create(&mut self, name: &str, arity: u32) -> Result<u64, ClientError> {
        self.write_seq(|c| c.create(name, arity))
    }

    /// Drop a relation on the primary; returns the committed seq.
    pub fn drop_relation(&mut self, name: &str) -> Result<u64, ClientError> {
        self.write_seq(|c| c.drop_relation(name))
    }

    /// Union tuples on the primary; returns the committed seq.
    pub fn insert(&mut self, name: &str, rel: &GeneralizedRelation) -> Result<u64, ClientError> {
        self.write_seq(|c| c.insert(name, rel))
    }

    /// Remove subsumed tuples on the primary; returns the committed seq.
    pub fn remove_subsumed(
        &mut self,
        name: &str,
        rel: &GeneralizedRelation,
    ) -> Result<u64, ClientError> {
        self.write_seq(|c| c.remove_subsumed(name, rel))
    }

    /// Replace a relation's instance on the primary; returns the seq.
    pub fn replace(&mut self, name: &str, rel: &GeneralizedRelation) -> Result<u64, ClientError> {
        self.write_seq(|c| c.replace(name, rel))
    }

    /// A primary write whose committed seq advances the freshness
    /// yardstick degraded reads are bounded against.
    fn write_seq(
        &mut self,
        f: impl FnOnce(&mut Client) -> Result<u64, ClientError>,
    ) -> Result<u64, ClientError> {
        let seq = self.on_primary(f)?;
        self.write_high = self.write_high.max(seq);
        Ok(seq)
    }

    fn on_primary<T>(
        &mut self,
        f: impl FnOnce(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let out = f(self.primary()?);
        if matches!(
            out,
            Err(ClientError::Io(_)) | Err(ClientError::Timeout(_)) | Err(ClientError::Protocol(_))
        ) {
            self.primary = None; // redial next time
        }
        out
    }

    /// Route one read: try each replica once starting from the round-
    /// robin cursor, then fall back to the primary. `ERR` replies are
    /// authoritative answers and end the search; only transport and
    /// framing failures fail over.
    fn read_call(&mut self, line: &str) -> Result<String, ClientError> {
        let n = self.replica_addrs.len();
        for attempt in 0..n {
            let i = (self.next + attempt) % n;
            if self.replicas[i].is_none() {
                match Client::connect(&self.replica_addrs[i]) {
                    Ok(c) => self.replicas[i] = Some(c),
                    Err(_) => continue,
                }
            }
            let Some(conn) = self.replicas[i].as_mut() else {
                continue;
            };
            match conn.call(line) {
                Ok(body) => {
                    self.next = (i + 1) % n.max(1);
                    return Ok(body);
                }
                Err(ClientError::Server(m)) => return Err(ClientError::Server(m)),
                Err(_) => self.replicas[i] = None, // dead: fail over
            }
        }
        self.on_primary(|c| c.call(line))
    }
}
