//! Binary codec: length-prefixed, versioned, checksummed records.
//!
//! §3 of the paper makes the *standard encoding* of a database — the byte
//! string of its quantifier-free representation — the data-complexity
//! input measure. This module turns that measure into an actual on-disk
//! format. The bit-level layer is `dco-encoding`'s self-delimiting prefix
//! code ([`dco_encoding::bits`]); this module wraps it in what a durable
//! store additionally needs:
//!
//! * a **record envelope** — magic, format version, record kind, payload
//!   length, and a CRC-32 trailer — so torn or corrupted records are
//!   *detected*, never silently decoded;
//! * **exact rationals** throughout (zigzag-varint numerator, varint
//!   denominator — never floats);
//! * payload codecs for [`GeneralizedRelation`] (delegated to the
//!   standard bit encoding), [`LinTuple`] (the FO+ fragment, which the bit
//!   encoding does not cover), and whole [`Database`] catalogs.
//!
//! Every `decode_*` is a strict inverse of its `encode_*`: the store's
//! property suite round-trips 128 seeded instances per type and demands
//! structural equality, not mere equivalence.

use dco_core::prelude::{Database, GeneralizedRelation, Rational, Schema};
use dco_encoding::bits::{decode_relation, encode_relation, BitVec};
use dco_linear::{LinAtom, LinTuple, NormalizedAtom};
use std::fmt;

/// Codec format version; bumped on any incompatible layout change.
pub const FORMAT_VERSION: u8 = 1;

/// Record-envelope magic (`b"DCO\x01"` little-endian).
pub const RECORD_MAGIC: u32 = 0x01_4F_43_44;

/// What a record envelope carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// One serialized [`GeneralizedRelation`].
    Relation,
    /// One serialized [`LinTuple`].
    LinTuple,
    /// A whole catalog ([`Database`]) — the snapshot payload.
    Catalog,
    /// One write-ahead-log operation ([`crate::wal::LogOp`]).
    WalOp,
}

impl RecordKind {
    fn to_u8(self) -> u8 {
        match self {
            RecordKind::Relation => 1,
            RecordKind::LinTuple => 2,
            RecordKind::Catalog => 3,
            RecordKind::WalOp => 4,
        }
    }

    fn from_u8(b: u8) -> Option<RecordKind> {
        match b {
            1 => Some(RecordKind::Relation),
            2 => Some(RecordKind::LinTuple),
            3 => Some(RecordKind::Catalog),
            4 => Some(RecordKind::WalOp),
            _ => None,
        }
    }
}

/// Why a decode failed. [`CodecError::Torn`] is special: it means the
/// input *ends* mid-record (a crashed append), which recovery treats as
/// "discard the tail", while every other variant is genuine corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ends before the declared record length — a torn append.
    Torn,
    /// The envelope magic or version did not match.
    BadEnvelope(&'static str),
    /// The CRC-32 trailer did not match the payload.
    ChecksumMismatch,
    /// The payload bytes did not decode as the declared kind.
    BadPayload(String),
    /// The record kind differs from what the caller expected.
    WrongKind {
        /// Kind the caller asked for.
        expected: RecordKind,
        /// Kind found in the envelope.
        found: RecordKind,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Torn => f.write_str("record truncated (torn append)"),
            CodecError::BadEnvelope(what) => write!(f, "bad record envelope: {what}"),
            CodecError::ChecksumMismatch => f.write_str("record checksum mismatch"),
            CodecError::BadPayload(what) => write!(f, "bad record payload: {what}"),
            CodecError::WrongKind { expected, found } => {
                write!(f, "expected {expected:?} record, found {found:?}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected).
// ---------------------------------------------------------------------

/// CRC-32 of `bytes` (IEEE polynomial — the zlib/ethernet checksum).
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Byte-level primitives.
// ---------------------------------------------------------------------

/// Append-only byte buffer with the codec's primitive writers.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty buffer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Raw bytes, verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Fixed-width little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Fixed-width little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// LEB128 varint.
    pub fn put_varint(&mut self, mut v: u128) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzag-encoded signed varint.
    pub fn put_signed(&mut self, v: i128) {
        // Zigzag: interleave negatives so small magnitudes stay short.
        let zig = ((v << 1) ^ (v >> 127)) as u128;
        self.put_varint(zig);
    }

    /// Exact rational: zigzag numerator, varint denominator.
    pub fn put_rational(&mut self, r: &Rational) {
        self.put_signed(r.numer());
        self.put_varint(r.denom() as u128);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varint(s.len() as u128);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a byte slice with the codec's primitive readers.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Raw bytes, verbatim.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Torn);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Fixed-width little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let mut w = [0u8; 4];
        w.copy_from_slice(self.get_bytes(4)?);
        Ok(u32::from_le_bytes(w))
    }

    /// Fixed-width little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let mut w = [0u8; 8];
        w.copy_from_slice(self.get_bytes(8)?);
        Ok(u64::from_le_bytes(w))
    }

    /// LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u128> {
        let mut v = 0u128;
        let mut shift = 0u32;
        loop {
            let byte = self.get_bytes(1)?[0];
            if shift >= 128 {
                return Err(CodecError::BadPayload("varint overlong".into()));
            }
            v |= ((byte & 0x7F) as u128) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Zigzag-encoded signed varint.
    pub fn get_signed(&mut self) -> Result<i128> {
        let zig = self.get_varint()?;
        Ok(((zig >> 1) as i128) ^ -((zig & 1) as i128))
    }

    /// Exact rational.
    pub fn get_rational(&mut self) -> Result<Rational> {
        let numer = self.get_signed()?;
        let denom = self.get_varint()?;
        let denom = i128::try_from(denom)
            .map_err(|_| CodecError::BadPayload("rational denominator overflow".into()))?;
        Rational::new(numer, denom)
            .map_err(|e| CodecError::BadPayload(format!("invalid rational: {e}")))
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_varint()? as usize;
        let bytes = self.get_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::BadPayload("invalid UTF-8 in string".into()))
    }
}

// ---------------------------------------------------------------------
// Record envelope.
// ---------------------------------------------------------------------

/// Wrap `payload` in the record envelope:
/// `magic ‖ version ‖ kind ‖ len(payload) ‖ payload ‖ crc32`.
///
/// The CRC covers version, kind, length, and payload, so a bit flip
/// anywhere inside the record (headers included) is detected.
pub fn seal_record(kind: RecordKind, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(RECORD_MAGIC);
    w.put_bytes(&[FORMAT_VERSION, kind.to_u8()]);
    w.put_u32(payload.len() as u32);
    w.put_bytes(payload);
    let body = w.into_bytes();
    let crc = crc32(&body[4..]);
    let mut w = ByteWriter { buf: body };
    w.put_u32(crc);
    w.into_bytes()
}

/// Inverse of [`seal_record`]: verify the envelope and checksum, return
/// the payload and the total number of bytes the record occupied.
pub fn open_record(bytes: &[u8], expected: RecordKind) -> Result<(&[u8], usize)> {
    let mut r = ByteReader::new(bytes);
    let magic = r.get_u32()?;
    if magic != RECORD_MAGIC {
        return Err(CodecError::BadEnvelope("magic mismatch"));
    }
    let head = r.get_bytes(2)?;
    if head[0] != FORMAT_VERSION {
        return Err(CodecError::BadEnvelope("unsupported format version"));
    }
    let kind =
        RecordKind::from_u8(head[1]).ok_or(CodecError::BadEnvelope("unknown record kind"))?;
    let len = r.get_u32()? as usize;
    let payload = r.get_bytes(len)?;
    let crc = r.get_u32()?;
    let covered = &bytes[4..10 + len];
    if crc32(covered) != crc {
        return Err(CodecError::ChecksumMismatch);
    }
    if kind != expected {
        return Err(CodecError::WrongKind {
            expected,
            found: kind,
        });
    }
    Ok((payload, 14 + len))
}

// ---------------------------------------------------------------------
// Payload codecs.
// ---------------------------------------------------------------------

/// Relation payload: bit length, then the standard bit encoding's bytes.
pub fn put_relation(w: &mut ByteWriter, rel: &GeneralizedRelation) {
    let bits = encode_relation(rel);
    w.put_varint(bits.len() as u128);
    w.put_bytes(&bits.to_bytes());
}

/// Inverse of [`put_relation`].
pub fn get_relation(r: &mut ByteReader) -> Result<GeneralizedRelation> {
    let bit_len = r.get_varint()? as usize;
    let bytes = r.get_bytes(bit_len.div_ceil(8))?;
    let bits = BitVec::from_bytes(bytes, bit_len)
        .ok_or_else(|| CodecError::BadPayload("bit length exceeds payload".into()))?;
    decode_relation(&bits).map_err(|e| CodecError::BadPayload(e.to_string()))
}

/// Encode one relation as a standalone sealed record.
pub fn encode_relation_record(rel: &GeneralizedRelation) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_relation(&mut w, rel);
    seal_record(RecordKind::Relation, &w.into_bytes())
}

/// Decode a standalone relation record.
pub fn decode_relation_record(bytes: &[u8]) -> Result<GeneralizedRelation> {
    let (payload, _) = open_record(bytes, RecordKind::Relation)?;
    let mut r = ByteReader::new(payload);
    let rel = get_relation(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::BadPayload(
            "trailing bytes after relation".into(),
        ));
    }
    Ok(rel)
}

/// Linear-tuple payload: arity, atom count, then per atom the operator,
/// dense coefficient vector, and constant — all rationals exact.
pub fn put_lin_tuple(w: &mut ByteWriter, t: &LinTuple) {
    use dco_core::prelude::CompOp;
    w.put_varint(t.arity() as u128);
    w.put_varint(t.atoms().len() as u128);
    for a in t.atoms() {
        w.put_bytes(&[match a.op() {
            CompOp::Lt => 0,
            CompOp::Le => 1,
            CompOp::Eq => 2,
        }]);
        for c in a.coeffs() {
            w.put_rational(c);
        }
        w.put_rational(a.constant());
    }
}

/// Inverse of [`put_lin_tuple`].
pub fn get_lin_tuple(r: &mut ByteReader) -> Result<LinTuple> {
    use dco_core::prelude::CompOp;
    let arity = r.get_varint()? as u32;
    let natoms = r.get_varint()? as usize;
    let mut atoms = Vec::with_capacity(natoms);
    for _ in 0..natoms {
        let op = match r.get_bytes(1)?[0] {
            0 => CompOp::Lt,
            1 => CompOp::Le,
            2 => CompOp::Eq,
            _ => return Err(CodecError::BadPayload("unknown comparison op".into())),
        };
        let coeffs = (0..arity)
            .map(|_| r.get_rational())
            .collect::<Result<Vec<_>>>()?;
        let constant = r.get_rational()?;
        // Atoms written by `put_lin_tuple` come out of a `LinTuple`, so
        // they are already in canonical normalized form and re-normalize
        // to themselves; a trivial outcome means corrupted input.
        match LinAtom::normalize(coeffs, constant, op) {
            NormalizedAtom::Atom(a) => atoms.push(a),
            _ => return Err(CodecError::BadPayload("trivial linear atom".into())),
        }
    }
    Ok(LinTuple::from_atoms(arity, atoms))
}

/// Encode one linear tuple as a standalone sealed record.
pub fn encode_lin_tuple_record(t: &LinTuple) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_lin_tuple(&mut w, t);
    seal_record(RecordKind::LinTuple, &w.into_bytes())
}

/// Decode a standalone linear-tuple record.
pub fn decode_lin_tuple_record(bytes: &[u8]) -> Result<LinTuple> {
    let (payload, _) = open_record(bytes, RecordKind::LinTuple)?;
    let mut r = ByteReader::new(payload);
    let t = get_lin_tuple(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::BadPayload("trailing bytes after tuple".into()));
    }
    Ok(t)
}

/// Catalog payload: relation count, then per relation its name and the
/// standard-encoded instance. The schema is implied (name ↦ arity), which
/// keeps the snapshot exactly the paper's "byte string of the
/// quantifier-free representation" plus names.
pub fn put_database(w: &mut ByteWriter, db: &Database) {
    let rels: Vec<_> = db.relations().collect();
    w.put_varint(rels.len() as u128);
    for (name, rel) in rels {
        w.put_str(name);
        put_relation(w, rel);
    }
}

/// Inverse of [`put_database`].
pub fn get_database(r: &mut ByteReader) -> Result<Database> {
    let n = r.get_varint()? as usize;
    let mut entries = Vec::with_capacity(n);
    let mut schema = Schema::new();
    for _ in 0..n {
        let name = r.get_str()?;
        let rel = get_relation(r)?;
        schema = schema.with(&name, rel.arity());
        entries.push((name, rel));
    }
    let mut db = Database::new(schema);
    for (name, rel) in entries {
        db.set(&name, rel)
            .map_err(|e| CodecError::BadPayload(e.to_string()))?;
    }
    Ok(db)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_core::prelude::*;

    fn triangle() -> GeneralizedRelation {
        GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(0), RawOp::Ge, Term::cst(rat(0, 1))),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        )
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_varint(0);
        w.put_varint(127);
        w.put_varint(128);
        w.put_varint(u64::MAX as u128);
        w.put_signed(0);
        w.put_signed(-1);
        w.put_signed(i64::MIN as i128);
        w.put_rational(&rat(-7, 3));
        w.put_str("héllo wörld");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_varint().unwrap(), 0);
        assert_eq!(r.get_varint().unwrap(), 127);
        assert_eq!(r.get_varint().unwrap(), 128);
        assert_eq!(r.get_varint().unwrap(), u64::MAX as u128);
        assert_eq!(r.get_signed().unwrap(), 0);
        assert_eq!(r.get_signed().unwrap(), -1);
        assert_eq!(r.get_signed().unwrap(), i64::MIN as i128);
        assert_eq!(r.get_rational().unwrap(), rat(-7, 3));
        assert_eq!(r.get_str().unwrap(), "héllo wörld");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn relation_record_roundtrips_structurally() {
        let rel = triangle();
        let bytes = encode_relation_record(&rel);
        let back = decode_relation_record(&bytes).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn corrupted_record_is_rejected() {
        let mut bytes = encode_relation_record(&triangle());
        // Flip one payload bit: checksum must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            decode_relation_record(&bytes),
            Err(CodecError::ChecksumMismatch) | Err(CodecError::BadEnvelope(_))
        ));
    }

    #[test]
    fn truncated_record_is_torn() {
        let bytes = encode_relation_record(&triangle());
        for cut in [0, 3, 9, bytes.len() - 1] {
            assert_eq!(
                decode_relation_record(&bytes[..cut]).unwrap_err(),
                CodecError::Torn,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn lin_tuple_record_roundtrips_structurally() {
        let t = LinTuple::from_atoms(
            2,
            vec![
                LinAtom::new(vec![rat(1, 1), rat(1, 1)], rat(-5, 2), CompOp::Le),
                LinAtom::new(vec![rat(2, 3), rat(-1, 1)], rat(0, 1), CompOp::Lt),
            ],
        );
        let back = decode_lin_tuple_record(&encode_lin_tuple_record(&t)).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.fingerprint(), t.fingerprint());
    }

    #[test]
    fn database_roundtrips_with_empty_relations() {
        let db = Database::new(Schema::new().with("R", 2).with("Empty", 3)).with("R", triangle());
        let mut w = ByteWriter::new();
        put_database(&mut w, &db);
        let bytes = w.into_bytes();
        let back = get_database(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn wrong_kind_is_reported() {
        let bytes = encode_relation_record(&triangle());
        assert!(matches!(
            open_record(&bytes, RecordKind::Catalog),
            Err(CodecError::WrongKind { .. })
        ));
    }
}
