//! Dependency-free readiness polling for the event-driven server.
//!
//! `std` gives us nonblocking sockets but no readiness API, and pulling
//! in `mio`/`libc` is off the table — the engine is dependency-free. On
//! Unix this module declares the one C symbol it needs, `poll(2)` (POSIX
//! since 2001), against the C runtime Rust already links, with the
//! `pollfd` layout transcribed from the ABI. `poll` over `epoll` is a
//! deliberate trade: the reactor rebuilds its fd array every tick, which
//! is O(n) per iteration — immaterial at the ~1k-connection scale the
//! soak test pins, and it keeps the unsafe surface to a single foreign
//! function. On non-Unix targets a portable fallback sleeps a short tick
//! and reports every descriptor ready, letting the nonblocking I/O
//! discover the truth (correct, merely busier).
//!
//! The wake token is the classic self-pipe trick: an anonymous pipe
//! (`std::io::pipe`) whose read end sits in the poll set, plus a dirty
//! flag so that an idle notifier writes at most one byte per wakeup —
//! which is why the pipe can never fill up and block a committer. This
//! replaces the old loopback self-connect shutdown hack: waking the
//! reactor is a flag flip and (at most) a one-byte pipe write.

use std::io::{self, PipeReader, PipeWriter, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Readiness: data to read (or a pending accept).
pub const POLLIN: i16 = 0x001;
/// Readiness: writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Condition: error on the descriptor (reported even when unrequested).
pub const POLLERR: i16 = 0x008;
/// Condition: peer hung up (reported even when unrequested).
pub const POLLHUP: i16 = 0x010;

/// Raw descriptor type registered with the poller.
#[cfg(unix)]
pub type OsFd = std::os::fd::RawFd;
/// Raw descriptor type registered with the poller (ignored by the
/// non-Unix fallback, which reports readiness without asking the OS).
#[cfg(not(unix))]
pub type OsFd = i64;

/// One descriptor's registration — ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// Descriptor to watch.
    pub fd: OsFd,
    /// Requested readiness events (`POLLIN | POLLOUT`).
    pub events: i16,
    /// Kernel-reported events; valid after [`poll`] returns.
    pub revents: i16,
}

impl PollFd {
    /// Registration for `fd` with `events` requested.
    pub fn new(fd: OsFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel flagged any event in `mask`.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }
}

#[cfg(unix)]
mod sys {
    // `nfds_t` is `unsigned long` on Linux, `unsigned int` elsewhere.
    #[cfg(target_os = "linux")]
    pub type NFds = u64;
    #[cfg(not(target_os = "linux"))]
    pub type NFds = u32;

    extern "C" {
        pub fn poll(fds: *mut super::PollFd, nfds: NFds, timeout: i32) -> i32;
    }
}

/// Wait until a registered descriptor is ready or `timeout_ms` elapses
/// (`-1` = forever). Signal interruptions are retried internally.
/// Returns the number of descriptors with nonzero `revents`.
#[cfg(unix)]
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as sys::NFds, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Portable fallback: sleep a short tick and report every requested
/// event as ready. The reactor's I/O is nonblocking and tolerates
/// spurious readiness (`WouldBlock` is a no-op), so this is correct —
/// it only trades CPU for the missing readiness API.
#[cfg(not(unix))]
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let tick = if timeout_ms < 0 { 5 } else { timeout_ms.min(5) };
    std::thread::sleep(std::time::Duration::from_millis(tick.max(1) as u64));
    for fd in fds.iter_mut() {
        fd.revents = fd.events;
    }
    Ok(fds.len())
}

/// The notifying side of a reactor wakeup: shared with committers,
/// worker threads, and the shutdown handle. See [`wake_pair`].
pub struct WakeToken {
    dirty: AtomicBool,
    tx: Mutex<PipeWriter>,
}

impl WakeToken {
    /// Wake the poll loop. Cheap and idempotent between wakeups: the
    /// first notifier after a drain writes one byte into the pipe;
    /// everyone else just sees the dirty flag already set.
    pub fn notify(&self) {
        if !self.dirty.swap(true, Ordering::SeqCst) {
            let mut tx = self.tx.lock().unwrap_or_else(|p| p.into_inner());
            let _ = tx.write(&[1]);
        }
    }
}

impl std::fmt::Debug for WakeToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakeToken")
            .field("dirty", &self.dirty.load(Ordering::Relaxed))
            .finish()
    }
}

/// The pollable side of a [`WakeToken`]: owned by the reactor thread,
/// its fd sits in the poll set.
#[derive(Debug)]
pub struct WakeReader {
    rx: PipeReader,
}

impl WakeReader {
    /// The fd to register with `POLLIN`.
    #[cfg(unix)]
    pub fn fd(&self) -> OsFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// The fd to register with `POLLIN` (dummy on non-Unix: the fallback
    /// poller never inspects descriptors).
    #[cfg(not(unix))]
    pub fn fd(&self) -> OsFd {
        -1
    }

    /// Consume pending wakeups. Clears the dirty flag *before* reading
    /// so a notify racing with the drain writes a fresh byte (an extra
    /// wakeup) rather than being lost; the invariant "bytes in pipe ≤
    /// undrained dirty transitions" keeps the bounded read from ever
    /// blocking.
    pub fn drain(&mut self, token: &WakeToken) {
        if token.dirty.swap(false, Ordering::SeqCst) {
            let mut buf = [0u8; 64];
            let _ = self.rx.read(&mut buf);
        }
    }
}

/// Create a connected wake token + pollable reader pair.
pub fn wake_pair() -> io::Result<(Arc<WakeToken>, WakeReader)> {
    let (rx, tx) = io::pipe()?;
    Ok((
        Arc::new(WakeToken {
            dirty: AtomicBool::new(false),
            tx: Mutex::new(tx),
        }),
        WakeReader { rx },
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn wake_token_rouses_a_poller() {
        let (token, mut reader) = wake_pair().unwrap();
        let notifier = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                token.notify();
                token.notify(); // coalesces: still one byte in the pipe
            })
        };
        let mut fds = [PollFd::new(reader.fd(), POLLIN)];
        let n = poll(&mut fds, 5_000).unwrap();
        assert!(n >= 1, "poll must wake on the pipe byte");
        reader.drain(&token);
        notifier.join().unwrap();
        // Drained: an immediate re-poll times out instead of spinning.
        let mut fds = [PollFd::new(reader.fd(), POLLIN)];
        #[cfg(unix)]
        assert_eq!(poll(&mut fds, 50).unwrap(), 0);
    }

    #[test]
    fn poll_times_out_on_a_silent_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            let mut fds = [PollFd::new(stream.as_raw_fd(), POLLIN)];
            assert_eq!(poll(&mut fds, 50).unwrap(), 0, "no data: timeout");
            let mut fds = [PollFd::new(stream.as_raw_fd(), POLLOUT)];
            assert!(poll(&mut fds, 1_000).unwrap() >= 1, "fresh socket writable");
            assert!(fds[0].ready(POLLOUT));
        }
    }
}
