//! Wire protocol shared by server and client.
//!
//! Framing: every message is a 4-byte big-endian length followed by that
//! many bytes of UTF-8 text, capped at [`MAX_FRAME`] (oversized frames
//! are a protocol error, not an allocation). Requests are single-line
//! commands; responses start with `OK` or `ERR`:
//!
//! | request                     | response                          |
//! |-----------------------------|-----------------------------------|
//! | `PING`                      | `OK pong`                         |
//! | `QUERY <formula>`           | `OK {json query output}`          |
//! | `EXPLAIN <formula>`         | `OK {json plan tree}`             |
//! | `CREATE <name> <arity>`     | `OK <seq>`                        |
//! | `DROP <name>`               | `OK <seq>`                        |
//! | `INSERT <name> <json rel>`  | `OK <seq>`                        |
//! | `REMOVE <name> <json rel>`  | `OK <seq>`                        |
//! | `REPLACE <name> <json rel>` | `OK <seq>`                        |
//! | `SNAPSHOT`                  | `OK <bytes>`                      |
//! | `STATS`                     | `OK {json counters}`              |
//! | `CLOSE`                     | `OK bye`, then the peer hangs up  |
//!
//! Relations travel as `dco-encoding` JSON (exact rationals as strings);
//! the query output object is `{"generation":n,"cached":0|1,`
//! `"columns":[...],"relation":{...}}`. The `STATS` counters object
//! carries `generation`, `relations`, `shards`, `commits`, `batches`,
//! `fsyncs`, `commit_batch_max` (group-commit observability: under
//! concurrent writers `fsyncs/commits` drops toward `1/batch`),
//! and the prepared-cache counters `cache_hits`/`cache_misses`/
//! `cache_entries`.

use crate::store::{ExplainOutput, QueryOutput};
use dco_analysis::explain::PlanNode;
use dco_encoding::{relation_from_json, relation_to_json, Json};
use std::io::{self, Read, Write};

/// Hard cap on a single frame (64 MiB) — bounds allocation per peer.
pub const MAX_FRAME: usize = 64 << 20;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, msg: &str) -> io::Result<()> {
    let bytes = msg.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds 64 MiB cap",
        ));
    }
    // One write per frame: header+body split across packets would
    // otherwise trip Nagle/delayed-ACK stalls on loopback.
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame. `Ok(None)` means the peer closed the connection
/// cleanly (EOF at a frame boundary).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds 64 MiB cap",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Evaluate a formula against the current generation.
    Query(String),
    /// Plan and evaluate a formula, returning the measured plan tree
    /// (estimated and actual cardinality per node) instead of the
    /// relation.
    Explain(String),
    /// Declare a relation.
    Create(String, u32),
    /// Drop a relation.
    Drop(String),
    /// Union tuples (JSON relation) into a relation.
    Insert(String, String),
    /// Remove subsumed tuples (JSON relation) from a relation.
    Remove(String, String),
    /// Replace a relation's instance (JSON relation).
    Replace(String, String),
    /// Force a snapshot.
    Snapshot,
    /// Fetch store counters.
    Stats,
    /// End the session.
    Close,
}

/// Parse one request line. Errors are human-readable fragments suitable
/// for an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let name_and_body = |rest: &str| -> Result<(String, String), String> {
        match rest.split_once(char::is_whitespace) {
            Some((name, body)) => Ok((name.to_string(), body.trim().to_string())),
            None => Err(format!("`{verb}` needs a relation name and a body")),
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "PING" => Ok(Request::Ping),
        "QUERY" if !rest.is_empty() => Ok(Request::Query(rest.to_string())),
        "QUERY" => Err("`QUERY` needs a formula".into()),
        "EXPLAIN" if !rest.is_empty() => Ok(Request::Explain(rest.to_string())),
        "EXPLAIN" => Err("`EXPLAIN` needs a formula".into()),
        "CREATE" => {
            let (name, arity) = name_and_body(rest)?;
            let arity: u32 = arity
                .parse()
                .map_err(|_| format!("`CREATE {name}`: bad arity `{arity}`"))?;
            Ok(Request::Create(name, arity))
        }
        "DROP" if !rest.is_empty() => Ok(Request::Drop(rest.to_string())),
        "DROP" => Err("`DROP` needs a relation name".into()),
        "INSERT" => name_and_body(rest).map(|(n, b)| Request::Insert(n, b)),
        "REMOVE" => name_and_body(rest).map(|(n, b)| Request::Remove(n, b)),
        "REPLACE" => name_and_body(rest).map(|(n, b)| Request::Replace(n, b)),
        "SNAPSHOT" => Ok(Request::Snapshot),
        "STATS" => Ok(Request::Stats),
        "CLOSE" => Ok(Request::Close),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Render a query output as the wire's JSON object.
pub fn query_output_to_json(out: &QueryOutput) -> String {
    Json::Obj(vec![
        ("generation".into(), Json::Num(out.generation as f64)),
        (
            "cached".into(),
            Json::Num(if out.cached { 1.0 } else { 0.0 }),
        ),
        (
            "columns".into(),
            Json::Arr(out.columns.iter().map(|c| Json::Str(c.clone())).collect()),
        ),
        ("relation".into(), relation_to_json(&out.relation)),
    ])
    .compact()
}

/// Render an EXPLAIN output as the wire's JSON object: generation, the
/// planned formula text, output columns, and the recursive plan tree.
/// Every node carries `est` and `act`; an unmeasured `act` encodes as -1
/// (this wire JSON has no null).
pub fn explain_output_to_json(out: &ExplainOutput) -> String {
    Json::Obj(vec![
        ("generation".into(), Json::Num(out.generation as f64)),
        ("planned".into(), Json::Str(out.plan.planned.clone())),
        (
            "columns".into(),
            Json::Arr(out.columns.iter().map(|c| Json::Str(c.clone())).collect()),
        ),
        ("plan".into(), plan_node_to_json(&out.plan.root)),
    ])
    .compact()
}

fn plan_node_to_json(n: &PlanNode) -> Json {
    Json::Obj(vec![
        ("label".into(), Json::Str(n.label.clone())),
        ("detail".into(), Json::Str(n.detail.clone())),
        ("est".into(), Json::Num(n.estimated)),
        ("act".into(), Json::Num(n.actual.map_or(-1.0, |a| a as f64))),
        (
            "children".into(),
            Json::Arr(n.children.iter().map(plan_node_to_json).collect()),
        ),
    ])
}

/// Parse the wire's JSON object back into a [`QueryOutput`] (with
/// `stats` absent — the wire does not carry guard statistics).
pub fn query_output_from_json(src: &str) -> Result<QueryOutput, String> {
    let v = dco_encoding::parse_json(src).map_err(|e| e.to_string())?;
    let num = |k: &str| -> Result<f64, String> {
        v.get(k)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("query output missing numeric `{k}`"))
    };
    let columns = v
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or("query output missing `columns` array")?
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_string)
                .ok_or_else(|| "column must be a string".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let rel_json = v.get("relation").ok_or("query output missing `relation`")?;
    let relation = relation_from_json(rel_json).map_err(|e| e.to_string())?;
    Ok(QueryOutput {
        generation: num("generation")? as u64,
        cached: num("cached")? != 0.0,
        columns,
        relation,
        stats: None,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "QUERY R(x, y)").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "QUERY R(x, y)");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "PING").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_frame_is_refused_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn request_grammar() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(
            parse_request("query exists y . R(x, y)").unwrap(),
            Request::Query("exists y . R(x, y)".into())
        );
        assert_eq!(
            parse_request("CREATE r 2").unwrap(),
            Request::Create("r".into(), 2)
        );
        assert_eq!(parse_request("DROP r").unwrap(), Request::Drop("r".into()));
        assert!(parse_request("INSERT r").is_err());
        assert!(parse_request("CREATE r two").is_err());
        assert!(parse_request("FROB").is_err());
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("CLOSE").unwrap(), Request::Close);
    }
}
