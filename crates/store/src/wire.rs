//! Wire protocol shared by server and client.
//!
//! Framing: every message is a 4-byte big-endian length followed by that
//! many bytes of UTF-8 text, capped at [`MAX_FRAME`] (oversized frames
//! are a protocol error, not an allocation). Requests are single-line
//! commands; responses start with `OK` or `ERR`:
//!
//! | request                     | response                          |
//! |-----------------------------|-----------------------------------|
//! | `HELLO <proto> <codec>`     | `OK <proto> <codec>`              |
//! | `PING`                      | `OK pong`                         |
//! | `QUERY <formula>`           | `OK {json query output}`          |
//! | `EXPLAIN <formula>`         | `OK {json plan tree}`             |
//! | `CREATE <name> <arity>`     | `OK <seq>`                        |
//! | `DROP <name>`               | `OK <seq>`                        |
//! | `INSERT <name> <json rel>`  | `OK <seq>`                        |
//! | `REMOVE <name> <json rel>`  | `OK <seq>`                        |
//! | `REPLACE <name> <json rel>` | `OK <seq>`                        |
//! | `SNAPSHOT`                  | `OK <bytes>`                      |
//! | `STATS`                     | `OK {json counters}`              |
//! | `REPL <last_seq>`           | `OK repl <seq>`, then streaming   |
//! | `CLOSE`                     | `OK bye`, then the peer hangs up  |
//!
//! Relations travel as `dco-encoding` JSON (exact rationals as strings);
//! the query output object is `{"generation":n,"cached":0|1,`
//! `"columns":[...],"relation":{...}}`. The `STATS` counters object
//! carries `generation`, `relations`, `shards`, `commits`, `batches`,
//! `fsyncs`, `commit_batch_max` (group-commit observability: under
//! concurrent writers `fsyncs/commits` drops toward `1/batch`),
//! the prepared-cache counters `cache_hits`/`cache_misses`/
//! `cache_entries`, and the serving/replication counters `conns_open`,
//! `conns_total`, `queued_requests`, `backpressure_stalls`,
//! `repl_streams`, `repl_lag`, `repl_bytes`.
//!
//! ## Version handshake
//!
//! A well-behaved peer's *first* frame is `HELLO <proto> <codec>`:
//! the wire [`PROTOCOL_VERSION`] plus the WAL codec
//! [`FORMAT_VERSION`](crate::codec::FORMAT_VERSION) it was built
//! against. A mismatch on either is answered with a typed
//! `ERR version mismatch …` (see `StoreError::VersionMismatch`) and the
//! connection is closed — *before* any replication bytes flow, so an
//! incompatible replica fails the handshake instead of dying on a CRC
//! error mid-stream. Servers still accept peers that skip the handshake
//! (the pre-handshake dialect is a strict subset).
//!
//! ## Replication stream
//!
//! `REPL <last_seq>` upgrades the connection: after the `OK repl <seq>`
//! acknowledgement (carrying the primary's current generation), the
//! server pushes *binary* frames (same 4-byte length framing) whose
//! first payload byte is a tag:
//!
//! * [`REPL_FRAME_BATCH`] (`'B'`) — concatenated sealed WAL records,
//!   byte-identical to the primary's log, in seq order (group-commit
//!   batches forwarded as-is);
//! * [`REPL_FRAME_CHECKPOINT`] (`'S'`) — a full catalog checkpoint as
//!   one snapshot slice (shard 0 of 1), sent when the requested seq has
//!   already left the primary's retained backlog window.
//!
//! The replica applies each frame and answers with a text frame
//! `ACK <seq>`; the primary folds those into its `repl_lag` gauge.

use crate::store::{ExplainOutput, QueryOutput};
use dco_analysis::explain::PlanNode;
use dco_encoding::{relation_from_json, relation_to_json, Json};
use std::io::{self, Read, Write};

/// Hard cap on a single frame (64 MiB) — bounds allocation per peer.
pub const MAX_FRAME: usize = 64 << 20;

/// Wire protocol version announced in the `HELLO` handshake. Version 1
/// is the pre-handshake dialect (no `HELLO`, no `REPL`); version 2
/// added both. Bump on any framing or verb-semantics change.
pub const PROTOCOL_VERSION: u32 = 2;

/// Tag byte of a binary replication frame carrying concatenated sealed
/// WAL records (a forwarded group-commit batch).
pub const REPL_FRAME_BATCH: u8 = b'B';

/// Tag byte of a binary replication frame carrying a full catalog
/// checkpoint (one snapshot slice, shard 0 of 1).
pub const REPL_FRAME_CHECKPOINT: u8 = b'S';

/// Write one length-prefixed text frame.
pub fn write_frame(w: &mut impl Write, msg: &str) -> io::Result<()> {
    write_frame_bytes(w, msg.as_bytes())
}

/// Write one length-prefixed frame of raw bytes (replication frames).
pub fn write_frame_bytes(w: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds 64 MiB cap",
        ));
    }
    // One write per frame: header+body split across packets would
    // otherwise trip Nagle/delayed-ACK stalls on loopback.
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// Frame a payload for hand-off to a buffered writer (the reactor's
/// per-connection write buffer): header + body, no I/O.
pub fn frame_bytes(bytes: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    frame
}

/// Read one text frame. `Ok(None)` means the peer closed the connection
/// cleanly (EOF at a frame boundary).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    match read_frame_bytes(r)? {
        None => Ok(None),
        Some(buf) => String::from_utf8(buf)
            .map(Some)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8")),
    }
}

/// Read one frame as raw bytes (replication frames are not UTF-8).
/// `Ok(None)` means the peer closed cleanly at a frame boundary.
pub fn read_frame_bytes(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds 64 MiB cap",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Pop one complete frame off an accumulation buffer (the reactor's
/// nonblocking read path). `Ok(None)` = not enough bytes yet; errors
/// are protocol violations (oversized frame) that must close the
/// connection.
pub fn take_frame(buf: &mut Vec<u8>) -> io::Result<Option<Vec<u8>>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds 64 MiB cap",
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let frame = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(frame))
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake: wire protocol version + WAL codec version the
    /// peer was built against.
    Hello(u32, u8),
    /// Liveness check.
    Ping,
    /// Evaluate a formula against the current generation.
    Query(String),
    /// Plan and evaluate a formula, returning the measured plan tree
    /// (estimated and actual cardinality per node) instead of the
    /// relation.
    Explain(String),
    /// Declare a relation.
    Create(String, u32),
    /// Drop a relation.
    Drop(String),
    /// Union tuples (JSON relation) into a relation.
    Insert(String, String),
    /// Remove subsumed tuples (JSON relation) from a relation.
    Remove(String, String),
    /// Replace a relation's instance (JSON relation).
    Replace(String, String),
    /// Force a snapshot.
    Snapshot,
    /// Fetch store counters.
    Stats,
    /// Upgrade this connection to a replication stream, resuming after
    /// the given last-applied seq.
    Repl(u64),
    /// End the session.
    Close,
}

/// Parse one request line. Errors are human-readable fragments suitable
/// for an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let name_and_body = |rest: &str| -> Result<(String, String), String> {
        match rest.split_once(char::is_whitespace) {
            Some((name, body)) => Ok((name.to_string(), body.trim().to_string())),
            None => Err(format!("`{verb}` needs a relation name and a body")),
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "HELLO" => {
            let (proto, codec) = rest
                .split_once(char::is_whitespace)
                .ok_or("`HELLO` needs a protocol and a codec version")?;
            let proto: u32 = proto
                .trim()
                .parse()
                .map_err(|_| format!("`HELLO`: bad protocol version `{proto}`"))?;
            let codec: u8 = codec
                .trim()
                .parse()
                .map_err(|_| format!("`HELLO`: bad codec version `{codec}`"))?;
            Ok(Request::Hello(proto, codec))
        }
        "PING" => Ok(Request::Ping),
        "QUERY" if !rest.is_empty() => Ok(Request::Query(rest.to_string())),
        "QUERY" => Err("`QUERY` needs a formula".into()),
        "EXPLAIN" if !rest.is_empty() => Ok(Request::Explain(rest.to_string())),
        "EXPLAIN" => Err("`EXPLAIN` needs a formula".into()),
        "CREATE" => {
            let (name, arity) = name_and_body(rest)?;
            let arity: u32 = arity
                .parse()
                .map_err(|_| format!("`CREATE {name}`: bad arity `{arity}`"))?;
            Ok(Request::Create(name, arity))
        }
        "DROP" if !rest.is_empty() => Ok(Request::Drop(rest.to_string())),
        "DROP" => Err("`DROP` needs a relation name".into()),
        "INSERT" => name_and_body(rest).map(|(n, b)| Request::Insert(n, b)),
        "REMOVE" => name_and_body(rest).map(|(n, b)| Request::Remove(n, b)),
        "REPLACE" => name_and_body(rest).map(|(n, b)| Request::Replace(n, b)),
        "SNAPSHOT" => Ok(Request::Snapshot),
        "STATS" => Ok(Request::Stats),
        "REPL" => {
            let seq: u64 = rest
                .parse()
                .map_err(|_| format!("`REPL`: bad last-applied seq `{rest}`"))?;
            Ok(Request::Repl(seq))
        }
        "CLOSE" => Ok(Request::Close),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Render a query output as the wire's JSON object.
pub fn query_output_to_json(out: &QueryOutput) -> String {
    Json::Obj(vec![
        ("generation".into(), Json::Num(out.generation as f64)),
        (
            "cached".into(),
            Json::Num(if out.cached { 1.0 } else { 0.0 }),
        ),
        (
            "columns".into(),
            Json::Arr(out.columns.iter().map(|c| Json::Str(c.clone())).collect()),
        ),
        ("relation".into(), relation_to_json(&out.relation)),
    ])
    .compact()
}

/// Render an EXPLAIN output as the wire's JSON object: generation, the
/// planned formula text, output columns, and the recursive plan tree.
/// Every node carries `est` and `act`; an unmeasured `act` encodes as -1
/// (this wire JSON has no null).
pub fn explain_output_to_json(out: &ExplainOutput) -> String {
    Json::Obj(vec![
        ("generation".into(), Json::Num(out.generation as f64)),
        ("planned".into(), Json::Str(out.plan.planned.clone())),
        (
            "columns".into(),
            Json::Arr(out.columns.iter().map(|c| Json::Str(c.clone())).collect()),
        ),
        ("plan".into(), plan_node_to_json(&out.plan.root)),
    ])
    .compact()
}

fn plan_node_to_json(n: &PlanNode) -> Json {
    Json::Obj(vec![
        ("label".into(), Json::Str(n.label.clone())),
        ("detail".into(), Json::Str(n.detail.clone())),
        ("est".into(), Json::Num(n.estimated)),
        ("act".into(), Json::Num(n.actual.map_or(-1.0, |a| a as f64))),
        (
            "children".into(),
            Json::Arr(n.children.iter().map(plan_node_to_json).collect()),
        ),
    ])
}

/// Parse the wire's JSON object back into a [`QueryOutput`] (with
/// `stats` absent — the wire does not carry guard statistics).
pub fn query_output_from_json(src: &str) -> Result<QueryOutput, String> {
    let v = dco_encoding::parse_json(src).map_err(|e| e.to_string())?;
    let num = |k: &str| -> Result<f64, String> {
        v.get(k)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("query output missing numeric `{k}`"))
    };
    let columns = v
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or("query output missing `columns` array")?
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_string)
                .ok_or_else(|| "column must be a string".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let rel_json = v.get("relation").ok_or("query output missing `relation`")?;
    let relation = relation_from_json(rel_json).map_err(|e| e.to_string())?;
    Ok(QueryOutput {
        generation: num("generation")? as u64,
        cached: num("cached")? != 0.0,
        columns,
        relation,
        stats: None,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "QUERY R(x, y)").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "QUERY R(x, y)");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "PING").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_frame_is_refused_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn request_grammar() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(
            parse_request("query exists y . R(x, y)").unwrap(),
            Request::Query("exists y . R(x, y)".into())
        );
        assert_eq!(
            parse_request("CREATE r 2").unwrap(),
            Request::Create("r".into(), 2)
        );
        assert_eq!(parse_request("DROP r").unwrap(), Request::Drop("r".into()));
        assert!(parse_request("INSERT r").is_err());
        assert!(parse_request("CREATE r two").is_err());
        assert!(parse_request("FROB").is_err());
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("CLOSE").unwrap(), Request::Close);
        assert_eq!(parse_request("HELLO 2 1").unwrap(), Request::Hello(2, 1));
        assert_eq!(parse_request("hello 2 1").unwrap(), Request::Hello(2, 1));
        assert!(parse_request("HELLO 2").is_err());
        assert!(parse_request("HELLO x y").is_err());
        assert_eq!(parse_request("REPL 42").unwrap(), Request::Repl(42));
        assert!(parse_request("REPL").is_err());
        assert!(parse_request("REPL -1").is_err());
    }

    #[test]
    fn take_frame_handles_partial_and_pipelined_input() {
        let mut buf = Vec::new();
        assert_eq!(take_frame(&mut buf).unwrap(), None, "empty");
        // Two pipelined frames plus a partial third.
        buf.extend_from_slice(&frame_bytes(b"PING"));
        buf.extend_from_slice(&frame_bytes(b"STATS"));
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.push(b'x');
        assert_eq!(take_frame(&mut buf).unwrap().unwrap(), b"PING");
        assert_eq!(take_frame(&mut buf).unwrap().unwrap(), b"STATS");
        assert_eq!(take_frame(&mut buf).unwrap(), None, "incomplete body");
        buf.extend_from_slice(b"yz");
        assert_eq!(take_frame(&mut buf).unwrap().unwrap(), b"xyz");
        assert!(buf.is_empty());
        // Oversized declared length is a protocol error, not an alloc.
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(take_frame(&mut buf).is_err());
    }

    #[test]
    fn byte_frames_roundtrip_binary_payloads() {
        let payload = [REPL_FRAME_BATCH, 0x00, 0xff, 0x80];
        let mut buf = Vec::new();
        write_frame_bytes(&mut buf, &payload).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame_bytes(&mut r).unwrap().unwrap(), payload);
        assert_eq!(read_frame_bytes(&mut r).unwrap(), None);
        // The same bytes are not a valid *text* frame.
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }
}
