//! Wire protocol shared by server and client.
//!
//! Framing: every message is a 4-byte big-endian length followed by that
//! many bytes of UTF-8 text, capped at [`MAX_FRAME`] (oversized frames
//! are a protocol error, not an allocation). Requests are single-line
//! commands; responses start with `OK` or `ERR`:
//!
//! | request                     | response                          |
//! |-----------------------------|-----------------------------------|
//! | `HELLO <proto> <codec>`     | `OK <proto> <codec>`              |
//! | `PING`                      | `OK pong`                         |
//! | `QUERY [@opts] <formula>`   | `OK {json query output}`          |
//! | `EXPLAIN [@opts] <formula>` | `OK {json plan tree}`             |
//! | `CREATE <name> <arity>`     | `OK <seq>`                        |
//! | `DROP <name>`               | `OK <seq>`                        |
//! | `INSERT <name> <json rel>`  | `OK <seq>`                        |
//! | `REMOVE <name> <json rel>`  | `OK <seq>`                        |
//! | `REPLACE <name> <json rel>` | `OK <seq>`                        |
//! | `SNAPSHOT`                  | `OK <bytes>`                      |
//! | `STATS`                     | `OK {json counters}`              |
//! | `METRICS`                   | `OK <prometheus text exposition>` |
//! | `VERSION`                   | `OK {json build info}`            |
//! | `SLOWLOG`                   | `OK [json slow-query entries]`    |
//! | `REPL <last_seq>`           | `OK repl <seq>`, then streaming   |
//! | `CLOSE`                     | `OK bye`, then the peer hangs up  |
//!
//! Relations travel as `dco-encoding` JSON (exact rationals as strings);
//! the query output object is `{"generation":n,"cached":0|1,`
//! `"columns":[...],"relation":{...}}`. The `STATS` counters object
//! carries `generation`, `relations`, `shards`, `commits`, `batches`,
//! `fsyncs`, `commit_batch_max` (group-commit observability: under
//! concurrent writers `fsyncs/commits` drops toward `1/batch`),
//! the prepared-cache counters `cache_hits`/`cache_misses`/
//! `cache_entries`, and the serving/replication counters `conns_open`,
//! `conns_total`, `queued_requests`, `backpressure_stalls`,
//! `shed_overload`, `expired_deadline`, `served_late`, `repl_streams`,
//! `repl_lag`, `repl_bytes`.
//!
//! ## Request deadlines and budgets
//!
//! `QUERY` and `EXPLAIN` accept an optional *option token* right after
//! the verb: a single `@`-prefixed word of comma-separated `key=value`
//! pairs, e.g. `QUERY @deadline_ms=200,max_tuples=100000 R(x, y)`.
//! Recognized keys (all `u64`):
//!
//! * `deadline_ms` — the client's end-to-end deadline. The server
//!   subtracts the time the request waited in its queue, clamps by its
//!   own cap, and hands the remainder to the evaluation guard; a
//!   request whose deadline already elapsed while queued is answered
//!   `ERR DEADLINE_EXCEEDED …` without being evaluated, and one whose
//!   projected completion exceeds the remainder is shed with
//!   `ERR OVERLOADED retry_after_ms=<n> …`.
//! * `max_tuples` / `max_atoms` — materialization budgets, intersected
//!   with (never loosening) the server's statistics-derived limits.
//!
//! Formulas never start with `@`, so the token is unambiguous; a bare
//! `QUERY <formula>` keeps its protocol-2 meaning.
//!
//! ## Version handshake
//!
//! A well-behaved peer's *first* frame is `HELLO <proto> <codec>`:
//! the wire [`PROTOCOL_VERSION`] plus the WAL codec
//! [`FORMAT_VERSION`](crate::codec::FORMAT_VERSION) it was built
//! against. A mismatch on either is answered with a typed
//! `ERR version mismatch …` (see `StoreError::VersionMismatch`) and the
//! connection is closed — *before* any replication bytes flow, so an
//! incompatible replica fails the handshake instead of dying on a CRC
//! error mid-stream. Servers still accept peers that skip the handshake
//! (the pre-handshake dialect is a strict subset).
//!
//! ## Replication stream
//!
//! `REPL <last_seq>` upgrades the connection: after the `OK repl <seq>`
//! acknowledgement (carrying the primary's current generation), the
//! server pushes *binary* frames (same 4-byte length framing) whose
//! first payload byte is a tag:
//!
//! * [`REPL_FRAME_BATCH`] (`'B'`) — concatenated sealed WAL records,
//!   byte-identical to the primary's log, in seq order (group-commit
//!   batches forwarded as-is);
//! * [`REPL_FRAME_CHECKPOINT`] (`'S'`) — a full catalog checkpoint as
//!   one snapshot slice (shard 0 of 1), sent when the requested seq has
//!   already left the primary's retained backlog window.
//!
//! The replica applies each frame and answers with a text frame
//! `ACK <seq>`; the primary folds those into its `repl_lag` gauge.

use crate::store::{ExplainOutput, QueryOutput};
use dco_analysis::explain::PlanNode;
use dco_encoding::{relation_from_json, relation_to_json, Json};
use std::io::{self, Read, Write};

/// Hard cap on a single frame (64 MiB) — bounds allocation per peer.
pub const MAX_FRAME: usize = 64 << 20;

/// Wire protocol version announced in the `HELLO` handshake. Version 1
/// is the pre-handshake dialect (no `HELLO`, no `REPL`); version 2
/// added both; version 3 added the optional `@deadline_ms=…` option
/// token on `QUERY`/`EXPLAIN` and the typed `DEADLINE_EXCEEDED` /
/// `OVERLOADED` error replies; version 4 added the observability verbs
/// `METRICS`/`VERSION`/`SLOWLOG` and switched an unmeasured `act` in
/// EXPLAIN output from the `-1` sentinel to JSON `null` (readers should
/// use [`plan_actual_from_json`], which accepts both encodings). Bump
/// on any framing or verb-semantics change.
pub const PROTOCOL_VERSION: u32 = 4;

/// Tag byte of a binary replication frame carrying concatenated sealed
/// WAL records (a forwarded group-commit batch).
pub const REPL_FRAME_BATCH: u8 = b'B';

/// Tag byte of a binary replication frame carrying a full catalog
/// checkpoint (one snapshot slice, shard 0 of 1).
pub const REPL_FRAME_CHECKPOINT: u8 = b'S';

/// Write one length-prefixed text frame.
pub fn write_frame(w: &mut impl Write, msg: &str) -> io::Result<()> {
    write_frame_bytes(w, msg.as_bytes())
}

/// Write one length-prefixed frame of raw bytes (replication frames).
pub fn write_frame_bytes(w: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds 64 MiB cap",
        ));
    }
    // One write per frame: header+body split across packets would
    // otherwise trip Nagle/delayed-ACK stalls on loopback.
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame)?;
    w.flush()
}

/// Frame a payload for hand-off to a buffered writer (the reactor's
/// per-connection write buffer): header + body, no I/O.
pub fn frame_bytes(bytes: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    frame
}

/// Read one text frame. `Ok(None)` means the peer closed the connection
/// cleanly (EOF at a frame boundary).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    match read_frame_bytes(r)? {
        None => Ok(None),
        Some(buf) => String::from_utf8(buf)
            .map(Some)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8")),
    }
}

/// Read one frame as raw bytes (replication frames are not UTF-8).
/// `Ok(None)` means the peer closed cleanly at a frame boundary.
pub fn read_frame_bytes(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds 64 MiB cap",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Pop one complete frame off an accumulation buffer (the reactor's
/// nonblocking read path). `Ok(None)` = not enough bytes yet; errors
/// are protocol violations (oversized frame) that must close the
/// connection.
pub fn take_frame(buf: &mut Vec<u8>) -> io::Result<Option<Vec<u8>>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds 64 MiB cap",
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let frame = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(frame))
}

/// Per-request evaluation limits carried on the wire: the client's
/// end-to-end deadline and materialization budgets. All fields are
/// optional; [`QueryOpts::default`] (everything `None`) renders as the
/// empty string and round-trips to itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryOpts {
    /// End-to-end deadline in milliseconds, measured from the moment
    /// the client sent the request.
    pub deadline_ms: Option<u64>,
    /// Cap on generalized tuples (disjuncts) materialized.
    pub max_tuples: Option<u64>,
    /// Cap on atoms (constraints) materialized.
    pub max_atoms: Option<u64>,
}

impl QueryOpts {
    /// No limits requested.
    pub fn none() -> QueryOpts {
        QueryOpts::default()
    }

    /// Request a deadline.
    pub fn with_deadline_ms(mut self, ms: u64) -> QueryOpts {
        self.deadline_ms = Some(ms);
        self
    }

    /// Request a tuple budget.
    pub fn with_max_tuples(mut self, n: u64) -> QueryOpts {
        self.max_tuples = Some(n);
        self
    }

    /// Request an atom budget.
    pub fn with_max_atoms(mut self, n: u64) -> QueryOpts {
        self.max_atoms = Some(n);
        self
    }

    /// True when no option is set (renders as no token at all).
    pub fn is_none(&self) -> bool {
        self.deadline_ms.is_none() && self.max_tuples.is_none() && self.max_atoms.is_none()
    }

    /// Render as the wire's `@k=v,…` token followed by a space, or the
    /// empty string when nothing is set — so
    /// `format!("QUERY {}{formula}", opts.render())` is valid either way.
    pub fn render(&self) -> String {
        if self.is_none() {
            return String::new();
        }
        let mut parts = Vec::new();
        if let Some(ms) = self.deadline_ms {
            parts.push(format!("deadline_ms={ms}"));
        }
        if let Some(n) = self.max_tuples {
            parts.push(format!("max_tuples={n}"));
        }
        if let Some(n) = self.max_atoms {
            parts.push(format!("max_atoms={n}"));
        }
        format!("@{} ", parts.join(","))
    }

    /// Parse the body of an option token (everything after the `@`).
    pub fn parse(body: &str) -> Result<QueryOpts, String> {
        let mut opts = QueryOpts::default();
        for pair in body.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("option `{pair}` is not `key=value`"))?;
            let value: u64 = value
                .parse()
                .map_err(|_| format!("option `{key}`: bad value `{value}`"))?;
            match key {
                "deadline_ms" => opts.deadline_ms = Some(value),
                "max_tuples" => opts.max_tuples = Some(value),
                "max_atoms" => opts.max_atoms = Some(value),
                other => return Err(format!("unknown query option `{other}`")),
            }
        }
        Ok(opts)
    }
}

/// Split an optional leading `@opts` token off a `QUERY`/`EXPLAIN` body.
fn split_opts(rest: &str) -> Result<(QueryOpts, &str), String> {
    let Some(tail) = rest.strip_prefix('@') else {
        return Ok((QueryOpts::default(), rest));
    };
    let (token, formula) = match tail.split_once(char::is_whitespace) {
        Some((t, f)) => (t, f.trim()),
        None => (tail, ""),
    };
    Ok((QueryOpts::parse(token)?, formula))
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake: wire protocol version + WAL codec version the
    /// peer was built against.
    Hello(u32, u8),
    /// Liveness check.
    Ping,
    /// Evaluate a formula against the current generation, under the
    /// request's deadline/budget options.
    Query(QueryOpts, String),
    /// Plan and evaluate a formula, returning the measured plan tree
    /// (estimated and actual cardinality per node) instead of the
    /// relation. Options bound admission the same way as `Query`.
    Explain(QueryOpts, String),
    /// Declare a relation.
    Create(String, u32),
    /// Drop a relation.
    Drop(String),
    /// Union tuples (JSON relation) into a relation.
    Insert(String, String),
    /// Remove subsumed tuples (JSON relation) from a relation.
    Remove(String, String),
    /// Replace a relation's instance (JSON relation).
    Replace(String, String),
    /// Force a snapshot.
    Snapshot,
    /// Fetch store counters.
    Stats,
    /// Fetch the Prometheus-style text exposition of every metric the
    /// store and its serving stack registered.
    Metrics,
    /// Fetch build information: crate version, wire protocol version,
    /// WAL codec version, server uptime.
    Version,
    /// Fetch the slow-query log (JSON array, oldest first).
    Slowlog,
    /// Upgrade this connection to a replication stream, resuming after
    /// the given last-applied seq.
    Repl(u64),
    /// End the session.
    Close,
}

/// Parse one request line. Errors are human-readable fragments suitable
/// for an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let name_and_body = |rest: &str| -> Result<(String, String), String> {
        match rest.split_once(char::is_whitespace) {
            Some((name, body)) => Ok((name.to_string(), body.trim().to_string())),
            None => Err(format!("`{verb}` needs a relation name and a body")),
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "HELLO" => {
            let (proto, codec) = rest
                .split_once(char::is_whitespace)
                .ok_or("`HELLO` needs a protocol and a codec version")?;
            let proto: u32 = proto
                .trim()
                .parse()
                .map_err(|_| format!("`HELLO`: bad protocol version `{proto}`"))?;
            let codec: u8 = codec
                .trim()
                .parse()
                .map_err(|_| format!("`HELLO`: bad codec version `{codec}`"))?;
            Ok(Request::Hello(proto, codec))
        }
        "PING" => Ok(Request::Ping),
        "QUERY" | "EXPLAIN" => {
            let (opts, formula) = split_opts(rest)?;
            if formula.is_empty() {
                return Err(format!("`{}` needs a formula", verb.to_ascii_uppercase()));
            }
            if verb.eq_ignore_ascii_case("QUERY") {
                Ok(Request::Query(opts, formula.to_string()))
            } else {
                Ok(Request::Explain(opts, formula.to_string()))
            }
        }
        "CREATE" => {
            let (name, arity) = name_and_body(rest)?;
            let arity: u32 = arity
                .parse()
                .map_err(|_| format!("`CREATE {name}`: bad arity `{arity}`"))?;
            Ok(Request::Create(name, arity))
        }
        "DROP" if !rest.is_empty() => Ok(Request::Drop(rest.to_string())),
        "DROP" => Err("`DROP` needs a relation name".into()),
        "INSERT" => name_and_body(rest).map(|(n, b)| Request::Insert(n, b)),
        "REMOVE" => name_and_body(rest).map(|(n, b)| Request::Remove(n, b)),
        "REPLACE" => name_and_body(rest).map(|(n, b)| Request::Replace(n, b)),
        "SNAPSHOT" => Ok(Request::Snapshot),
        "STATS" => Ok(Request::Stats),
        "METRICS" => Ok(Request::Metrics),
        "VERSION" => Ok(Request::Version),
        "SLOWLOG" => Ok(Request::Slowlog),
        "REPL" => {
            let seq: u64 = rest
                .parse()
                .map_err(|_| format!("`REPL`: bad last-applied seq `{rest}`"))?;
            Ok(Request::Repl(seq))
        }
        "CLOSE" => Ok(Request::Close),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Render a query output as the wire's JSON object.
pub fn query_output_to_json(out: &QueryOutput) -> String {
    Json::Obj(vec![
        ("generation".into(), Json::Num(out.generation as f64)),
        (
            "cached".into(),
            Json::Num(if out.cached { 1.0 } else { 0.0 }),
        ),
        (
            "columns".into(),
            Json::Arr(out.columns.iter().map(|c| Json::Str(c.clone())).collect()),
        ),
        ("relation".into(), relation_to_json(&out.relation)),
    ])
    .compact()
}

/// Render an EXPLAIN output as the wire's JSON object: generation, the
/// planned formula text, output columns, and the recursive plan tree.
/// Every node carries `est` and `act`; an unmeasured `act` encodes as
/// JSON `null` (before protocol 4 it was the sentinel `-1`).
pub fn explain_output_to_json(out: &ExplainOutput) -> String {
    Json::Obj(vec![
        ("generation".into(), Json::Num(out.generation as f64)),
        ("planned".into(), Json::Str(out.plan.planned.clone())),
        (
            "columns".into(),
            Json::Arr(out.columns.iter().map(|c| Json::Str(c.clone())).collect()),
        ),
        ("plan".into(), plan_node_to_json(&out.plan.root)),
    ])
    .compact()
}

fn plan_node_to_json(n: &PlanNode) -> Json {
    Json::Obj(vec![
        ("label".into(), Json::Str(n.label.clone())),
        ("detail".into(), Json::Str(n.detail.clone())),
        ("est".into(), Json::Num(n.estimated)),
        (
            "act".into(),
            n.actual.map_or(Json::Null, |a| Json::Num(a as f64)),
        ),
        (
            "children".into(),
            Json::Arr(n.children.iter().map(plan_node_to_json).collect()),
        ),
    ])
}

/// Decode a plan node's measured cardinality from its wire JSON object
/// — the compatibility shim across the protocol-4 `act` change. Every
/// historical encoding of "unmeasured" maps to `None`: JSON `null`
/// (protocol ≥ 4), a missing field, and any negative number (the old
/// `-1` sentinel). A non-negative number is the measurement.
pub fn plan_actual_from_json(node: &Json) -> Option<u64> {
    match node.get("act") {
        None | Some(Json::Null) => None,
        Some(v) => v.as_num().filter(|n| *n >= 0.0).map(|n| n as u64),
    }
}

/// Parse the wire's JSON object back into a [`QueryOutput`] (with
/// `stats` absent — the wire does not carry guard statistics).
pub fn query_output_from_json(src: &str) -> Result<QueryOutput, String> {
    let v = dco_encoding::parse_json(src).map_err(|e| e.to_string())?;
    let num = |k: &str| -> Result<f64, String> {
        v.get(k)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("query output missing numeric `{k}`"))
    };
    let columns = v
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or("query output missing `columns` array")?
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_string)
                .ok_or_else(|| "column must be a string".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let rel_json = v.get("relation").ok_or("query output missing `relation`")?;
    let relation = relation_from_json(rel_json).map_err(|e| e.to_string())?;
    Ok(QueryOutput {
        generation: num("generation")? as u64,
        cached: num("cached")? != 0.0,
        columns,
        relation,
        stats: None,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "QUERY R(x, y)").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "QUERY R(x, y)");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "PING").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_frame_is_refused_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn request_grammar() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(
            parse_request("query exists y . R(x, y)").unwrap(),
            Request::Query(QueryOpts::none(), "exists y . R(x, y)".into())
        );
        assert_eq!(
            parse_request("CREATE r 2").unwrap(),
            Request::Create("r".into(), 2)
        );
        assert_eq!(parse_request("DROP r").unwrap(), Request::Drop("r".into()));
        assert!(parse_request("INSERT r").is_err());
        assert!(parse_request("CREATE r two").is_err());
        assert!(parse_request("FROB").is_err());
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("CLOSE").unwrap(), Request::Close);
        assert_eq!(parse_request("HELLO 2 1").unwrap(), Request::Hello(2, 1));
        assert_eq!(parse_request("hello 2 1").unwrap(), Request::Hello(2, 1));
        assert!(parse_request("HELLO 2").is_err());
        assert!(parse_request("HELLO x y").is_err());
        assert_eq!(parse_request("REPL 42").unwrap(), Request::Repl(42));
        assert!(parse_request("REPL").is_err());
        assert!(parse_request("REPL -1").is_err());
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(parse_request("version").unwrap(), Request::Version);
        assert_eq!(parse_request("SLOWLOG").unwrap(), Request::Slowlog);
    }

    #[test]
    fn plan_actual_accepts_null_absent_and_legacy_sentinel() {
        let parse = |s: &str| dco_encoding::parse_json(s).unwrap();
        // Protocol 4: unmeasured is null, measured is a number.
        assert_eq!(plan_actual_from_json(&parse("{\"act\":null}")), None);
        assert_eq!(plan_actual_from_json(&parse("{\"act\":7}")), Some(7));
        // Compat: pre-4 peers sent -1, and some omit the field.
        assert_eq!(plan_actual_from_json(&parse("{\"act\":-1}")), None);
        assert_eq!(plan_actual_from_json(&parse("{\"est\":2}")), None);
    }

    #[test]
    fn query_options_parse_render_and_reject_garbage() {
        let opts = QueryOpts::none()
            .with_deadline_ms(200)
            .with_max_tuples(1000)
            .with_max_atoms(16000);
        assert_eq!(
            opts.render(),
            "@deadline_ms=200,max_tuples=1000,max_atoms=16000 "
        );
        assert_eq!(
            parse_request(&format!("QUERY {}R(x, y)", opts.render())).unwrap(),
            Request::Query(opts, "R(x, y)".into())
        );
        assert_eq!(QueryOpts::none().render(), "");
        assert_eq!(
            parse_request("EXPLAIN @deadline_ms=50 R(x)").unwrap(),
            Request::Explain(QueryOpts::none().with_deadline_ms(50), "R(x)".into())
        );
        // An option token with no formula is an error, as is a bare verb.
        assert!(parse_request("QUERY @deadline_ms=50").is_err());
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("EXPLAIN").is_err());
        // Unknown keys, malformed pairs, and non-numeric values.
        assert!(parse_request("QUERY @frobnicate=1 R(x)").is_err());
        assert!(parse_request("QUERY @deadline_ms R(x)").is_err());
        assert!(parse_request("QUERY @deadline_ms=abc R(x)").is_err());
        assert!(parse_request("QUERY @deadline_ms=-5 R(x)").is_err());
        // Formulas themselves never start with `@`, so no ambiguity.
        assert_eq!(
            parse_request("QUERY R(x, y) & x < y").unwrap(),
            Request::Query(QueryOpts::none(), "R(x, y) & x < y".into())
        );
    }

    #[test]
    fn take_frame_handles_partial_and_pipelined_input() {
        let mut buf = Vec::new();
        assert_eq!(take_frame(&mut buf).unwrap(), None, "empty");
        // Two pipelined frames plus a partial third.
        buf.extend_from_slice(&frame_bytes(b"PING"));
        buf.extend_from_slice(&frame_bytes(b"STATS"));
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.push(b'x');
        assert_eq!(take_frame(&mut buf).unwrap().unwrap(), b"PING");
        assert_eq!(take_frame(&mut buf).unwrap().unwrap(), b"STATS");
        assert_eq!(take_frame(&mut buf).unwrap(), None, "incomplete body");
        buf.extend_from_slice(b"yz");
        assert_eq!(take_frame(&mut buf).unwrap().unwrap(), b"xyz");
        assert!(buf.is_empty());
        // Oversized declared length is a protocol error, not an alloc.
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(take_frame(&mut buf).is_err());
    }

    #[test]
    fn byte_frames_roundtrip_binary_payloads() {
        let payload = [REPL_FRAME_BATCH, 0x00, 0xff, 0x80];
        let mut buf = Vec::new();
        write_frame_bytes(&mut buf, &payload).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame_bytes(&mut r).unwrap().unwrap(), payload);
        assert_eq!(read_frame_bytes(&mut r).unwrap(), None);
        // The same bytes are not a valid *text* frame.
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    mod adversarial {
        //! Property tests for [`take_frame`] against adversarial input:
        //! the exact byte streams the netfault proxy manufactures —
        //! frames torn at arbitrary boundaries, oversized length
        //! prefixes, zero-length frames, and raw garbage. The invariant
        //! is total: for *any* byte string, `take_frame` returns a
        //! frame, asks for more input, or errors — it never panics,
        //! never allocates the declared length up front, and a stream
        //! of well-formed frames is reassembled exactly no matter how
        //! it is split.

        use super::super::*;
        use proptest::prelude::*;

        /// Frames of assorted sizes, including empty (zero-length
        /// frames are legal on the wire: 4 header bytes, no body).
        fn frames() -> impl Strategy<Value = Vec<Vec<u8>>> {
            prop::collection::vec(prop::collection::vec(0u8..=255, 0..200), 0..8)
        }

        proptest! {
            /// Well-formed frames survive any split schedule: feed the
            /// concatenated stream in arbitrary chunks and exactly the
            /// original frames come back out, in order.
            #[test]
            fn reassembles_frames_across_arbitrary_splits(
                frames in frames(),
                splits in prop::collection::vec(1usize..64, 0..32),
            ) {
                let mut stream = Vec::new();
                for f in &frames {
                    stream.extend_from_slice(&frame_bytes(f));
                }
                let mut buf = Vec::new();
                let mut out: Vec<Vec<u8>> = Vec::new();
                let mut cursor = 0;
                let mut split_iter = splits.iter().copied().chain(std::iter::repeat(17));
                while cursor < stream.len() {
                    let n = split_iter.next().unwrap_or(17).min(stream.len() - cursor);
                    buf.extend_from_slice(&stream[cursor..cursor + n]);
                    cursor += n;
                    while let Some(frame) = take_frame(&mut buf).unwrap() {
                        out.push(frame);
                    }
                }
                prop_assert_eq!(out, frames);
                prop_assert!(buf.is_empty(), "no residue after the last frame");
            }

            /// Total on arbitrary garbage: any byte string yields a
            /// frame, a need-more-input, or a typed error — never a
            /// panic. An error must come from an oversized declared
            /// length, and a need-more-input only when the declared
            /// length genuinely exceeds the buffered body.
            #[test]
            fn never_panics_on_garbage(bytes in prop::collection::vec(0u8..=255, 0..512)) {
                let mut buf = bytes.clone();
                match take_frame(&mut buf) {
                    Ok(Some(frame)) => {
                        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
                        prop_assert_eq!(frame.len(), len);
                        prop_assert_eq!(buf.len(), bytes.len() - 4 - len, "drains header + body exactly");
                    }
                    Ok(None) => {
                        if bytes.len() >= 4 {
                            let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
                            prop_assert!(len <= MAX_FRAME, "in-bounds length or it must error");
                            prop_assert!(bytes.len() - 4 < len, "asked for more only mid-frame");
                        }
                        prop_assert_eq!(&buf, &bytes, "needs-more-input must not consume");
                    }
                    Err(_) => {
                        prop_assert!(bytes.len() >= 4);
                        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
                        prop_assert!(len > MAX_FRAME, "errors are oversized lengths only");
                    }
                }
            }

            /// An oversized length prefix errors immediately — before
            /// the body arrives — and zero-length frames round-trip.
            #[test]
            fn oversized_prefix_rejected_early(extra in 1u32..(u32::MAX - MAX_FRAME as u32)) {
                let bad = MAX_FRAME as u32 + extra;
                let mut buf = bad.to_be_bytes().to_vec();
                prop_assert!(take_frame(&mut buf).is_err());

                let mut empty = frame_bytes(b"");
                prop_assert_eq!(take_frame(&mut empty).unwrap().unwrap(), Vec::<u8>::new());
                prop_assert!(empty.is_empty());
            }
        }
    }
}
