//! Per-shard checkpoint slices with atomic publication.
//!
//! The sharded store checkpoints each shard independently: a *slice* is
//! one sealed [`codec`](crate::codec) record containing the WAL sequence
//! number it covers, the shard's coordinates `(shard, nshards)`, and the
//! shard's relations (§3's standard encoding of every relation, plus
//! names). The slice's coverage contract is relation-granular:
//!
//! > Every operation with `seq <= covered` targeting a relation `R`
//! > with `shard_of(R, nshards) == shard` is folded into the slice. If
//! > such an `R` is absent from the slice, it was dropped.
//!
//! Recovery therefore needs no global snapshot metadata: for each
//! relation, the newest slice *owning* it (by the slice's own recorded
//! coordinates) supplies its state, and WAL replay skips entries at or
//! below that slice's covered seq. This stays correct even when the
//! shard count changes across reopens — old slices keep their own
//! `nshards` and keep covering exactly the relations they owned.
//!
//! Publication of each slice is crash-safe by construction:
//!
//! 1. the record is written to a `.tmp` file;
//! 2. the temp file is fsynced;
//! 3. it is atomically renamed to `snapshot-<seq>-s<shard>of<n>.dcs`;
//! 4. the directory is fsynced so the rename itself is durable;
//! 5. older slices of the same `(shard, nshards)` are deleted.
//!
//! A crash anywhere before step 3 leaves only a `.tmp` file, which
//! recovery ignores. A crash after step 3 leaves a valid slice plus
//! possibly stale older ones; recovery reads every valid slice and lets
//! per-relation newest-owner-wins resolve them. A hot shard snapshotting
//! often never invalidates a cold shard's old slice — that is the point:
//! WAL truncation only needs every *dirty* shard re-sliced, so one hot
//! relation cannot starve the coverage of cold ones.
//! [`ProbeSite::SnapshotWrite`] fires mid-write of the temp file so the
//! chaos suite can crash exactly in the window where a torn slice exists
//! on disk.

use crate::codec::{open_record, seal_record, ByteReader, ByteWriter, CodecError, RecordKind};
use dco_core::guard::{self, ProbeSite};
use dco_core::prelude::GeneralizedRelation;
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Snapshot file extension.
pub const SNAPSHOT_EXT: &str = "dcs";

/// One shard's checkpoint, as loaded from disk.
#[derive(Debug, Clone)]
pub struct ShardSlice {
    /// Every WAL entry `<= seq` targeting a relation this slice owns is
    /// folded in.
    pub seq: u64,
    /// Shard index the slice was written for.
    pub shard: usize,
    /// Shard count the slice was written under (defines ownership).
    pub nshards: usize,
    /// The shard's relation instances at `seq`.
    pub relations: BTreeMap<String, Arc<GeneralizedRelation>>,
}

impl ShardSlice {
    /// Whether this slice's coordinates own relation `name` under its
    /// own recorded shard count.
    pub fn owns(&self, name: &str) -> bool {
        crate::store::shard_of(name, self.nshards) == self.shard
    }
}

fn slice_path(dir: &Path, seq: u64, shard: usize, nshards: usize) -> PathBuf {
    dir.join(format!(
        "snapshot-{seq:016x}-s{shard}of{nshards}.{SNAPSHOT_EXT}"
    ))
}

/// Parse `snapshot-<hex seq>-s<shard>of<n>.dcs` back to its coordinates;
/// `None` for foreign files (including pre-shard whole-catalog names).
fn parse_slice_name(name: &str) -> Option<(u64, usize, usize)> {
    let rest = name.strip_prefix("snapshot-")?;
    let rest = rest.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
    let (hex, coords) = rest.split_once("-s")?;
    let (shard, nshards) = coords.split_once("of")?;
    Some((
        u64::from_str_radix(hex, 16).ok()?,
        shard.parse().ok()?,
        nshards.parse().ok()?,
    ))
}

/// Serialize one shard slice into a sealed catalog record.
pub fn encode_slice(
    seq: u64,
    shard: usize,
    nshards: usize,
    relations: &BTreeMap<String, Arc<GeneralizedRelation>>,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(seq);
    w.put_varint(shard as u128);
    w.put_varint(nshards as u128);
    w.put_varint(relations.len() as u128);
    for (name, rel) in relations {
        w.put_str(name);
        crate::codec::put_relation(&mut w, rel);
    }
    seal_record(RecordKind::Catalog, &w.into_bytes())
}

/// Inverse of [`encode_slice`].
pub fn decode_slice(bytes: &[u8]) -> Result<ShardSlice, CodecError> {
    let (payload, _) = open_record(bytes, RecordKind::Catalog)?;
    let mut r = ByteReader::new(payload);
    let seq = r.get_u64()?;
    let shard = r.get_varint()? as usize;
    let nshards = r.get_varint()? as usize;
    let count = r.get_varint()? as usize;
    let mut relations = BTreeMap::new();
    for _ in 0..count {
        let name = r.get_str()?;
        let rel = crate::codec::get_relation(&mut r)?;
        relations.insert(name, Arc::new(rel));
    }
    if r.remaining() != 0 {
        return Err(CodecError::BadPayload(
            "trailing bytes after shard slice".into(),
        ));
    }
    if nshards == 0 || shard >= nshards {
        return Err(CodecError::BadPayload(format!(
            "shard slice coordinates out of range: {shard} of {nshards}"
        )));
    }
    Ok(ShardSlice {
        seq,
        shard,
        nshards,
        relations,
    })
}

/// Write and atomically publish one shard's slice covering WAL entries
/// `..= seq` for the relations it owns. Returns the number of on-disk
/// bytes of the published file — the store's realization of the paper's
/// standard-encoding size measure, per shard.
pub fn write_slice(
    dir: &Path,
    seq: u64,
    shard: usize,
    nshards: usize,
    relations: &BTreeMap<String, Arc<GeneralizedRelation>>,
    fsync: bool,
) -> std::io::Result<u64> {
    let bytes = encode_slice(seq, shard, nshards, relations);
    let final_path = slice_path(dir, seq, shard, nshards);
    let tmp_path = final_path.with_extension(format!("{SNAPSHOT_EXT}.tmp"));

    let mut f = File::create(&tmp_path)?;
    // Two-phase write with a probe in the gap: a fault injected at
    // SnapshotWrite leaves a torn temp file that recovery must ignore.
    let split = bytes.len() / 2;
    f.write_all(&bytes[..split])?;
    guard::probe(ProbeSite::SnapshotWrite);
    f.write_all(&bytes[split..])?;
    if fsync {
        f.sync_data()?;
    }
    drop(f);

    fs::rename(&tmp_path, &final_path)?;
    if fsync {
        // Make the rename itself durable.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }

    // Older slices of the same coordinates (and leftover temp files) are
    // now redundant: the fresh slice lists this shard's entire state.
    // Slices of *other* coordinates are left alone — they may still be
    // the newest owner of relations this slice does not own.
    for entry in fs::read_dir(dir)?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let stale = match parse_slice_name(&name) {
            Some((s, sh, n)) => sh == shard && n == nshards && s < seq,
            None => name.starts_with("snapshot-") && name.ends_with(".tmp"),
        };
        if stale {
            let _ = fs::remove_file(entry.path());
        }
    }
    Ok(bytes.len() as u64)
}

/// Load every valid slice in `dir`, skipping torn or corrupt files (a
/// crash mid-publication leaves at worst a `.tmp` or a torn file, and an
/// older valid slice of the same shard still covers it). Order is
/// unspecified; recovery resolves overlaps per relation by newest owner.
pub fn load_slices(dir: &Path) -> std::io::Result<Vec<ShardSlice>> {
    let mut slices = Vec::new();
    for entry in fs::read_dir(dir)?.flatten() {
        let name = entry.file_name();
        let Some((seq, shard, nshards)) = parse_slice_name(&name.to_string_lossy()) else {
            continue;
        };
        let bytes = fs::read(entry.path())?;
        match decode_slice(&bytes) {
            Ok(slice) => {
                debug_assert_eq!((slice.seq, slice.shard), (seq, shard));
                debug_assert_eq!(slice.nshards, nshards);
                slices.push(slice);
            }
            Err(_) => continue, // torn/corrupt slice: older owners cover it
        }
    }
    Ok(slices)
}

/// The highest covered seq among slices owning `name` — WAL replay skips
/// entries at or below it. 0 when no slice owns the relation.
pub fn covered_seq(slices: &[ShardSlice], name: &str) -> u64 {
    slices
        .iter()
        .filter(|s| s.owns(name))
        .map(|s| s.seq)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_core::prelude::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dco-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rel2() -> Arc<GeneralizedRelation> {
        Arc::new(GeneralizedRelation::from_raw(
            2,
            vec![RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1))],
        ))
    }

    fn rel1() -> Arc<GeneralizedRelation> {
        Arc::new(GeneralizedRelation::from_raw(
            1,
            vec![RawAtom::new(Term::var(0), RawOp::Eq, Term::cst(rat(1, 3)))],
        ))
    }

    fn shard_map(
        entries: &[(&str, Arc<GeneralizedRelation>)],
    ) -> BTreeMap<String, Arc<GeneralizedRelation>> {
        entries
            .iter()
            .map(|(n, r)| (n.to_string(), r.clone()))
            .collect()
    }

    #[test]
    fn publish_and_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let rels = shard_map(&[("r", rel2()), ("s", rel1())]);
        write_slice(&dir, 7, 2, 8, &rels, true).unwrap();
        let slices = load_slices(&dir).unwrap();
        assert_eq!(slices.len(), 1);
        let s = &slices[0];
        assert_eq!((s.seq, s.shard, s.nshards), (7, 2, 8));
        assert_eq!(s.relations.len(), 2);
        assert_eq!(s.relations["r"].as_ref(), rel2().as_ref());
        assert_eq!(s.relations["s"].as_ref(), rel1().as_ref());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newer_same_shard_slice_supersedes_and_corrupt_falls_back() {
        let dir = tmpdir("fallback");
        // Use the shard that actually owns "r" under 4 shards, so the
        // ownership-based coverage resolution applies to these slices.
        let sh = crate::store::shard_of("r", 4);
        let old = encode_slice(3, sh, 4, &shard_map(&[("r", rel2())]));
        write_slice(&dir, 3, sh, 4, &shard_map(&[("r", rel2())]), true).unwrap();
        // Publishing seq 9 for the same (shard, nshards) deletes seq 3;
        // re-create 3 manually to simulate a crash between rename and
        // cleanup.
        write_slice(&dir, 9, sh, 4, &shard_map(&[]), true).unwrap();
        std::fs::write(slice_path(&dir, 3, sh, 4), &old).unwrap();
        let slices = load_slices(&dir).unwrap();
        // Relation-granular resolution: the seq-9 empty slice owns "r"
        // and does not list it => dropped at 9.
        assert_eq!(covered_seq(&slices, "r"), 9);
        // Corrupt the newest: the loader must skip it and fall back.
        let path9 = slice_path(&dir, 9, sh, 4);
        let mut bytes = std::fs::read(&path9).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path9, &bytes).unwrap();
        let slices = load_slices(&dir).unwrap();
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].seq, 3);
        assert_eq!(slices[0].relations["r"].as_ref(), rel2().as_ref());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cross_coordinate_slices_coexist() {
        let dir = tmpdir("coords");
        // A hot shard re-sliced at 20 must not delete a cold shard's
        // older slice — different coordinates cover different relations.
        write_slice(&dir, 5, 0, 2, &shard_map(&[("cold", rel1())]), true).unwrap();
        write_slice(&dir, 20, 1, 2, &shard_map(&[("hot", rel1())]), true).unwrap();
        let slices = load_slices(&dir).unwrap();
        assert_eq!(slices.len(), 2);
        let cold = slices.iter().find(|s| s.shard == 0).unwrap();
        assert_eq!(cold.seq, 5);
        assert!(cold.relations.contains_key("cold"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tmp_files_are_ignored() {
        let dir = tmpdir("tmpfiles");
        std::fs::write(
            dir.join(format!("snapshot-{:016x}-s0of8.{SNAPSHOT_EXT}.tmp", 5u64)),
            b"half-written",
        )
        .unwrap();
        assert!(load_slices(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
