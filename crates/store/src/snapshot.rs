//! Whole-catalog checkpoints with atomic publication.
//!
//! A snapshot is one sealed [`codec`](crate::codec) record containing the
//! WAL sequence number it covers plus the full catalog (§3's standard
//! encoding of every relation, plus names). Publication is crash-safe by
//! construction:
//!
//! 1. the record is written to `snapshot-<seq>.dcs.tmp`;
//! 2. the temp file is fsynced;
//! 3. it is atomically renamed to `snapshot-<seq>.dcs`;
//! 4. the directory is fsynced so the rename itself is durable;
//! 5. older snapshot files are deleted.
//!
//! A crash anywhere before step 3 leaves only a `.tmp` file, which
//! recovery ignores. A crash after step 3 leaves a valid snapshot plus
//! possibly stale older ones; recovery picks the newest *valid* one and
//! falls back over corrupt files. [`ProbeSite::SnapshotWrite`] fires
//! mid-write of the temp file so the chaos suite can crash exactly in
//! the window where a torn snapshot exists on disk.

use crate::codec::{open_record, seal_record, ByteReader, ByteWriter, CodecError, RecordKind};
use dco_core::guard::{self, ProbeSite};
use dco_core::prelude::Database;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Snapshot file extension.
pub const SNAPSHOT_EXT: &str = "dcs";

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:016x}.{SNAPSHOT_EXT}"))
}

/// Parse `snapshot-<hex seq>.dcs` back to its seq; `None` for foreign files.
fn parse_snapshot_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("snapshot-")?;
    let hex = rest.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
    u64::from_str_radix(hex, 16).ok()
}

/// Serialize `(seq, db)` into one sealed catalog record.
pub fn encode_snapshot(seq: u64, db: &Database) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(seq);
    crate::codec::put_database(&mut w, db);
    seal_record(RecordKind::Catalog, &w.into_bytes())
}

/// Inverse of [`encode_snapshot`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<(u64, Database), CodecError> {
    let (payload, _) = open_record(bytes, RecordKind::Catalog)?;
    let mut r = ByteReader::new(payload);
    let seq = r.get_u64()?;
    let db = crate::codec::get_database(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::BadPayload(
            "trailing bytes after catalog".into(),
        ));
    }
    Ok((seq, db))
}

/// Write and atomically publish a snapshot covering WAL entries `..= seq`.
/// Returns the number of on-disk bytes of the published file — the
/// store's realization of the paper's standard-encoding size measure.
pub fn write_snapshot(dir: &Path, seq: u64, db: &Database, fsync: bool) -> std::io::Result<u64> {
    let bytes = encode_snapshot(seq, db);
    let final_path = snapshot_path(dir, seq);
    let tmp_path = final_path.with_extension(format!("{SNAPSHOT_EXT}.tmp"));

    let mut f = File::create(&tmp_path)?;
    // Two-phase write with a probe in the gap: a fault injected at
    // SnapshotWrite leaves a torn temp file that recovery must ignore.
    let split = bytes.len() / 2;
    f.write_all(&bytes[..split])?;
    guard::probe(ProbeSite::SnapshotWrite);
    f.write_all(&bytes[split..])?;
    if fsync {
        f.sync_data()?;
    }
    drop(f);

    fs::rename(&tmp_path, &final_path)?;
    if fsync {
        // Make the rename itself durable.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }

    // Older snapshots (and any leftover temp files) are now redundant.
    for entry in fs::read_dir(dir)?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let stale = match parse_snapshot_name(&name) {
            Some(s) => s < seq,
            None => name.starts_with("snapshot-") && name.ends_with(".tmp"),
        };
        if stale {
            let _ = fs::remove_file(entry.path());
        }
    }
    Ok(bytes.len() as u64)
}

/// Find and load the newest *valid* snapshot in `dir`, skipping over
/// corrupt or torn files (newest first). Returns `None` when no valid
/// snapshot exists — recovery then starts from the empty catalog.
pub fn load_latest(dir: &Path) -> std::io::Result<Option<(u64, Database)>> {
    let mut seqs: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)?.flatten() {
        if let Some(seq) = parse_snapshot_name(&entry.file_name().to_string_lossy()) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    for seq in seqs {
        let bytes = fs::read(snapshot_path(dir, seq))?;
        match decode_snapshot(&bytes) {
            Ok((covered, db)) => return Ok(Some((covered, db))),
            Err(_) => continue, // torn/corrupt snapshot: fall back to older
        }
    }
    Ok(None)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_core::prelude::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dco-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_db() -> Database {
        Database::new(Schema::new().with("r", 2).with("s", 1))
            .with(
                "r",
                GeneralizedRelation::from_raw(
                    2,
                    vec![RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1))],
                ),
            )
            .with(
                "s",
                GeneralizedRelation::from_raw(
                    1,
                    vec![RawAtom::new(Term::var(0), RawOp::Eq, Term::cst(rat(1, 3)))],
                ),
            )
    }

    #[test]
    fn publish_and_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let db = sample_db();
        write_snapshot(&dir, 7, &db, true).unwrap();
        let (seq, back) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(seq, 7);
        assert_eq!(back, db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_valid_snapshot_wins_and_corrupt_falls_back() {
        let dir = tmpdir("fallback");
        let db = sample_db();
        write_snapshot(&dir, 3, &db, true).unwrap();
        // Publishing seq 9 deletes seq 3; re-create 3 manually to simulate
        // a crash between rename and cleanup.
        let old = encode_snapshot(3, &db);
        write_snapshot(&dir, 9, &Database::new(Schema::new()), true).unwrap();
        std::fs::write(snapshot_path(&dir, 3), &old).unwrap();
        let (seq, _) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(seq, 9, "newest valid snapshot wins");
        // Corrupt the newest: loader must fall back to seq 3.
        let path9 = snapshot_path(&dir, 9);
        let mut bytes = std::fs::read(&path9).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path9, &bytes).unwrap();
        let (seq, back) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(seq, 3);
        assert_eq!(back, db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tmp_files_are_ignored() {
        let dir = tmpdir("tmpfiles");
        std::fs::write(
            dir.join(format!("snapshot-{:016x}.{SNAPSHOT_EXT}.tmp", 5u64)),
            b"half-written",
        )
        .unwrap();
        assert!(load_latest(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
