//! The durable, snapshot-isolated constraint database — sharded write
//! path with group-commit WAL batching.
//!
//! ## Write path
//!
//! The catalog is partitioned into `N` *shards* by relation-name
//! fingerprint ([`shard_of`]). Every [`LogOp`] targets exactly one
//! relation, so validation and successor-state computation are entirely
//! shard-local: concurrent writers to different shards do the expensive
//! work (DNF union, incremental stats recompute) in parallel, each under
//! its own shard mutex. A global *commit queue* then assigns monotone
//! WAL sequence numbers and batches the pre-sealed records: the first
//! committer to find the queue leaderless becomes the **leader**, drains
//! the batch, performs one write pass + one fsync for all of it
//! ([`Wal::append_records`]), publishes each shard's new state in seq
//! order, and only then acknowledges every waiter. Under contention the
//! fsync cost is amortized over the whole batch (fsyncs/commit → 1/batch
//! size); a lone writer degenerates to the classic one-fsync-per-commit
//! discipline.
//!
//! ## Recovery invariant
//!
//! `Store::open(dir)` ≡ per-relation newest snapshot slice + in-order
//! WAL replay of every entry past that relation's covered seq, with any
//! torn WAL tail truncated. Acknowledged writes are always recovered:
//! an ack happens only after the batch fsync, and because records are
//! written in seq order a crash mid-batch leaves a seq-*prefix* on disk
//! — never a gap — so recovery is always a prefix of issued commits that
//! contains every acknowledged one.
//!
//! ## Isolation argument
//!
//! Readers never lock out writers and vice versa: the entire catalog
//! lives in an immutable [`Generation`] behind an `Arc`, and the leader
//! installs a *new* generation with an atomic pointer swap after each
//! batch. Cross-shard consistency comes from the commit sequencer:
//! shard states are published in global seq order by a single leader at
//! a time, so every published generation is the catalog after a
//! *prefix* of the commit order — a reader holding a generation at seq
//! `s` sees exactly commits `1..=s`, regardless of which shards they
//! touched. The per-shard watermarks ride along in
//! [`Generation::shard_marks`] and key the prepared-query cache.
//!
//! ## Fault containment
//!
//! The WAL batch write, batch fsync, shard publication, and snapshot
//! slice writes carry [`dco_core::guard`] probes. When a chaos test
//! injects a panic there, the unwinding leader's drop guard fails every
//! waiting committer's ticket, clears the `healthy` flag, and releases
//! leadership; every later write is refused with
//! [`StoreError::Unhealthy`] until the store is reopened (which
//! truncates the torn tail). Readers are unaffected — their generation
//! is immutable, and nothing is published before it is durable.

use crate::codec::CodecError;
use crate::snapshot;
use crate::wal::{apply_op, LogOp, Wal};
use dco_analysis::explain::QueryPlan;
use dco_analysis::stats::DbStats;
use dco_analysis::{cost, plan_formula, preflight_formula, AnalysisOptions, Diagnostic};
use dco_core::guard::{self, EvalErrorKind, GuardLimits, GuardStats, ProbeSite};
use dco_core::intern::{fold, mix64};
use dco_core::prelude::{Database, GeneralizedRelation, Schema};
use dco_fo::{explain_with_stats, try_eval_with, TryEvalError};
use dco_logic::{parse_formula, Formula};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

/// Tuning knobs for a store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Take an automatic snapshot cycle (re-slice every dirty shard and
    /// truncate the WAL) once any single shard has accumulated this many
    /// logged operations. `0` disables automatic snapshots.
    pub snapshot_every: u64,
    /// Fsync WAL batches after every append and snapshot slices before
    /// publishing. Turning this off trades the durability guarantee for
    /// speed (benchmarks, throwaway stores).
    pub fsync: bool,
    /// Maximum number of prepared-query results kept per store.
    pub prepared_cache_cap: usize,
    /// Number of write shards the catalog is partitioned into. Writers
    /// to different shards validate and compute successor states in
    /// parallel; `0` is treated as `1`.
    pub shards: usize,
    /// Number of committed WAL records retained in memory for
    /// replication catch-up ([`Store::repl_backlog`]). A replica whose
    /// last-applied seq has fallen out of this window is resynced with a
    /// full checkpoint instead of a record stream. `0` disables the
    /// backlog (every resume becomes a checkpoint).
    pub repl_backlog: usize,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            snapshot_every: 256,
            fsync: true,
            prepared_cache_cap: 256,
            shards: 8,
            repl_backlog: 1024,
        }
    }
}

/// One immutable catalog version. Readers hold an `Arc<Generation>` and
/// see a frozen database regardless of concurrent writes.
#[derive(Debug)]
pub struct Generation {
    /// WAL sequence number of the last operation applied (0 = empty).
    /// The catalog is the state after exactly commits `1..=seq` — a
    /// prefix of the global commit order, never a partial batch.
    pub seq: u64,
    /// The catalog at that point.
    pub db: Database,
    /// Per-relation statistics of the catalog, maintained incrementally
    /// per shard: each write recomputes only the relation it touched. A
    /// pure function of the catalog content, so recovery (slices + WAL
    /// replay) reproduces it byte-identically.
    pub stats: DbStats,
    /// Per-shard watermarks: `shard_marks[i]` is the seq of the last
    /// commit that touched shard `i` (or the recovery seq right after
    /// open). Two generations with equal marks for a set of shards have
    /// byte-identical state on those shards — the fact the prepared-
    /// query cache keys on.
    pub shard_marks: Vec<u64>,
}

/// A query answer, tagged with the generation it was computed against.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Generation the answer is valid for.
    pub generation: u64,
    /// Output columns (free variables, sorted).
    pub columns: Vec<String>,
    /// The denoted relation.
    pub relation: GeneralizedRelation,
    /// Whether the answer came from the prepared-query cache.
    pub cached: bool,
    /// Guard statistics of the evaluation (`None` on cache hits — no
    /// evaluation happened).
    pub stats: Option<GuardStats>,
}

/// Observable store counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Current generation seq.
    pub generation: u64,
    /// Number of relations in the catalog.
    pub relations: usize,
    /// Number of write shards.
    pub shards: usize,
    /// Acknowledged commits since open.
    pub commits: u64,
    /// Group-commit batches written since open (= WAL write passes).
    pub batches: u64,
    /// WAL fsyncs since open (0 with `fsync: false`). Under contention
    /// `fsyncs / commits` drops toward `1 / batch size`.
    pub fsyncs: u64,
    /// Largest group-commit batch observed.
    pub commit_batch_max: u64,
    /// Prepared-query cache hits.
    pub cache_hits: u64,
    /// Prepared-query cache misses (cold evaluations).
    pub cache_misses: u64,
    /// Live entries in the prepared-query cache.
    pub cache_entries: usize,
}

/// What a primary has for a replica resuming from some seq: either the
/// exact sealed records it missed, or — when that seq has fallen out of
/// the retained window — a full checkpoint to reset from.
#[derive(Debug)]
pub enum ReplBacklog {
    /// Contiguous sealed WAL records starting exactly at the requested
    /// seq, byte-identical to the primary's log. Empty means the replica
    /// is caught up.
    Records {
        /// Seq of the last record included (`from_seq - 1` when empty).
        last_seq: u64,
        /// The records, in seq order.
        records: Vec<Arc<Vec<u8>>>,
    },
    /// The requested seq left the retained window: a full catalog
    /// checkpoint, encoded as one snapshot slice (shard 0 of 1), cut
    /// under commit leadership so it is a true commit-order prefix.
    Checkpoint {
        /// Generation the checkpoint freezes.
        seq: u64,
        /// [`snapshot::encode_slice`] bytes.
        bytes: Vec<u8>,
    },
}

/// Everything that can go wrong talking to a store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A stored record failed to decode.
    Codec(CodecError),
    /// The operation is invalid against the current catalog (unknown
    /// relation, arity mismatch, duplicate create, ...).
    Invalid(String),
    /// The query text did not parse.
    Parse(String),
    /// Static analysis rejected the query before evaluation.
    Rejected(Vec<Diagnostic>),
    /// The guarded evaluation tripped a budget, deadline, or contained
    /// fault.
    Fault(String),
    /// The request's deadline elapsed — either while it sat in the
    /// server queue (never evaluated) or during the guarded evaluation.
    /// The wire form starts with the `DEADLINE_EXCEEDED` token so
    /// clients can match it without parsing prose.
    DeadlineExceeded {
        /// Milliseconds elapsed when the request was abandoned.
        elapsed_ms: u64,
        /// The propagated deadline, in milliseconds.
        limit_ms: u64,
    },
    /// The server shed this request before evaluating it: projected
    /// completion exceeded the deadline, or the server is past its
    /// high-water mark. The wire form starts with the `OVERLOADED`
    /// token and carries a machine-readable retry hint.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// A network operation timed out (client-side connect/read
    /// timeouts surface this instead of hanging on a dead peer).
    Timeout(String),
    /// A previous write crashed mid-commit; the store refuses further
    /// writes until reopened (which truncates the torn WAL tail).
    Unhealthy,
    /// The peer announced an incompatible wire-protocol or WAL-codec
    /// version in the `HELLO` handshake. Caught *before* any replication
    /// bytes flow — the alternative is a CRC failure mid-stream.
    VersionMismatch {
        /// `(protocol, codec)` this build speaks.
        ours: (u32, u8),
        /// `(protocol, codec)` the peer announced.
        theirs: (u32, u8),
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::Invalid(m) => write!(f, "invalid operation: {m}"),
            StoreError::Parse(m) => write!(f, "parse error: {m}"),
            StoreError::Rejected(diags) => {
                write!(f, "query rejected by analysis:")?;
                for d in diags {
                    write!(f, " [{} {}] {};", d.severity, d.code, d.message)?;
                }
                Ok(())
            }
            StoreError::Fault(m) => write!(f, "evaluation fault: {m}"),
            StoreError::DeadlineExceeded {
                elapsed_ms,
                limit_ms,
            } => write!(
                f,
                "DEADLINE_EXCEEDED {elapsed_ms} ms elapsed of {limit_ms} ms allowed"
            ),
            StoreError::Overloaded { retry_after_ms } => write!(
                f,
                "OVERLOADED retry_after_ms={retry_after_ms} server shed this request"
            ),
            StoreError::Timeout(m) => write!(f, "timeout: {m}"),
            StoreError::Unhealthy => {
                f.write_str("store is unhealthy after a failed write; reopen to recover")
            }
            StoreError::VersionMismatch { ours, theirs } => write!(
                f,
                "version mismatch: this build speaks protocol {} / codec {}, \
                 peer announced protocol {} / codec {}",
                ours.0, ours.1, theirs.0, theirs.1
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> StoreError {
        StoreError::Codec(e)
    }
}

/// Fingerprint of a formula's canonical (display) form, via the same
/// deterministic mixer the interner uses — stable across processes, so
/// prepared-query keys survive server restarts.
pub fn formula_fingerprint(formula: &Formula) -> u64 {
    let text = formula.to_string();
    fingerprint_bytes(0x5353_4f52_4551_5546, text.as_bytes())
}

/// Deterministic fingerprint of a relation name — the shard key. Same
/// mixer family as [`formula_fingerprint`] with a distinct seed, so the
/// two key spaces cannot alias.
pub fn relation_fingerprint(name: &str) -> u64 {
    fingerprint_bytes(0x5348_4152_444b_4559, name.as_bytes())
}

fn fingerprint_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = mix64(seed ^ bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = fold(h, u64::from_le_bytes(word));
    }
    h
}

/// The shard owning relation `name` in an `nshards`-way partition.
/// Deterministic across processes — snapshot slices record the shard
/// count they were written under, so recovery resolves ownership even
/// when the configured count changes between opens.
pub fn shard_of(name: &str, nshards: usize) -> usize {
    (relation_fingerprint(name) % nshards.max(1) as u64) as usize
}

/// A cached query answer: output columns plus the canonical relation.
type CachedAnswer = Arc<(Vec<String>, GeneralizedRelation)>;

struct PreparedCache {
    results: HashMap<(u64, u64), CachedAnswer>,
    order: VecDeque<(u64, u64)>,
    cap: usize,
}

impl PreparedCache {
    fn get(&self, key: (u64, u64)) -> Option<CachedAnswer> {
        self.results.get(&key).cloned()
    }

    fn put(&mut self, key: (u64, u64), value: CachedAnswer) {
        if self.cap == 0 || self.results.contains_key(&key) {
            return;
        }
        while self.results.len() >= self.cap {
            match self.order.pop_front() {
                Some(old) => {
                    self.results.remove(&old);
                }
                None => break,
            }
        }
        self.order.push_back(key);
        self.results.insert(key, value);
    }
}

/// One shard's immutable state: its slice of the catalog plus its slice
/// of the statistics, stamped with the seq of the last commit that
/// produced it. Successor states share untouched relations by `Arc`.
#[derive(Debug)]
struct ShardState {
    watermark: u64,
    relations: BTreeMap<String, Arc<GeneralizedRelation>>,
    stats: DbStats,
}

/// A shard: the pending head (latest *assigned* state, serialized by
/// the writer mutex), the published head (latest *durable* state,
/// swapped by the commit leader), and the count of published ops since
/// this shard was last folded into a snapshot slice.
struct Shard {
    writer: Mutex<Arc<ShardState>>,
    published: RwLock<Arc<ShardState>>,
    since_snapshot: AtomicU64,
}

/// A committer's wait handle: completed (with its seq) only after the
/// whole batch is durable, failed if the batch or the leader died.
struct Ticket {
    state: Mutex<TicketState>,
    cv: Condvar,
}

#[derive(Clone, Copy)]
enum TicketState {
    Pending,
    Durable(u64),
    Failed,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket {
            state: Mutex::new(TicketState::Pending),
            cv: Condvar::new(),
        }
    }

    fn finish(&self, outcome: TicketState) {
        *plock(&self.state) = outcome;
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<u64, StoreError> {
        let mut s = plock(&self.state);
        loop {
            match *s {
                TicketState::Pending => {
                    s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
                }
                TicketState::Durable(seq) => return Ok(seq),
                TicketState::Failed => return Err(StoreError::Unhealthy),
            }
        }
    }
}

/// One enqueued commit: its sealed WAL record and the shard state to
/// publish once the record is durable. The record is `Arc`d because it
/// outlives the commit: the replication backlog retains it verbatim so
/// replicas receive the exact bytes the primary's WAL holds.
struct BatchEntry {
    seq: u64,
    record: Arc<Vec<u8>>,
    shard: usize,
    state: Arc<ShardState>,
    ticket: Arc<Ticket>,
}

/// The global commit sequencer. `leader_active == false` implies
/// `batch.is_empty()`: an enqueuer finding no leader claims leadership
/// in the same critical section as its push, and a leader only steps
/// down after observing an empty batch under this lock.
struct CommitQueue {
    batch: Vec<BatchEntry>,
    next_seq: u64,
    leader_active: bool,
}

/// Bounded in-memory window of the most recent committed WAL records,
/// kept verbatim (sealed bytes) for replica catch-up. `floor()` is the
/// oldest seq still servable from memory; a replica resuming below it
/// gets a checkpoint instead.
struct ReplRing {
    /// Seq the *next* committed record will carry (so an empty ring
    /// means "everything up to `next - 1` is already applied").
    next: u64,
    records: VecDeque<(u64, Arc<Vec<u8>>)>,
    cap: usize,
}

impl ReplRing {
    fn floor(&self) -> u64 {
        self.records.front().map_or(self.next, |(s, _)| *s)
    }

    fn push(&mut self, seq: u64, record: Arc<Vec<u8>>) {
        self.next = seq + 1;
        if self.cap == 0 {
            return;
        }
        self.records.push_back((seq, record));
        while self.records.len() > self.cap {
            self.records.pop_front();
        }
    }

    fn reset(&mut self, next: u64) {
        self.next = next;
        self.records.clear();
    }
}

/// A commit subscriber: invoked (under the watcher lock, so keep it
/// cheap — flip a flag, write a wake byte) with the last seq of every
/// successfully published batch.
type CommitWatcher = Box<dyn Fn(u64) + Send + Sync>;

/// Per-shard successor state staged during a replicated apply:
/// (watermark, relations, stats, ops applied to this shard).
type StagedShard = (
    u64,
    BTreeMap<String, Arc<GeneralizedRelation>>,
    DbStats,
    u64,
);

/// Per-store observability state: the metrics registry every layer of
/// this store (WAL, query path, and the serving stack via
/// [`Store::registry`]) records into, plus the per-query tracing ring
/// and the slow-query log. Per-store — not global — so concurrent
/// stores in one process never mix counters.
struct StoreObs {
    registry: Arc<dco_obs::Registry>,
    /// Per-store tracing switch (on by default; independent of the
    /// global `dco_obs` kill switch, which gates everything).
    tracing: AtomicBool,
    slowlog: dco_obs::SlowLog,
    traces: dco_obs::TraceRing,
    /// `store.query.total` — whole query-path latency, ns.
    h_total: Arc<dco_obs::Histogram>,
    /// `store.query.eval` — guarded evaluation latency, ns.
    h_eval: Arc<dco_obs::Histogram>,
    /// `store.query.slow` — queries that crossed the slow threshold.
    c_slow: Arc<dco_obs::Counter>,
}

impl StoreObs {
    fn new() -> StoreObs {
        let registry = Arc::new(dco_obs::Registry::new());
        StoreObs {
            tracing: AtomicBool::new(true),
            slowlog: dco_obs::SlowLog::new(128),
            traces: dco_obs::TraceRing::new(256),
            h_total: registry.histogram("store.query.total"),
            h_eval: registry.histogram("store.query.eval"),
            c_slow: registry.counter("store.query.slow"),
            registry,
        }
    }
}

struct Inner {
    dir: PathBuf,
    opts: StoreOptions,
    shards: Vec<Shard>,
    current: RwLock<Arc<Generation>>,
    queue: Mutex<CommitQueue>,
    /// Signaled whenever leadership is released (manual snapshots wait
    /// here to take over the commit pipeline).
    leader_idle: Condvar,
    wal: Mutex<Wal>,
    healthy: AtomicBool,
    repl: Mutex<ReplRing>,
    watchers: Mutex<Vec<(u64, CommitWatcher)>>,
    watcher_seq: AtomicU64,
    prepared: Mutex<PreparedCache>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    commits: AtomicU64,
    batches: AtomicU64,
    fsyncs: AtomicU64,
    batch_max: AtomicU64,
    obs: StoreObs,
}

/// Handle to an open store. Cheap to clone; all clones share the same
/// WAL, shard set, generation chain, and prepared-query cache.
#[derive(Clone)]
pub struct Store {
    inner: Arc<Inner>,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.inner.dir)
            .field("generation", &self.read().seq)
            .field("shards", &self.inner.shards.len())
            .finish()
    }
}

/// Poison-tolerant mutex lock: a panic while holding a lock (e.g. an
/// injected fault at a WAL probe) must not wedge the store — the
/// `healthy` flag, not lock poison, is the source of truth.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Releases leadership and fails every pending committer if the leader
/// unwinds (injected fault, I/O error) between claiming the batch and
/// acknowledging it. Disarmed on the success path. This is what keeps
/// "acknowledged" honest: a ticket can only ever complete after the
/// fsync, and any leader death converts every in-flight ticket into
/// [`StoreError::Unhealthy`] instead of leaving threads parked forever.
struct LeaderGuard<'a> {
    inner: &'a Inner,
    tickets: Vec<Arc<Ticket>>,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.inner.healthy.store(false, Ordering::SeqCst);
        for t in &self.tickets {
            t.finish(TicketState::Failed);
        }
        let drained = {
            let mut q = plock(&self.inner.queue);
            q.leader_active = false;
            std::mem::take(&mut q.batch)
        };
        self.inner.leader_idle.notify_all();
        for e in drained {
            e.ticket.finish(TicketState::Failed);
        }
    }
}

impl Store {
    /// Open (creating if needed) the store in directory `dir`.
    ///
    /// Recovery: load every valid snapshot slice, resolve each relation
    /// from the newest slice *owning* it (under the slice's own recorded
    /// shard count), replay every WAL entry past that relation's covered
    /// seq, truncate any torn tail. A fault-free reopen is always an
    /// identity: `open` after clean writes reproduces the exact
    /// pre-close catalog (the chaos suite asserts this).
    pub fn open(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<Store, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let nshards = opts.shards.max(1);

        let slices = snapshot::load_slices(&dir)?;
        let (mut wal, scan) = Wal::open(&dir.join("wal.log"), opts.fsync)?;
        let obs = StoreObs::new();
        wal.set_fsync_histogram(obs.registry.histogram("store.wal.fsync"));

        // Per-relation resolution: newest owning slice wins; a newer
        // owning slice that omits the relation records a drop.
        let mut resolved: BTreeMap<String, (u64, Arc<GeneralizedRelation>)> = BTreeMap::new();
        for slice in &slices {
            for (name, rel) in &slice.relations {
                match resolved.get(name) {
                    Some((at, _)) if *at >= slice.seq => {}
                    _ => {
                        resolved.insert(name.clone(), (slice.seq, rel.clone()));
                    }
                }
            }
        }
        let mut relations: BTreeMap<String, Arc<GeneralizedRelation>> = resolved
            .into_iter()
            .filter(|(name, (at, _))| snapshot::covered_seq(&slices, name) <= *at)
            .map(|(name, (_, rel))| (name, rel))
            .collect();

        let mut seq = slices.iter().map(|s| s.seq).max().unwrap_or(0);
        let mut replayed = vec![0u64; nshards];
        for entry in &scan.entries {
            seq = seq.max(entry.seq);
            if entry.seq <= snapshot::covered_seq(&slices, entry.op.target()) {
                continue; // already folded into an owning slice
            }
            apply_op(&mut relations, &entry.op).map_err(StoreError::Invalid)?;
            replayed[shard_of(entry.op.target(), nshards)] += 1;
        }
        wal.set_next_seq(seq + 1);

        // Partition the recovered catalog into shard states. Every shard
        // is current as of `seq` (all entries <= seq were applied), so
        // each legitimately claims `seq` as its initial watermark.
        let mut per_shard: Vec<BTreeMap<String, Arc<GeneralizedRelation>>> =
            vec![BTreeMap::new(); nshards];
        for (name, rel) in relations {
            let s = shard_of(&name, nshards);
            per_shard[s].insert(name, rel);
        }
        let mut states = Vec::with_capacity(nshards);
        for rels in per_shard {
            let mut stats = DbStats::default();
            for (name, rel) in &rels {
                stats.update(name, rel);
            }
            states.push(Arc::new(ShardState {
                watermark: seq,
                relations: rels,
                stats,
            }));
        }
        let shards = states
            .iter()
            .enumerate()
            .map(|(i, st)| Shard {
                writer: Mutex::new(st.clone()),
                published: RwLock::new(st.clone()),
                since_snapshot: AtomicU64::new(replayed[i]),
            })
            .collect();

        let generation = Arc::new(compose_generation(seq, &states));
        let repl_backlog_cap = opts.repl_backlog;
        let inner = Inner {
            dir,
            prepared: Mutex::new(PreparedCache {
                results: HashMap::new(),
                order: VecDeque::new(),
                cap: opts.prepared_cache_cap,
            }),
            opts,
            shards,
            current: RwLock::new(generation),
            queue: Mutex::new(CommitQueue {
                batch: Vec::new(),
                next_seq: seq + 1,
                leader_active: false,
            }),
            leader_idle: Condvar::new(),
            wal: Mutex::new(wal),
            healthy: AtomicBool::new(true),
            repl: Mutex::new(ReplRing {
                next: seq + 1,
                records: VecDeque::new(),
                cap: repl_backlog_cap,
            }),
            watchers: Mutex::new(Vec::new()),
            watcher_seq: AtomicU64::new(1),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            batch_max: AtomicU64::new(0),
            obs,
        };
        Ok(Store {
            inner: Arc::new(inner),
        })
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The current generation — a frozen catalog plus its seq. Hold the
    /// returned `Arc` to read at a stable snapshot while writes proceed.
    pub fn read(&self) -> Arc<Generation> {
        self.inner
            .current
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Declare a new empty relation.
    pub fn create(&self, name: &str, arity: u32) -> Result<u64, StoreError> {
        self.apply(LogOp::Create {
            name: name.to_string(),
            arity,
        })
    }

    /// Remove a relation from the catalog.
    pub fn drop_relation(&self, name: &str) -> Result<u64, StoreError> {
        self.apply(LogOp::Drop {
            name: name.to_string(),
        })
    }

    /// Union tuples into a relation.
    pub fn insert(&self, name: &str, rel: GeneralizedRelation) -> Result<u64, StoreError> {
        self.apply(LogOp::InsertTuples {
            name: name.to_string(),
            rel,
        })
    }

    /// Delete every stored tuple subsumed by a tuple of `rel`.
    pub fn remove_subsumed(&self, name: &str, rel: GeneralizedRelation) -> Result<u64, StoreError> {
        self.apply(LogOp::RemoveSubsumed {
            name: name.to_string(),
            rel,
        })
    }

    /// Replace a relation's instance wholesale.
    pub fn replace(&self, name: &str, rel: GeneralizedRelation) -> Result<u64, StoreError> {
        self.apply(LogOp::Replace {
            name: name.to_string(),
            rel,
        })
    }

    /// Log and apply one operation; returns its WAL seq. The caller is
    /// acknowledged only after its record's group-commit batch is
    /// durable and published — so an acknowledged seq is on disk and
    /// visible to readers by the time the caller sees it.
    ///
    /// Concurrency: validation and successor-state computation run under
    /// the target relation's *shard* mutex (parallel across shards); seq
    /// assignment and batching under the global queue mutex (cheap); the
    /// WAL write + fsync is done once per batch by whichever committer
    /// is leading.
    pub fn apply(&self, op: LogOp) -> Result<u64, StoreError> {
        if !self.inner.healthy.load(Ordering::SeqCst) {
            return Err(StoreError::Unhealthy);
        }
        let shard_idx = shard_of(op.target(), self.inner.shards.len());
        // Expensive, shard-independent work first: payload encoding.
        let payload = crate::wal::encode_op(&op);

        let shard = &self.inner.shards[shard_idx];
        let mut head = plock(&shard.writer);

        // Validate and compute the successor shard state against the
        // pending head *before* enqueueing, so the WAL never contains an
        // inapplicable op and invalid ops consume no seq (the assigned
        // seq sequence must stay gap-free — recovery treats a seq break
        // as a torn tail).
        let mut relations = head.relations.clone();
        apply_op(&mut relations, &op).map_err(StoreError::Invalid)?;
        let mut stats = head.stats.clone();
        match relations.get(op.target()) {
            Some(rel) => stats.update(op.target(), rel),
            None => stats.remove(op.target()),
        }

        let ticket = Arc::new(Ticket::new());
        let lead = {
            let mut q = plock(&self.inner.queue);
            if !self.inner.healthy.load(Ordering::SeqCst) {
                // A leader died while we were computing: our base state
                // may include never-durable pending writes. Refuse
                // before taking a seq.
                return Err(StoreError::Unhealthy);
            }
            let seq = q.next_seq;
            q.next_seq += 1;
            let state = Arc::new(ShardState {
                watermark: seq,
                relations,
                stats,
            });
            *head = state.clone();
            q.batch.push(BatchEntry {
                seq,
                record: Arc::new(crate::wal::seal_entry(seq, &payload)),
                shard: shard_idx,
                state,
                ticket: ticket.clone(),
            });
            if q.leader_active {
                false
            } else {
                q.leader_active = true;
                true
            }
        };
        drop(head); // writers to this shard may now stack on our pending state

        if lead {
            self.lead();
        }
        ticket.wait()
    }

    /// The leader loop: drain batches until the queue is empty, then
    /// step down. At most one thread runs this at a time.
    fn lead(&self) {
        loop {
            let batch = {
                let mut q = plock(&self.inner.queue);
                if q.batch.is_empty() {
                    q.leader_active = false;
                    self.inner.leader_idle.notify_all();
                    return;
                }
                std::mem::take(&mut q.batch)
            };
            if !self.commit_batch(batch) {
                return; // guard already failed tickets + released leadership
            }
            if self.auto_snapshot_due() {
                let mut guard = LeaderGuard {
                    inner: &self.inner,
                    tickets: Vec::new(),
                    armed: true,
                };
                if self.snapshot_cycle(false).is_err() {
                    return; // guard cleans up on drop
                }
                guard.armed = false;
            }
        }
    }

    /// Commit one batch: single WAL write pass + fsync, then publish
    /// each shard state in seq order, swap the global generation, and
    /// acknowledge every ticket. Returns false (after guard cleanup) on
    /// any failure.
    fn commit_batch(&self, batch: Vec<BatchEntry>) -> bool {
        let mut guard = LeaderGuard {
            inner: &self.inner,
            tickets: batch.iter().map(|e| e.ticket.clone()).collect(),
            armed: true,
        };
        if !self.inner.healthy.load(Ordering::SeqCst) {
            return false;
        }
        let last_seq = match batch.last() {
            Some(e) => e.seq,
            None => return false,
        };

        // Durability point: one write pass, one fsync, for the whole
        // batch. Probes inside may unwind (chaos); the guard converts
        // that into failed tickets + an unhealthy store.
        {
            let mut wal = plock(&self.inner.wal);
            if wal
                .append_records(batch.iter().map(|e| e.record.as_slice()))
                .is_err()
            {
                return false;
            }
            wal.set_next_seq(last_seq + 1);
        }
        if self.inner.opts.fsync {
            self.inner.fsyncs.fetch_add(1, Ordering::Relaxed);
        }

        // Publish in seq order: a fault between swaps leaves a seq-
        // prefix of the batch visible — never a torn interleaving — and
        // everything visible is already durable.
        for e in &batch {
            guard::probe(ProbeSite::ShardPublish);
            let shard = &self.inner.shards[e.shard];
            *shard.published.write().unwrap_or_else(|p| p.into_inner()) = e.state.clone();
            shard.since_snapshot.fetch_add(1, Ordering::Relaxed);
        }
        let generation = Arc::new(self.compose(last_seq));
        *self
            .inner
            .current
            .write()
            .unwrap_or_else(|p| p.into_inner()) = generation;

        self.inner
            .commits
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.inner.batches.fetch_add(1, Ordering::Relaxed);
        self.inner
            .batch_max
            .fetch_max(batch.len() as u64, Ordering::Relaxed);

        // Retain the batch's records (verbatim sealed bytes) for replica
        // catch-up *before* acknowledging: once a committer sees its
        // seq, that seq must be streamable.
        {
            let mut ring = plock(&self.inner.repl);
            for e in &batch {
                ring.push(e.seq, e.record.clone());
            }
        }

        guard.armed = false;
        for e in &batch {
            e.ticket.finish(TicketState::Durable(e.seq));
        }
        self.notify_watchers(last_seq);
        true
    }

    /// Run every commit watcher with the just-published seq. Called by
    /// the leader after acknowledging a batch; watchers run under the
    /// registration lock, so they must be cheap and non-reentrant (the
    /// server's watcher just pokes a wake token).
    fn notify_watchers(&self, seq: u64) {
        for (_, w) in plock(&self.inner.watchers).iter() {
            w(seq);
        }
    }

    /// Compose the global generation from the published shard states.
    fn compose(&self, seq: u64) -> Generation {
        let states: Vec<Arc<ShardState>> = self
            .inner
            .shards
            .iter()
            .map(|s| {
                s.published
                    .read()
                    .unwrap_or_else(|p| p.into_inner())
                    .clone()
            })
            .collect();
        compose_generation(seq, &states)
    }

    fn auto_snapshot_due(&self) -> bool {
        let every = self.inner.opts.snapshot_every;
        every > 0
            && self
                .inner
                .shards
                .iter()
                .any(|s| s.since_snapshot.load(Ordering::Relaxed) >= every)
    }

    /// Force a snapshot cycle over every shard and truncate the WAL.
    /// Returns the slices' total on-disk size in bytes — the standard-
    /// encoding measure of the catalog (§3) plus envelope overhead.
    pub fn snapshot(&self) -> Result<u64, StoreError> {
        self.claim_leadership()?;
        let mut guard = LeaderGuard {
            inner: &self.inner,
            tickets: Vec::new(),
            armed: true,
        };
        let bytes = self.snapshot_cycle(true)?;
        guard.armed = false;
        // Commits may have queued behind us while we were slicing; they
        // have no leader (they saw `leader_active`), so drain them now.
        self.lead();
        Ok(bytes)
    }

    /// Take over the commit pipeline: wait for the current leader (if
    /// any) to drain and step down, then claim leadership so nothing can
    /// interleave with the caller's critical section. The caller *must*
    /// hand leadership back by calling [`Store::lead`] (which drains any
    /// commits that queued behind it and steps down) — unless its
    /// `LeaderGuard` fired, which already released leadership while
    /// wounding the store.
    fn claim_leadership(&self) -> Result<(), StoreError> {
        if !self.inner.healthy.load(Ordering::SeqCst) {
            return Err(StoreError::Unhealthy);
        }
        let mut q = plock(&self.inner.queue);
        while q.leader_active {
            q = self
                .inner
                .leader_idle
                .wait(q)
                .unwrap_or_else(|p| p.into_inner());
        }
        if !self.inner.healthy.load(Ordering::SeqCst) {
            return Err(StoreError::Unhealthy);
        }
        q.leader_active = true;
        Ok(())
    }

    /// Re-slice shards and truncate the WAL. With `force_all` every
    /// shard holding data is written; otherwise only *dirty* shards
    /// (published ops since their last slice). Truncation is safe either
    /// way: the caller holds leadership (no concurrent WAL writes), and
    /// every WAL entry's target shard is by definition dirty, so each
    /// entry is covered by the fresh slice of its shard — while clean
    /// shards stay covered by their existing slices. This is what makes
    /// the trigger per-shard: a hot relation forcing frequent cycles
    /// only rewrites its own shard's slice, and cold shards' coverage
    /// never goes stale.
    fn snapshot_cycle(&self, force_all: bool) -> Result<u64, StoreError> {
        let nshards = self.inner.shards.len();
        let mut bytes = 0;
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let dirty = shard.since_snapshot.load(Ordering::Relaxed) > 0;
            if !dirty && !force_all {
                continue;
            }
            let state = shard
                .published
                .read()
                .unwrap_or_else(|p| p.into_inner())
                .clone();
            if !dirty && state.relations.is_empty() && state.watermark == 0 {
                continue; // nothing was ever recorded for this shard
            }
            bytes += snapshot::write_slice(
                &self.inner.dir,
                state.watermark,
                i,
                nshards,
                &state.relations,
                self.inner.opts.fsync,
            )?;
            shard.since_snapshot.store(0, Ordering::Relaxed);
        }
        plock(&self.inner.wal).truncate()?;
        Ok(bytes)
    }

    /// Subscribe to commit publications: `watcher` runs with the last
    /// seq of every successfully published batch (local commits,
    /// replicated batches, and installed checkpoints alike). Returns an
    /// id for [`Store::remove_commit_watcher`]. Watchers run on the
    /// committing leader's thread under the registration lock — keep
    /// them to a flag flip or a wake-token poke.
    pub fn on_commit(&self, watcher: impl Fn(u64) + Send + Sync + 'static) -> u64 {
        let id = self.inner.watcher_seq.fetch_add(1, Ordering::Relaxed);
        plock(&self.inner.watchers).push((id, Box::new(watcher)));
        id
    }

    /// Unsubscribe a watcher registered with [`Store::on_commit`].
    pub fn remove_commit_watcher(&self, id: u64) {
        plock(&self.inner.watchers).retain(|(wid, _)| *wid != id);
    }

    /// What a replica that has applied everything up to `from_seq - 1`
    /// should receive next: at most `max_records` sealed records from
    /// the in-memory backlog, or a full checkpoint when `from_seq` has
    /// fallen out of the retained window. A `from_seq` *ahead* of this
    /// store's history is refused — it means the replica was paired with
    /// a different primary (or a wiped one).
    pub fn repl_backlog(
        &self,
        from_seq: u64,
        max_records: usize,
    ) -> Result<ReplBacklog, StoreError> {
        {
            let ring = plock(&self.inner.repl);
            if from_seq > ring.next {
                return Err(StoreError::Invalid(format!(
                    "replica resumes from seq {from_seq} but this primary's history \
                     ends at {}",
                    ring.next - 1
                )));
            }
            if from_seq >= ring.floor() {
                let mut records = Vec::new();
                let mut last_seq = from_seq.saturating_sub(1);
                for (seq, rec) in ring.records.iter() {
                    if *seq < from_seq {
                        continue;
                    }
                    if records.len() >= max_records {
                        break;
                    }
                    records.push(rec.clone());
                    last_seq = *seq;
                }
                return Ok(ReplBacklog::Records { last_seq, records });
            }
        }
        // Too far behind: cut a checkpoint. Claim commit leadership so
        // the published shard states are quiescent — the checkpoint must
        // be the catalog after a *prefix* of the commit order, never a
        // torn interleaving of a batch mid-publication.
        self.claim_leadership()?;
        let seq = self.read().seq;
        let mut relations: BTreeMap<String, Arc<GeneralizedRelation>> = BTreeMap::new();
        for shard in &self.inner.shards {
            let st = shard
                .published
                .read()
                .unwrap_or_else(|p| p.into_inner())
                .clone();
            for (name, rel) in &st.relations {
                relations.insert(name.clone(), rel.clone());
            }
        }
        let bytes = snapshot::encode_slice(seq, 0, 1, &relations);
        self.lead();
        Ok(ReplBacklog::Checkpoint { seq, bytes })
    }

    /// Apply a batch of sealed WAL records streamed from a primary,
    /// through the same validate → append → fsync → publish path a
    /// local commit takes. Returns the last applied seq.
    ///
    /// The records must be byte-identical primary WAL records forming a
    /// contiguous run starting at this store's `seq + 1`; they are fully
    /// decoded, CRC-checked, and validated against the catalog *before*
    /// anything is written, so a torn or gapped stream is refused with a
    /// typed error while the replica stays healthy and untouched. Once
    /// the mutation starts it is guarded exactly like a primary commit:
    /// a crash mid-apply wounds the store, and reopening recovers the
    /// acknowledged prefix (the WAL bytes are the primary's own, so the
    /// recovery machinery — torn-tail truncation included — is shared).
    ///
    /// A store applying replicated records must not take local writes
    /// (the routing layer pins writes to the primary); local commits
    /// interleaved with replication would fork the seq history.
    pub fn apply_replicated(&self, records: Vec<Vec<u8>>) -> Result<u64, StoreError> {
        if !self.inner.healthy.load(Ordering::SeqCst) {
            return Err(StoreError::Unhealthy);
        }
        if records.is_empty() {
            return Ok(self.read().seq);
        }
        self.claim_leadership()?;
        let out = self.apply_replicated_as_leader(records);
        // On success or a pre-mutation refusal we still hold leadership;
        // hand it back (draining any queued commits). If the guard fired
        // it already released leadership and wounded the store.
        if self.inner.healthy.load(Ordering::SeqCst) {
            self.lead();
        }
        out
    }

    fn apply_replicated_as_leader(&self, records: Vec<Vec<u8>>) -> Result<u64, StoreError> {
        // Phase 1 — decode + validate, no mutation: a bad stream must
        // leave the replica healthy and byte-identical to before.
        let base = self.read().seq;
        let mut entries = Vec::with_capacity(records.len());
        for (i, rec) in records.iter().enumerate() {
            let (entry, consumed) = crate::wal::decode_entry(rec)?;
            if consumed != rec.len() {
                return Err(StoreError::Invalid(format!(
                    "replication record {i} carries {} trailing bytes",
                    rec.len() - consumed
                )));
            }
            let expected = base + 1 + i as u64;
            if entry.seq != expected {
                return Err(StoreError::Invalid(format!(
                    "replication stream gap: expected seq {expected}, got {}",
                    entry.seq
                )));
            }
            entries.push(entry);
        }
        let nshards = self.inner.shards.len();
        // Successor state per touched shard, staged off the published
        // heads (we hold leadership, so published == latest).
        let mut staged: BTreeMap<usize, StagedShard> = BTreeMap::new();
        for entry in &entries {
            let sh = shard_of(entry.op.target(), nshards);
            let slot = staged.entry(sh).or_insert_with(|| {
                let st = self.inner.shards[sh]
                    .published
                    .read()
                    .unwrap_or_else(|p| p.into_inner())
                    .clone();
                (st.watermark, st.relations.clone(), st.stats.clone(), 0)
            });
            apply_op(&mut slot.1, &entry.op).map_err(|e| {
                StoreError::Invalid(format!("replicated op at seq {}: {e}", entry.seq))
            })?;
            match slot.1.get(entry.op.target()) {
                Some(rel) => slot.2.update(entry.op.target(), rel),
                None => slot.2.remove(entry.op.target()),
            }
            slot.0 = entry.seq;
            slot.3 += 1;
        }
        let last_seq = base + entries.len() as u64;

        // Phase 2 — mutate, guarded exactly like a primary commit: the
        // primary's record bytes go into our WAL verbatim (one write
        // pass + one fsync, same probe sites), then each staged shard
        // publishes and the generation swaps.
        let mut guard = LeaderGuard {
            inner: &self.inner,
            tickets: Vec::new(),
            armed: true,
        };
        {
            let mut wal = plock(&self.inner.wal);
            wal.append_records(records.iter().map(|r| r.as_slice()))?;
            wal.set_next_seq(last_seq + 1);
        }
        if self.inner.opts.fsync {
            self.inner.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        for (sh, (watermark, relations, stats, count)) in staged {
            guard::probe(ProbeSite::ShardPublish);
            let state = Arc::new(ShardState {
                watermark,
                relations,
                stats,
            });
            let shard = &self.inner.shards[sh];
            *plock(&shard.writer) = state.clone();
            *shard.published.write().unwrap_or_else(|p| p.into_inner()) = state;
            shard.since_snapshot.fetch_add(count, Ordering::Relaxed);
        }
        {
            let mut q = plock(&self.inner.queue);
            q.next_seq = q.next_seq.max(last_seq + 1);
        }
        let generation = Arc::new(self.compose(last_seq));
        *self
            .inner
            .current
            .write()
            .unwrap_or_else(|p| p.into_inner()) = generation;
        self.inner
            .commits
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        self.inner.batches.fetch_add(1, Ordering::Relaxed);
        self.inner
            .batch_max
            .fetch_max(entries.len() as u64, Ordering::Relaxed);
        // Feed our own backlog so replicas can chain off this store.
        {
            let mut ring = plock(&self.inner.repl);
            for (entry, rec) in entries.iter().zip(records) {
                ring.push(entry.seq, Arc::new(rec));
            }
        }
        if self.auto_snapshot_due() {
            self.snapshot_cycle(false)?;
        }
        guard.armed = false;
        self.notify_watchers(last_seq);
        Ok(last_seq)
    }

    /// Replace this store's entire catalog with a checkpoint at `seq`
    /// (a replica resync after falling out of the primary's backlog
    /// window). The checkpoint is written as a single snapshot slice
    /// under 1-way sharding — its atomic rename is the cut-over point,
    /// so a crash leaves either the old state or the complete new one —
    /// then the WAL is truncated and every shard republished.
    pub fn install_checkpoint(
        &self,
        seq: u64,
        relations: BTreeMap<String, Arc<GeneralizedRelation>>,
    ) -> Result<(), StoreError> {
        if !self.inner.healthy.load(Ordering::SeqCst) {
            return Err(StoreError::Unhealthy);
        }
        self.claim_leadership()?;
        let out = self.install_checkpoint_as_leader(seq, relations);
        if self.inner.healthy.load(Ordering::SeqCst) {
            self.lead();
        }
        out
    }

    fn install_checkpoint_as_leader(
        &self,
        seq: u64,
        relations: BTreeMap<String, Arc<GeneralizedRelation>>,
    ) -> Result<(), StoreError> {
        let current = self.read().seq;
        if seq < current {
            return Err(StoreError::Invalid(format!(
                "checkpoint at seq {seq} is behind current generation {current}"
            )));
        }
        let mut guard = LeaderGuard {
            inner: &self.inner,
            tickets: Vec::new(),
            armed: true,
        };
        // One slice, nshards = 1: it owns every relation name, so the
        // newest-owning-slice resolution on recovery sees exactly this
        // catalog once the rename lands (and the old state before it).
        // Stale WAL entries all have seq <= checkpoint seq and are
        // dropped by the covered-seq filter even before truncation.
        snapshot::write_slice(
            &self.inner.dir,
            seq,
            0,
            1,
            &relations,
            self.inner.opts.fsync,
        )?;
        {
            let mut wal = plock(&self.inner.wal);
            wal.truncate()?;
            wal.set_next_seq(seq + 1);
        }
        let nshards = self.inner.shards.len();
        let mut per_shard: Vec<BTreeMap<String, Arc<GeneralizedRelation>>> =
            vec![BTreeMap::new(); nshards];
        for (name, rel) in relations {
            let sh = shard_of(&name, nshards);
            per_shard[sh].insert(name, rel);
        }
        let mut states = Vec::with_capacity(nshards);
        for rels in per_shard {
            let mut stats = DbStats::default();
            for (name, rel) in &rels {
                stats.update(name, rel);
            }
            states.push(Arc::new(ShardState {
                watermark: seq,
                relations: rels,
                stats,
            }));
        }
        for (shard, st) in self.inner.shards.iter().zip(&states) {
            *plock(&shard.writer) = st.clone();
            *shard.published.write().unwrap_or_else(|p| p.into_inner()) = st.clone();
            shard.since_snapshot.store(0, Ordering::Relaxed);
        }
        {
            let mut q = plock(&self.inner.queue);
            q.next_seq = q.next_seq.max(seq + 1);
        }
        *self
            .inner
            .current
            .write()
            .unwrap_or_else(|p| p.into_inner()) = Arc::new(compose_generation(seq, &states));
        plock(&self.inner.repl).reset(seq + 1);
        guard.armed = false;
        self.notify_watchers(seq);
        Ok(())
    }

    /// Parse, preflight, and evaluate a query against the current
    /// generation, consulting the prepared-query cache first.
    pub fn query(&self, src: &str) -> Result<QueryOutput, StoreError> {
        let formula = parse_formula(src).map_err(|e| StoreError::Parse(e.to_string()))?;
        self.query_formula(&formula)
    }

    /// Cache epoch of a formula under a generation: a fold over the
    /// shard watermarks of every relation the formula touches. Writes to
    /// other shards leave the epoch — and thus the cached entry — valid;
    /// a formula touching no relation at all (pure order constraints)
    /// has the constant epoch 0 and caches forever.
    fn cache_epoch(&self, formula: &Formula, generation: &Generation) -> u64 {
        let preds = formula.predicates();
        if preds.is_empty() {
            return 0;
        }
        let nshards = generation.shard_marks.len();
        let mut h = mix64(0x4550_4f43_4856_4543 ^ preds.len() as u64);
        for name in preds.keys() {
            h = fold(h, relation_fingerprint(name));
            h = fold(h, generation.shard_marks[shard_of(name, nshards)]);
        }
        h
    }

    /// [`Store::query`] for an already-parsed formula.
    pub fn query_formula(&self, formula: &Formula) -> Result<QueryOutput, StoreError> {
        self.query_formula_limited(formula, GuardLimits::none())
    }

    /// The planner's cost estimate for `formula` against the current
    /// generation's statistics, in the planner's abstract cost units.
    /// This is the admission-control signal: the server multiplies it
    /// by a calibrated ms-per-unit rate to project completion time
    /// before committing a worker to the evaluation.
    pub fn estimate_query_cost(&self, formula: &Formula) -> f64 {
        let generation = self.read();
        dco_analysis::planner::estimate_formula(formula, &generation.stats)
    }

    /// Whether the prepared-query cache holds a still-valid answer for
    /// `formula` under the current generation. Admission control uses
    /// this to avoid shedding a query whose answer is already sitting
    /// in memory — a cache hit costs microseconds regardless of the
    /// planner's estimate.
    pub fn has_prepared(&self, formula: &Formula) -> bool {
        let generation = self.read();
        let key = (
            formula_fingerprint(formula),
            self.cache_epoch(formula, &generation),
        );
        plock(&self.inner.prepared).get(key).is_some()
    }

    /// [`Store::query_formula`] with extra per-request guard limits
    /// (the wire's `@deadline_ms=…` options). The request's limits are
    /// *intersected* with the statistics-derived defaults — a client
    /// can tighten the budgets the server would enforce, never loosen
    /// them. A deadline trip surfaces as the typed
    /// [`StoreError::DeadlineExceeded`], not a generic fault.
    pub fn query_formula_limited(
        &self,
        formula: &Formula,
        extra: GuardLimits,
    ) -> Result<QueryOutput, StoreError> {
        let obs = &self.inner.obs;
        // The store owns the per-query trace; the serving layer hands
        // over the request's queue wait via `trace::note_queue_wait`
        // just before calling in, and `begin` turns it into the leading
        // span. `traced` is false when tracing is off or an enclosing
        // trace is active — every exit below must then skip `finish`.
        let traced =
            obs.tracing.load(Ordering::Relaxed) && dco_obs::trace::begin(&formula.to_string());
        let started = Instant::now();

        let generation = self.read();
        let fp = formula_fingerprint(formula);
        let key = (fp, self.cache_epoch(formula, &generation));

        if let Some(hit) = plock(&self.inner.prepared).get(key) {
            self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
            if traced {
                dco_obs::trace::child("cache_hit", started.elapsed());
            }
            self.finish_query_trace(traced, started, None);
            return Ok(QueryOutput {
                generation: generation.seq,
                columns: hit.0.clone(),
                relation: hit.1.clone(),
                cached: true,
                stats: None,
            });
        }
        // Static preflight: reject before spending evaluation budget.
        let phase = Instant::now();
        let preflight = preflight_formula(
            formula,
            Some(generation.db.schema()),
            &AnalysisOptions::default(),
        );
        if traced {
            dco_obs::trace::child("preflight", phase.elapsed());
        }
        if let Err(d) = preflight {
            self.finish_query_trace(traced, started, None);
            return Err(StoreError::Rejected(d));
        }

        // Guarded evaluation under estimate-derived budgets, of the
        // statistics-planned formula (an equivalence-preserving reorder,
        // so the cache key — the *original* formula's fingerprint — still
        // identifies the answer). Only queries that reach evaluation
        // count as cache misses.
        self.inner.cache_misses.fetch_add(1, Ordering::Relaxed);
        let phase = Instant::now();
        let limits = cost::suggested_limits_with_stats(
            formula,
            &generation.stats,
            generation.db.constants(),
        )
        .tightened(&extra);
        let planned = plan_formula(formula, &generation.stats);
        if traced {
            dco_obs::trace::child("plan", phase.elapsed());
        }
        let phase = Instant::now();
        let guarded = try_eval_with(&generation.db, &planned, limits);
        let eval_elapsed = phase.elapsed();
        obs.h_eval.record_duration(eval_elapsed);
        if traced {
            dco_obs::trace::child("eval", eval_elapsed);
        }
        let guarded = match guarded {
            Ok(g) => g,
            Err(e) => {
                // A failed evaluation is still worth a slow-log entry
                // (deadline trips are the classic slow query).
                self.finish_query_trace(traced, started, Some((&planned, &generation, None)));
                return Err(match e {
                    TryEvalError::Parse(p) => StoreError::Parse(p.to_string()),
                    TryEvalError::Invalid(i) => StoreError::Invalid(i.to_string()),
                    TryEvalError::Fault(f) => match f.kind {
                        EvalErrorKind::DeadlineExceeded {
                            elapsed_ms,
                            limit_ms,
                        } => StoreError::DeadlineExceeded {
                            elapsed_ms,
                            limit_ms,
                        },
                        _ => StoreError::Fault(f.to_string()),
                    },
                });
            }
        };

        let columns = guarded.value.columns;
        let relation = guarded.value.relation;
        plock(&self.inner.prepared).put(key, Arc::new((columns.clone(), relation.clone())));
        self.finish_query_trace(
            traced,
            started,
            Some((&planned, &generation, Some(relation.len() as u64))),
        );
        Ok(QueryOutput {
            generation: generation.seq,
            columns,
            relation,
            cached: false,
            stats: Some(guarded.stats),
        })
    }

    /// Close out one instrumented query: record the total latency,
    /// finish the trace (if this call began one), archive it, and — when
    /// the total (queue wait included) crosses the slow threshold —
    /// write a slow-log entry carrying the rendered span tree plus the
    /// estimates-side EXPLAIN plan with the measured root cardinality.
    /// The plan is rebuilt from [`explain_formula`] against the same
    /// stats snapshot the planner used — a static analysis, so a slow
    /// query is never re-evaluated just to explain itself.
    fn finish_query_trace(
        &self,
        traced: bool,
        started: Instant,
        planned: Option<(&Formula, &Generation, Option<u64>)>,
    ) {
        let obs = &self.inner.obs;
        obs.h_total.record_duration(started.elapsed());
        if !traced {
            return;
        }
        let Some(record) = dco_obs::trace::finish() else {
            return;
        };
        if obs.slowlog.is_slow(record.total_ns) {
            obs.c_slow.inc();
            let plan = planned
                .map(|(f, generation, actual)| {
                    let mut plan = dco_analysis::explain::explain_formula(f, &generation.stats);
                    if let Some(n) = actual {
                        plan.set_root_actual(n);
                    }
                    plan.render()
                })
                .unwrap_or_default();
            obs.slowlog.record(dco_obs::SlowQueryEntry {
                query: record.label.clone(),
                total_ns: record.total_ns,
                trace: record.render(),
                plan,
            });
        }
        obs.traces.push(record);
    }

    /// Plan and evaluate a query, returning the measured plan instead of
    /// the relation: every node carries the planner's estimated
    /// cardinality and the actual intermediate width the evaluator
    /// produced. Runs against the current generation's stats snapshot;
    /// never consults or fills the prepared cache (EXPLAIN is for
    /// inspection, not serving).
    pub fn query_explain(&self, src: &str) -> Result<ExplainOutput, StoreError> {
        let formula = parse_formula(src).map_err(|e| StoreError::Parse(e.to_string()))?;
        let generation = self.read();
        preflight_formula(
            &formula,
            Some(generation.db.schema()),
            &AnalysisOptions::default(),
        )
        .map_err(StoreError::Rejected)?;
        let explained = explain_with_stats(&generation.db, &formula, &generation.stats)
            .map_err(|e| StoreError::Invalid(e.to_string()))?;
        Ok(ExplainOutput {
            generation: generation.seq,
            columns: explained.result.columns,
            plan: explained.plan,
        })
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let generation = self.read();
        StoreStats {
            generation: generation.seq,
            relations: generation.db.schema().relations().count(),
            shards: self.inner.shards.len(),
            commits: self.inner.commits.load(Ordering::Relaxed),
            batches: self.inner.batches.load(Ordering::Relaxed),
            fsyncs: self.inner.fsyncs.load(Ordering::Relaxed),
            commit_batch_max: self.inner.batch_max.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
            cache_entries: plock(&self.inner.prepared).results.len(),
        }
    }

    /// Whether the writer is healthy (false after a crashed write until
    /// the store is reopened).
    pub fn is_healthy(&self) -> bool {
        self.inner.healthy.load(Ordering::SeqCst)
    }

    /// The metrics registry every layer of this store records into.
    /// The serving layer registers its instruments here too, so one
    /// `METRICS` scrape covers the whole stack.
    pub fn registry(&self) -> Arc<dco_obs::Registry> {
        self.inner.obs.registry.clone()
    }

    /// Enable or disable per-query tracing (on by default). With
    /// tracing off the query path's observability cost drops to two
    /// histogram updates per query.
    pub fn set_tracing(&self, on: bool) {
        self.inner.obs.tracing.store(on, Ordering::Relaxed);
    }

    /// Change the slow-query threshold
    /// ([`dco_obs::SlowLog::DEFAULT_THRESHOLD`] initially;
    /// `Duration::ZERO` logs every query, `Duration::MAX` disables).
    pub fn set_slow_query_threshold(&self, d: Duration) {
        self.inner.obs.slowlog.set_threshold(d);
    }

    /// Contents of the slow-query log, oldest first.
    pub fn slow_queries(&self) -> Vec<dco_obs::SlowQueryEntry> {
        self.inner.obs.slowlog.entries()
    }

    /// Recent per-query traces, oldest first.
    pub fn recent_traces(&self) -> Vec<dco_obs::TraceRecord> {
        self.inner.obs.traces.snapshot()
    }

    /// Prometheus-style text exposition of this store's registry. The
    /// point-in-time [`Store::stats`] counters are mirrored into gauges
    /// first, so a scrape sees the write path, the query path, and the
    /// serving layer under one consistent `dco_` namespace.
    pub fn metrics_text(&self) -> String {
        let s = self.stats();
        let r = &self.inner.obs.registry;
        r.set_gauge("store.generation", s.generation);
        r.set_gauge("store.relations", s.relations as u64);
        r.set_gauge("store.shards", s.shards as u64);
        r.set_gauge("store.commits", s.commits);
        r.set_gauge("store.batches", s.batches);
        r.set_gauge("store.fsyncs", s.fsyncs);
        r.set_gauge("store.commit.batch_max", s.commit_batch_max);
        r.set_gauge("store.cache.hits", s.cache_hits);
        r.set_gauge("store.cache.misses", s.cache_misses);
        r.set_gauge("store.cache.entries", s.cache_entries as u64);
        r.render()
    }
}

/// An EXPLAIN answer: the measured plan tree, tagged with its generation.
#[derive(Debug, Clone)]
pub struct ExplainOutput {
    /// Generation the plan was computed against.
    pub generation: u64,
    /// Output columns of the explained query.
    pub columns: Vec<String>,
    /// Plan tree with estimated and actual cardinality per node.
    pub plan: QueryPlan,
}

/// Assemble the global catalog + stats + watermark vector from per-shard
/// states. Relations are shared by `Arc`, so this is O(#relations)
/// pointer work, not a copy of any DNF.
fn compose_generation(seq: u64, states: &[Arc<ShardState>]) -> Generation {
    let mut schema = Schema::new();
    for st in states {
        for (name, rel) in &st.relations {
            schema = schema.with(name, rel.arity());
        }
    }
    let mut db = Database::new(schema);
    let mut stats = DbStats::default();
    for st in states {
        for (name, rel) in &st.relations {
            db.set_shared(name, rel.clone())
                .expect("composed relation matches its own declared arity");
        }
        stats.merge(&st.stats);
    }
    Generation {
        seq,
        db,
        stats,
        shard_marks: states.iter().map(|s| s.watermark).collect(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_core::prelude::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dco-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn triangle() -> GeneralizedRelation {
        GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        )
    }

    fn interval(lo: i64, hi: i64) -> GeneralizedRelation {
        GeneralizedRelation::from_raw(
            1,
            vec![
                RawAtom::new(Term::cst(rat(lo as i128, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::cst(rat(hi as i128, 1))),
            ],
        )
    }

    #[test]
    fn write_reopen_identity() {
        let dir = tmpdir("reopen");
        {
            let store = Store::open(&dir, StoreOptions::default()).unwrap();
            store.create("R", 2).unwrap();
            store.insert("R", triangle()).unwrap();
        }
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let generation = store.read();
        assert_eq!(generation.seq, 2);
        assert_eq!(generation.db.get("R"), Some(&triangle()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_replay_equals_pure_replay() {
        let dir = tmpdir("snapeq");
        let expected = {
            let store = Store::open(&dir, StoreOptions::default()).unwrap();
            store.create("R", 2).unwrap();
            store.insert("R", triangle()).unwrap();
            store.snapshot().unwrap();
            // More writes after the snapshot: recovery must replay them
            // on top of it.
            store.create("S", 1).unwrap();
            store
                .insert(
                    "S",
                    GeneralizedRelation::from_raw(
                        1,
                        vec![RawAtom::new(Term::var(0), RawOp::Gt, Term::cst(rat(1, 2)))],
                    ),
                )
                .unwrap();
            store.read().db.clone()
        };
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.read().db, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_isolation_reader_sees_frozen_generation() {
        let dir = tmpdir("isolation");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.create("R", 2).unwrap();
        store.insert("R", triangle()).unwrap();
        let frozen = store.read();
        store.replace("R", GeneralizedRelation::empty(2)).unwrap();
        // The old generation is untouched; the new one sees the write.
        assert_eq!(frozen.db.get("R"), Some(&triangle()));
        assert!(store.read().db.get("R").unwrap().is_empty());
        assert!(frozen.seq < store.read().seq);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prepared_cache_hits_match_cold_evaluation() {
        let dir = tmpdir("cache");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.create("R", 2).unwrap();
        store.insert("R", triangle()).unwrap();
        let src = "exists y . (R(x, y) & x < y)";
        let cold = store.query(src).unwrap();
        assert!(!cold.cached);
        let warm = store.query(src).unwrap();
        assert!(warm.cached);
        assert_eq!(warm.columns, cold.columns);
        assert_eq!(warm.relation, cold.relation);
        assert_eq!(warm.generation, cold.generation);
        // A write to R invalidates by key (R's shard mark changes), not
        // by flush.
        store.insert("R", GeneralizedRelation::empty(2)).unwrap();
        let after = store.query(src).unwrap();
        assert!(!after.cached);
        assert_eq!(after.relation, cold.relation, "empty union is a no-op");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_survives_writes_to_other_shards() {
        let dir = tmpdir("cacheshard");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let nshards = store.stats().shards;
        // Pick two relations that live in different shards (the
        // fingerprint is deterministic, so this search is too).
        let names: Vec<String> = (0..32).map(|i| format!("t{i}")).collect();
        let a = names[0].clone();
        let b = names
            .iter()
            .find(|n| shard_of(n, nshards) != shard_of(&a, nshards))
            .expect("32 names cannot all collide into one shard")
            .clone();
        store.create(&a, 1).unwrap();
        store.create(&b, 1).unwrap();
        store.insert(&b, interval(0, 5)).unwrap();

        let src = format!("{b}(x) & x < 3");
        let cold = store.query(&src).unwrap();
        assert!(!cold.cached);
        // A write to relation `a` (a different shard) must not evict
        // queries touching only `b`.
        store.insert(&a, interval(7, 9)).unwrap();
        let warm = store.query(&src).unwrap();
        assert!(
            warm.cached,
            "write to {a} (shard {}) evicted a query on {b} (shard {})",
            shard_of(&a, nshards),
            shard_of(&b, nshards)
        );
        assert_eq!(warm.relation, cold.relation);
        // A write to `b` itself does invalidate.
        store.insert(&b, interval(100, 101)).unwrap();
        assert!(!store.query(&src).unwrap().cached);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_stats_track_writes_incrementally() {
        let dir = tmpdir("genstats");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.create("R", 2).unwrap();
        store.insert("R", triangle()).unwrap();
        store.create("S", 1).unwrap();
        store
            .insert(
                "S",
                GeneralizedRelation::from_raw(
                    1,
                    vec![RawAtom::new(Term::var(0), RawOp::Gt, Term::cst(rat(1, 2)))],
                ),
            )
            .unwrap();
        store.drop_relation("S").unwrap();
        let generation = store.read();
        let full = DbStats::of_database(&generation.db);
        assert_eq!(generation.stats, full);
        assert_eq!(generation.stats.canonical_string(), full.canonical_string());
        assert!(generation.stats.get("S").is_none(), "dropped relation");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_survive_wal_replay_byte_identically() {
        let dir = tmpdir("statsreplay");
        let before = {
            let store = Store::open(&dir, StoreOptions::default()).unwrap();
            store.create("R", 2).unwrap();
            store.insert("R", triangle()).unwrap();
            store.snapshot().unwrap();
            // Post-snapshot writes force real WAL replay on reopen.
            store.create("S", 1).unwrap();
            store
                .insert(
                    "S",
                    GeneralizedRelation::from_raw(
                        1,
                        vec![RawAtom::new(Term::var(0), RawOp::Lt, Term::cst(rat(3, 7)))],
                    ),
                )
                .unwrap();
            store.read().stats.canonical_string()
        };
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let after = store.read().stats.canonical_string();
        assert_eq!(before, after, "stats must be a pure function of content");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multi_shard_catalog_survives_slices_plus_replay() {
        let dir = tmpdir("multishard");
        let opts = StoreOptions {
            shards: 4,
            ..StoreOptions::default()
        };
        let (expected_db, expected_stats, expected_seq) = {
            let store = Store::open(&dir, opts.clone()).unwrap();
            // Spread relations over all shards; mix covered (sliced) and
            // replayed (post-snapshot) history.
            for i in 0..8 {
                store.create(&format!("m{i}"), 1).unwrap();
                store.insert(&format!("m{i}"), interval(i, i + 2)).unwrap();
            }
            store.snapshot().unwrap();
            for i in 0..8 {
                store
                    .insert(&format!("m{i}"), interval(50 + i, 51 + i))
                    .unwrap();
            }
            store.drop_relation("m3").unwrap();
            let g = store.read();
            (g.db.clone(), g.stats.canonical_string(), g.seq)
        };
        let store = Store::open(&dir, opts).unwrap();
        let g = store.read();
        assert_eq!(g.db, expected_db);
        assert_eq!(g.stats.canonical_string(), expected_stats);
        assert_eq!(g.seq, expected_seq);
        assert!(g.db.get("m3").is_none(), "drop must survive recovery");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explain_reports_estimates_and_actuals_for_every_node() {
        let dir = tmpdir("explain");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.create("R", 2).unwrap();
        store.insert("R", triangle()).unwrap();
        let out = store
            .query_explain("exists y . (R(x, y) & x < 5 & !R(y, x))")
            .unwrap();
        assert_eq!(out.generation, store.read().seq);
        assert!(
            out.plan.root.fully_measured(),
            "unmeasured node:\n{}",
            out.plan.render()
        );
        for line in out.plan.render().lines().skip(1) {
            assert!(line.contains("est=") && line.contains("act="), "{line}");
        }
        // EXPLAIN result matches the serving path's relation width.
        let q = store
            .query("exists y . (R(x, y) & x < 5 & !R(y, x))")
            .unwrap();
        assert_eq!(out.plan.root.actual, Some(q.relation.len() as u64));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn analysis_preflight_rejects_bad_queries() {
        let dir = tmpdir("preflight");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.create("R", 2).unwrap();
        // Arity mismatch: caught statically, not at evaluation.
        match store.query("R(x, y, z)") {
            Err(StoreError::Rejected(diags)) => assert!(!diags.is_empty()),
            other => panic!("expected rejection, got {other:?}"),
        }
        match store.query("R(x y") {
            Err(StoreError::Parse(_)) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_ops_are_refused_and_not_logged() {
        let dir = tmpdir("invalid");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.create("R", 2).unwrap();
        assert!(matches!(store.create("R", 3), Err(StoreError::Invalid(_))));
        assert!(matches!(
            store.insert("R", GeneralizedRelation::empty(5)),
            Err(StoreError::Invalid(_))
        ));
        assert!(matches!(
            store.drop_relation("nope"),
            Err(StoreError::Invalid(_))
        ));
        // Seq only advanced for the one valid op.
        assert_eq!(store.read().seq, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_snapshot_truncates_wal() {
        let dir = tmpdir("autosnap");
        let opts = StoreOptions {
            snapshot_every: 4,
            ..StoreOptions::default()
        };
        let store = Store::open(&dir, opts.clone()).unwrap();
        store.create("R", 2).unwrap();
        for _ in 0..6 {
            store.insert("R", triangle()).unwrap();
        }
        drop(store);
        // After ≥4 ops on R's shard an automatic cycle ran; the WAL
        // holds only the suffix. Recovery must still see everything.
        let wal_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        assert!(
            wal_len < 200,
            "wal should have been truncated, still {wal_len} bytes"
        );
        let store = Store::open(&dir, opts).unwrap();
        assert_eq!(store.read().seq, 7);
        assert_eq!(store.read().db.get("R"), Some(&triangle()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hot_shard_auto_snapshots_do_not_starve_cold_shards() {
        let dir = tmpdir("hotcold");
        let opts = StoreOptions {
            snapshot_every: 4,
            shards: 8,
            ..StoreOptions::default()
        };
        let store = Store::open(&dir, opts.clone()).unwrap();
        // Find a "cold" name in a different shard than the hot one.
        let hot = "hot".to_string();
        let cold = (0..32)
            .map(|i| format!("cold{i}"))
            .find(|n| shard_of(n, 8) != shard_of(&hot, 8))
            .unwrap();
        store.create(&cold, 1).unwrap();
        store.insert(&cold, interval(-5, -1)).unwrap();
        store.create(&hot, 1).unwrap();
        // Hammer the hot relation: several auto cycles fire, but after
        // the first one the cold shard is clean and must not be
        // re-sliced — nor may truncation orphan its data.
        for i in 0..16 {
            store.insert(&hot, interval(i, i + 1)).unwrap();
        }
        let expected = store.read().db.clone();
        let expected_seq = store.read().seq;
        drop(store);

        let cold_shard = shard_of(&cold, 8);
        let hot_shard = shard_of(&hot, 8);
        let mut cold_slices = Vec::new();
        let mut hot_slices = Vec::new();
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(&format!("-s{cold_shard}of8.dcs")) {
                cold_slices.push(name.clone());
            }
            if name.ends_with(&format!("-s{hot_shard}of8.dcs")) {
                hot_slices.push(name.clone());
            }
        }
        assert_eq!(
            cold_slices.len(),
            1,
            "cold shard should be sliced exactly once: {cold_slices:?}"
        );
        assert_eq!(hot_slices.len(), 1, "stale hot slices must be deleted");
        // The cold slice froze at the cold shard's own watermark, far
        // behind the hot shard's — per-shard triggers, per-shard seqs.
        assert!(
            cold_slices[0] < hot_slices[0],
            "{cold_slices:?} {hot_slices:?}"
        );

        let store = Store::open(&dir, opts).unwrap();
        assert_eq!(store.read().db, expected, "cold data lost by hot cycles");
        assert_eq!(store.read().seq, expected_seq);
        assert_eq!(store.read().db.get(&cold), Some(&interval(-5, -1)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for n in [1usize, 2, 8, 13] {
            for i in 0..64 {
                let name = format!("rel{i}");
                let s = shard_of(&name, n);
                assert!(s < n);
                assert_eq!(s, shard_of(&name, n), "must be deterministic");
            }
        }
        // The partition actually spreads: 64 names over 8 shards must
        // hit more than one shard (fingerprint quality sanity check).
        let hit: std::collections::BTreeSet<usize> =
            (0..64).map(|i| shard_of(&format!("rel{i}"), 8)).collect();
        assert!(hit.len() > 4, "degenerate shard distribution: {hit:?}");
    }
}
