//! The durable, snapshot-isolated constraint database.
//!
//! ## Recovery invariant
//!
//! `Store::open(dir)` ≡ latest valid snapshot + in-order WAL replay of
//! every entry with `seq >` the snapshot's covered seq, with any torn WAL
//! tail truncated. Because every mutation is fsynced to the WAL *before*
//! it is applied in memory, a crash at any instant loses at most the
//! single in-flight (unacknowledged) operation — acknowledged writes are
//! always recovered.
//!
//! ## Isolation argument
//!
//! Readers never lock out writers and vice versa: the entire catalog
//! lives in an immutable [`Generation`] behind an `Arc`, and a write
//! installs a *new* generation with an atomic pointer swap. A reader
//! that clones the `Arc` therefore sees one frozen catalog for as long
//! as it likes — snapshot isolation — while writers proceed. Writes are
//! serialized through a single writer mutex (the WAL makes them totally
//! ordered anyway), so write-write conflicts cannot occur; the
//! generation seq doubles as the transaction timestamp.
//!
//! ## Fault containment
//!
//! The WAL append and snapshot write carry [`dco_core::guard`] probes.
//! When a chaos test injects a panic there, the unwind poisons the
//! writer mutex *after* `healthy` was cleared; every later write is
//! refused with [`StoreError::Unhealthy`] until the store is reopened
//! (which truncates the torn tail). Readers are unaffected — their
//! generation is immutable.

use crate::codec::CodecError;
use crate::snapshot;
use crate::wal::{apply_op, LogOp, Wal};
use dco_analysis::explain::QueryPlan;
use dco_analysis::stats::DbStats;
use dco_analysis::{cost, plan_formula, preflight_formula, AnalysisOptions, Diagnostic};
use dco_core::guard::GuardStats;
use dco_core::intern::{fold, mix64};
use dco_core::prelude::{Database, GeneralizedRelation, Schema};
use dco_fo::{explain_with_stats, try_eval_with, TryEvalError};
use dco_logic::{parse_formula, Formula};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Tuning knobs for a store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Take an automatic snapshot (and truncate the WAL) after this many
    /// logged operations. `0` disables automatic snapshots.
    pub snapshot_every: u64,
    /// Fsync the WAL after every append and snapshots before publishing.
    /// Turning this off trades the durability guarantee for speed
    /// (benchmarks, throwaway stores).
    pub fsync: bool,
    /// Maximum number of prepared-query results kept per store.
    pub prepared_cache_cap: usize,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            snapshot_every: 256,
            fsync: true,
            prepared_cache_cap: 256,
        }
    }
}

/// One immutable catalog version. Readers hold an `Arc<Generation>` and
/// see a frozen database regardless of concurrent writes.
#[derive(Debug)]
pub struct Generation {
    /// WAL sequence number of the last operation applied (0 = empty).
    pub seq: u64,
    /// The catalog at that point.
    pub db: Database,
    /// Per-relation statistics of the catalog, maintained incrementally:
    /// each write recomputes only the relation it touched. A pure function
    /// of the catalog content, so recovery (snapshot + WAL replay)
    /// reproduces it byte-identically.
    pub stats: DbStats,
}

/// A query answer, tagged with the generation it was computed against.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Generation the answer is valid for.
    pub generation: u64,
    /// Output columns (free variables, sorted).
    pub columns: Vec<String>,
    /// The denoted relation.
    pub relation: GeneralizedRelation,
    /// Whether the answer came from the prepared-query cache.
    pub cached: bool,
    /// Guard statistics of the evaluation (`None` on cache hits — no
    /// evaluation happened).
    pub stats: Option<GuardStats>,
}

/// Observable store counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Current generation seq.
    pub generation: u64,
    /// Number of relations in the catalog.
    pub relations: usize,
    /// Prepared-query cache hits.
    pub cache_hits: u64,
    /// Prepared-query cache misses (cold evaluations).
    pub cache_misses: u64,
    /// Live entries in the prepared-query cache.
    pub cache_entries: usize,
}

/// Everything that can go wrong talking to a store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A stored record failed to decode.
    Codec(CodecError),
    /// The operation is invalid against the current catalog (unknown
    /// relation, arity mismatch, duplicate create, ...).
    Invalid(String),
    /// The query text did not parse.
    Parse(String),
    /// Static analysis rejected the query before evaluation.
    Rejected(Vec<Diagnostic>),
    /// The guarded evaluation tripped a budget, deadline, or contained
    /// fault.
    Fault(String),
    /// A previous write crashed mid-append; the store refuses further
    /// writes until reopened (which truncates the torn WAL tail).
    Unhealthy,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::Invalid(m) => write!(f, "invalid operation: {m}"),
            StoreError::Parse(m) => write!(f, "parse error: {m}"),
            StoreError::Rejected(diags) => {
                write!(f, "query rejected by analysis:")?;
                for d in diags {
                    write!(f, " [{} {}] {};", d.severity, d.code, d.message)?;
                }
                Ok(())
            }
            StoreError::Fault(m) => write!(f, "evaluation fault: {m}"),
            StoreError::Unhealthy => {
                f.write_str("store is unhealthy after a failed write; reopen to recover")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> StoreError {
        StoreError::Codec(e)
    }
}

/// Fingerprint of a formula's canonical (display) form, via the same
/// deterministic mixer the interner uses — stable across processes, so
/// prepared-query keys survive server restarts.
pub fn formula_fingerprint(formula: &Formula) -> u64 {
    let text = formula.to_string();
    let mut h = mix64(0x5353_4f52_4551_5546 ^ text.len() as u64);
    for chunk in text.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = fold(h, u64::from_le_bytes(word));
    }
    h
}

/// A cached query answer: output columns plus the canonical relation.
type CachedAnswer = Arc<(Vec<String>, GeneralizedRelation)>;

struct PreparedCache {
    results: HashMap<(u64, u64), CachedAnswer>,
    order: VecDeque<(u64, u64)>,
    cap: usize,
}

impl PreparedCache {
    fn get(&self, key: (u64, u64)) -> Option<CachedAnswer> {
        self.results.get(&key).cloned()
    }

    fn put(&mut self, key: (u64, u64), value: CachedAnswer) {
        if self.cap == 0 || self.results.contains_key(&key) {
            return;
        }
        while self.results.len() >= self.cap {
            match self.order.pop_front() {
                Some(old) => {
                    self.results.remove(&old);
                }
                None => break,
            }
        }
        self.order.push_back(key);
        self.results.insert(key, value);
    }
}

struct WriterState {
    wal: Wal,
    healthy: bool,
    since_snapshot: u64,
}

struct Inner {
    dir: PathBuf,
    opts: StoreOptions,
    current: RwLock<Arc<Generation>>,
    writer: Mutex<WriterState>,
    prepared: Mutex<PreparedCache>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// Handle to an open store. Cheap to clone; all clones share the same
/// WAL, generation chain, and prepared-query cache.
#[derive(Clone)]
pub struct Store {
    inner: Arc<Inner>,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.inner.dir)
            .field("generation", &self.read().seq)
            .finish()
    }
}

/// Poison-tolerant mutex lock: a panic while holding the lock (e.g. an
/// injected fault at a WAL probe) must not wedge the store — the
/// `healthy` flag, not lock poison, is the source of truth.
fn lock_writer(m: &Mutex<WriterState>) -> MutexGuard<'_, WriterState> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Store {
    /// Open (creating if needed) the store in directory `dir`.
    ///
    /// Recovery: load the newest valid snapshot, replay every WAL entry
    /// with a later seq, truncate any torn tail. A fault-free reopen is
    /// always an identity: `open` after clean writes reproduces the
    /// exact pre-close catalog (the chaos suite asserts this).
    pub fn open(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<Store, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        let (snap_seq, snap_db) = match snapshot::load_latest(&dir)? {
            Some((seq, db)) => (seq, db),
            None => (0, Database::new(Schema::new())),
        };

        let (mut wal, scan) = Wal::open(&dir.join("wal.log"), opts.fsync)?;

        let mut schema = snap_db.schema().clone();
        let mut relations: BTreeMap<String, GeneralizedRelation> = snap_db
            .relations()
            .map(|(n, r)| (n.to_string(), r.clone()))
            .collect();
        let mut seq = snap_seq;
        for entry in &scan.entries {
            if entry.seq <= snap_seq {
                continue; // already folded into the snapshot
            }
            apply_op(&mut schema, &mut relations, &entry.op).map_err(StoreError::Invalid)?;
            seq = entry.seq;
        }
        wal.set_next_seq(seq + 1);

        let db = rebuild(schema, relations)?;
        let stats = DbStats::of_database(&db);
        let inner = Inner {
            dir,
            prepared: Mutex::new(PreparedCache {
                results: HashMap::new(),
                order: VecDeque::new(),
                cap: opts.prepared_cache_cap,
            }),
            opts,
            current: RwLock::new(Arc::new(Generation { seq, db, stats })),
            writer: Mutex::new(WriterState {
                wal,
                healthy: true,
                since_snapshot: 0,
            }),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        };
        Ok(Store {
            inner: Arc::new(inner),
        })
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The current generation — a frozen catalog plus its seq. Hold the
    /// returned `Arc` to read at a stable snapshot while writes proceed.
    pub fn read(&self) -> Arc<Generation> {
        self.inner
            .current
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Declare a new empty relation.
    pub fn create(&self, name: &str, arity: u32) -> Result<u64, StoreError> {
        self.apply(LogOp::Create {
            name: name.to_string(),
            arity,
        })
    }

    /// Remove a relation from the catalog.
    pub fn drop_relation(&self, name: &str) -> Result<u64, StoreError> {
        self.apply(LogOp::Drop {
            name: name.to_string(),
        })
    }

    /// Union tuples into a relation.
    pub fn insert(&self, name: &str, rel: GeneralizedRelation) -> Result<u64, StoreError> {
        self.apply(LogOp::InsertTuples {
            name: name.to_string(),
            rel,
        })
    }

    /// Delete every stored tuple subsumed by a tuple of `rel`.
    pub fn remove_subsumed(&self, name: &str, rel: GeneralizedRelation) -> Result<u64, StoreError> {
        self.apply(LogOp::RemoveSubsumed {
            name: name.to_string(),
            rel,
        })
    }

    /// Replace a relation's instance wholesale.
    pub fn replace(&self, name: &str, rel: GeneralizedRelation) -> Result<u64, StoreError> {
        self.apply(LogOp::Replace {
            name: name.to_string(),
            rel,
        })
    }

    /// Log and apply one operation; returns its WAL seq (= the new
    /// generation). This is the single write path: WAL first (fsynced),
    /// then the in-memory generation swap — so an acknowledged seq is
    /// durable by the time the caller sees it.
    pub fn apply(&self, op: LogOp) -> Result<u64, StoreError> {
        let mut w = lock_writer(&self.inner.writer);
        if !w.healthy {
            return Err(StoreError::Unhealthy);
        }

        // Validate and compute the successor catalog *before* logging, so
        // the WAL never contains an inapplicable op.
        let cur = self.read();
        let mut schema = cur.db.schema().clone();
        let mut relations: BTreeMap<String, GeneralizedRelation> = cur
            .db
            .relations()
            .map(|(n, r)| (n.to_string(), r.clone()))
            .collect();
        apply_op(&mut schema, &mut relations, &op).map_err(StoreError::Invalid)?;
        let db = rebuild(schema, relations)?;
        // Incremental stats: every LogOp names exactly one relation, so
        // only that relation's summary is recomputed for the successor
        // generation.
        let stats = advance_stats(&cur.stats, &op, &db);

        // Durability point. `healthy` is cleared across the append so a
        // contained panic (fault injection, crash) leaves the store
        // refusing writes rather than silently diverging from the log.
        w.healthy = false;
        let seq = w.wal.append(&op)?;
        w.healthy = true;

        let generation = Arc::new(Generation { seq, db, stats });
        *self
            .inner
            .current
            .write()
            .unwrap_or_else(|p| p.into_inner()) = generation.clone();

        w.since_snapshot += 1;
        if self.inner.opts.snapshot_every > 0 && w.since_snapshot >= self.inner.opts.snapshot_every
        {
            self.snapshot_locked(&mut w, &generation)?;
        }
        Ok(seq)
    }

    /// Force a snapshot of the current generation and truncate the WAL.
    /// Returns the snapshot's on-disk size in bytes — the standard-
    /// encoding measure of the catalog (§3) plus envelope overhead.
    pub fn snapshot(&self) -> Result<u64, StoreError> {
        let mut w = lock_writer(&self.inner.writer);
        if !w.healthy {
            return Err(StoreError::Unhealthy);
        }
        let generation = self.read();
        self.snapshot_locked(&mut w, &generation)
    }

    fn snapshot_locked(
        &self,
        w: &mut WriterState,
        generation: &Generation,
    ) -> Result<u64, StoreError> {
        // Same containment discipline as appends: a crash mid-snapshot
        // leaves only a temp file, but also an unhealthy writer until
        // reopen (the WAL was not yet truncated, so nothing is lost).
        w.healthy = false;
        let bytes = snapshot::write_snapshot(
            &self.inner.dir,
            generation.seq,
            &generation.db,
            self.inner.opts.fsync,
        )?;
        w.wal.truncate()?;
        w.healthy = true;
        w.since_snapshot = 0;
        Ok(bytes)
    }

    /// Parse, preflight, and evaluate a query against the current
    /// generation, consulting the prepared-query cache first.
    pub fn query(&self, src: &str) -> Result<QueryOutput, StoreError> {
        let formula = parse_formula(src).map_err(|e| StoreError::Parse(e.to_string()))?;
        self.query_formula(&formula)
    }

    /// [`Store::query`] for an already-parsed formula.
    pub fn query_formula(&self, formula: &Formula) -> Result<QueryOutput, StoreError> {
        let generation = self.read();
        let fp = formula_fingerprint(formula);
        let key = (fp, generation.seq);

        if let Some(hit) = lock_cache(&self.inner.prepared).get(key) {
            self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(QueryOutput {
                generation: generation.seq,
                columns: hit.0.clone(),
                relation: hit.1.clone(),
                cached: true,
                stats: None,
            });
        }
        // Static preflight: reject before spending evaluation budget.
        preflight_formula(
            formula,
            Some(generation.db.schema()),
            &AnalysisOptions::default(),
        )
        .map_err(StoreError::Rejected)?;

        // Guarded evaluation under estimate-derived budgets, of the
        // statistics-planned formula (an equivalence-preserving reorder,
        // so the cache key — the *original* formula's fingerprint — still
        // identifies the answer). Only queries that reach evaluation
        // count as cache misses.
        self.inner.cache_misses.fetch_add(1, Ordering::Relaxed);
        let limits = cost::suggested_limits_with_stats(
            formula,
            &generation.stats,
            generation.db.constants(),
        );
        let planned = plan_formula(formula, &generation.stats);
        let guarded = try_eval_with(&generation.db, &planned, limits).map_err(|e| match e {
            TryEvalError::Parse(p) => StoreError::Parse(p.to_string()),
            TryEvalError::Invalid(i) => StoreError::Invalid(i.to_string()),
            TryEvalError::Fault(f) => StoreError::Fault(f.to_string()),
        })?;

        let columns = guarded.value.columns;
        let relation = guarded.value.relation;
        lock_cache(&self.inner.prepared).put(key, Arc::new((columns.clone(), relation.clone())));
        Ok(QueryOutput {
            generation: generation.seq,
            columns,
            relation,
            cached: false,
            stats: Some(guarded.stats),
        })
    }

    /// Plan and evaluate a query, returning the measured plan instead of
    /// the relation: every node carries the planner's estimated
    /// cardinality and the actual intermediate width the evaluator
    /// produced. Runs against the current generation's stats snapshot;
    /// never consults or fills the prepared cache (EXPLAIN is for
    /// inspection, not serving).
    pub fn query_explain(&self, src: &str) -> Result<ExplainOutput, StoreError> {
        let formula = parse_formula(src).map_err(|e| StoreError::Parse(e.to_string()))?;
        let generation = self.read();
        preflight_formula(
            &formula,
            Some(generation.db.schema()),
            &AnalysisOptions::default(),
        )
        .map_err(StoreError::Rejected)?;
        let explained = explain_with_stats(&generation.db, &formula, &generation.stats)
            .map_err(|e| StoreError::Invalid(e.to_string()))?;
        Ok(ExplainOutput {
            generation: generation.seq,
            columns: explained.result.columns,
            plan: explained.plan,
        })
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let generation = self.read();
        StoreStats {
            generation: generation.seq,
            relations: generation.db.schema().relations().count(),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
            cache_entries: lock_cache(&self.inner.prepared).results.len(),
        }
    }

    /// Whether the writer is healthy (false after a crashed write until
    /// the store is reopened).
    pub fn is_healthy(&self) -> bool {
        lock_writer(&self.inner.writer).healthy
    }
}

/// An EXPLAIN answer: the measured plan tree, tagged with its generation.
#[derive(Debug, Clone)]
pub struct ExplainOutput {
    /// Generation the plan was computed against.
    pub generation: u64,
    /// Output columns of the explained query.
    pub columns: Vec<String>,
    /// Plan tree with estimated and actual cardinality per node.
    pub plan: QueryPlan,
}

/// Successor-generation statistics: recompute the one relation `op`
/// touched on top of the previous generation's summaries.
fn advance_stats(prev: &DbStats, op: &LogOp, db: &Database) -> DbStats {
    let name = match op {
        LogOp::Create { name, .. }
        | LogOp::Drop { name }
        | LogOp::InsertTuples { name, .. }
        | LogOp::RemoveSubsumed { name, .. }
        | LogOp::Replace { name, .. } => name,
    };
    let mut stats = prev.clone();
    match db.get(name) {
        Some(rel) => stats.update(name, rel),
        None => stats.remove(name),
    }
    stats
}

fn lock_cache(m: &Mutex<PreparedCache>) -> MutexGuard<'_, PreparedCache> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn rebuild(
    schema: Schema,
    relations: BTreeMap<String, GeneralizedRelation>,
) -> Result<Database, StoreError> {
    let mut db = Database::new(schema);
    for (name, rel) in relations {
        db.set(&name, rel)
            .map_err(|e| StoreError::Invalid(e.to_string()))?;
    }
    Ok(db)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_core::prelude::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dco-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn triangle() -> GeneralizedRelation {
        GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        )
    }

    #[test]
    fn write_reopen_identity() {
        let dir = tmpdir("reopen");
        {
            let store = Store::open(&dir, StoreOptions::default()).unwrap();
            store.create("R", 2).unwrap();
            store.insert("R", triangle()).unwrap();
        }
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let generation = store.read();
        assert_eq!(generation.seq, 2);
        assert_eq!(generation.db.get("R"), Some(&triangle()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_replay_equals_pure_replay() {
        let dir = tmpdir("snapeq");
        let expected = {
            let store = Store::open(&dir, StoreOptions::default()).unwrap();
            store.create("R", 2).unwrap();
            store.insert("R", triangle()).unwrap();
            store.snapshot().unwrap();
            // More writes after the snapshot: recovery must replay them
            // on top of it.
            store.create("S", 1).unwrap();
            store
                .insert(
                    "S",
                    GeneralizedRelation::from_raw(
                        1,
                        vec![RawAtom::new(Term::var(0), RawOp::Gt, Term::cst(rat(1, 2)))],
                    ),
                )
                .unwrap();
            store.read().db.clone()
        };
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(store.read().db, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_isolation_reader_sees_frozen_generation() {
        let dir = tmpdir("isolation");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.create("R", 2).unwrap();
        store.insert("R", triangle()).unwrap();
        let frozen = store.read();
        store.replace("R", GeneralizedRelation::empty(2)).unwrap();
        // The old generation is untouched; the new one sees the write.
        assert_eq!(frozen.db.get("R"), Some(&triangle()));
        assert!(store.read().db.get("R").unwrap().is_empty());
        assert!(frozen.seq < store.read().seq);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prepared_cache_hits_match_cold_evaluation() {
        let dir = tmpdir("cache");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.create("R", 2).unwrap();
        store.insert("R", triangle()).unwrap();
        let src = "exists y . (R(x, y) & x < y)";
        let cold = store.query(src).unwrap();
        assert!(!cold.cached);
        let warm = store.query(src).unwrap();
        assert!(warm.cached);
        assert_eq!(warm.columns, cold.columns);
        assert_eq!(warm.relation, cold.relation);
        assert_eq!(warm.generation, cold.generation);
        // A write invalidates by key (generation changes), not by flush.
        store.insert("R", GeneralizedRelation::empty(2)).unwrap();
        let after = store.query(src).unwrap();
        assert!(!after.cached);
        assert_eq!(after.relation, cold.relation, "empty union is a no-op");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_stats_track_writes_incrementally() {
        let dir = tmpdir("genstats");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.create("R", 2).unwrap();
        store.insert("R", triangle()).unwrap();
        store.create("S", 1).unwrap();
        store
            .insert(
                "S",
                GeneralizedRelation::from_raw(
                    1,
                    vec![RawAtom::new(Term::var(0), RawOp::Gt, Term::cst(rat(1, 2)))],
                ),
            )
            .unwrap();
        store.drop_relation("S").unwrap();
        let generation = store.read();
        let full = DbStats::of_database(&generation.db);
        assert_eq!(generation.stats, full);
        assert_eq!(generation.stats.canonical_string(), full.canonical_string());
        assert!(generation.stats.get("S").is_none(), "dropped relation");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_survive_wal_replay_byte_identically() {
        let dir = tmpdir("statsreplay");
        let before = {
            let store = Store::open(&dir, StoreOptions::default()).unwrap();
            store.create("R", 2).unwrap();
            store.insert("R", triangle()).unwrap();
            store.snapshot().unwrap();
            // Post-snapshot writes force real WAL replay on reopen.
            store.create("S", 1).unwrap();
            store
                .insert(
                    "S",
                    GeneralizedRelation::from_raw(
                        1,
                        vec![RawAtom::new(Term::var(0), RawOp::Lt, Term::cst(rat(3, 7)))],
                    ),
                )
                .unwrap();
            store.read().stats.canonical_string()
        };
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let after = store.read().stats.canonical_string();
        assert_eq!(before, after, "stats must be a pure function of content");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explain_reports_estimates_and_actuals_for_every_node() {
        let dir = tmpdir("explain");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.create("R", 2).unwrap();
        store.insert("R", triangle()).unwrap();
        let out = store
            .query_explain("exists y . (R(x, y) & x < 5 & !R(y, x))")
            .unwrap();
        assert_eq!(out.generation, store.read().seq);
        assert!(
            out.plan.root.fully_measured(),
            "unmeasured node:\n{}",
            out.plan.render()
        );
        for line in out.plan.render().lines().skip(1) {
            assert!(line.contains("est=") && line.contains("act="), "{line}");
        }
        // EXPLAIN result matches the serving path's relation width.
        let q = store
            .query("exists y . (R(x, y) & x < 5 & !R(y, x))")
            .unwrap();
        assert_eq!(out.plan.root.actual, Some(q.relation.len() as u64));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn analysis_preflight_rejects_bad_queries() {
        let dir = tmpdir("preflight");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.create("R", 2).unwrap();
        // Arity mismatch: caught statically, not at evaluation.
        match store.query("R(x, y, z)") {
            Err(StoreError::Rejected(diags)) => assert!(!diags.is_empty()),
            other => panic!("expected rejection, got {other:?}"),
        }
        match store.query("R(x y") {
            Err(StoreError::Parse(_)) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_ops_are_refused_and_not_logged() {
        let dir = tmpdir("invalid");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.create("R", 2).unwrap();
        assert!(matches!(store.create("R", 3), Err(StoreError::Invalid(_))));
        assert!(matches!(
            store.insert("R", GeneralizedRelation::empty(5)),
            Err(StoreError::Invalid(_))
        ));
        assert!(matches!(
            store.drop_relation("nope"),
            Err(StoreError::Invalid(_))
        ));
        // Seq only advanced for the one valid op.
        assert_eq!(store.read().seq, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_snapshot_truncates_wal() {
        let dir = tmpdir("autosnap");
        let opts = StoreOptions {
            snapshot_every: 4,
            ..StoreOptions::default()
        };
        let store = Store::open(&dir, opts.clone()).unwrap();
        store.create("R", 2).unwrap();
        for _ in 0..6 {
            store.insert("R", triangle()).unwrap();
        }
        drop(store);
        // After ≥4 ops an automatic snapshot ran; the WAL holds only the
        // suffix. Recovery must still see everything.
        let wal_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        assert!(
            wal_len < 200,
            "wal should have been truncated, still {wal_len} bytes"
        );
        let store = Store::open(&dir, opts).unwrap();
        assert_eq!(store.read().seq, 7);
        assert_eq!(store.read().db.get("R"), Some(&triangle()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
