//! Event-driven multi-client TCP query server.
//!
//! One *reactor* thread owns every socket: a nonblocking `poll(2)` loop
//! (see [`crate::reactor`]) drives accepts, per-connection state
//! machines for the 4-byte length-framed protocol — partial reads,
//! partial writes, write backpressure, idle timeouts — and the
//! replication streams. Requests are handed to a small evaluator worker
//! pool over a queue, so a slow query never stalls the event loop, and
//! each connection has at most one request in flight at a time, which
//! is what keeps responses in request order. The old thread-per-
//! connection server capped simultaneous clients at the evaluator's
//! thread budget; the reactor holds thousands of connections open while
//! the same small pool does the actual evaluation.
//!
//! ## Connection state machine
//!
//! ```text
//!             read gated while pending full or write buffer over cap
//!                 ┌──────────────────────────────────────────┐
//!                 v                                          │
//!   accept → [reading frames] → pending queue → [in-flight] ─┤
//!                 │     ACK (repl conns)             │ reply │
//!                 │ REPL                             v       │
//!                 └────→ [streaming WAL records] → write buf ┘
//!                                                    │ drained & close-requested
//!                                                    v
//!                                                  close
//! ```
//!
//! Backpressure: a connection whose write buffer exceeds
//! [`WRITE_BUF_CAP`] stops being read and stops dispatching queued
//! requests (counted once per stall in the `backpressure_stalls`
//! counter) until the peer drains it; a replication stream simply stops
//! pumping until there is room. Shutdown is a wake-token flip — no
//! loopback self-connect, no acceptor poke.
//!
//! ## Request lifecycle: deadlines and load shedding
//!
//! `QUERY`/`EXPLAIN` may carry a client deadline and budgets (the
//! wire's `@deadline_ms=…` options). The lifecycle enforces them at
//! three points:
//!
//! 1. **Admission (reactor)** — before a request is handed to the
//!    pool, the reactor projects its queue wait from the current depth
//!    and a calibrated per-job service-time EWMA; when the projection
//!    alone exceeds the request's deadline, or the queue is past its
//!    high-water mark, the request is shed *immediately* with a typed
//!    `ERR OVERLOADED retry_after_ms=…` (counted in `shed_overload`).
//! 2. **Dequeue (worker)** — a request whose deadline elapsed while it
//!    sat in the queue is answered `ERR DEADLINE_EXCEEDED` without
//!    evaluating (never spend cycles on dead work; counted in
//!    `expired_deadline`). Otherwise the per-request guard deadline is
//!    `min(client deadline − queue wait, `[`SERVER_DEADLINE_CAP`]`)`,
//!    and the planner's cost estimate × a calibrated ns-per-cost-unit
//!    EWMA projects completion: a query that cannot finish in time
//!    (and is not already in the prepared cache) is shed here too.
//! 3. **Completion** — a successful reply that still slipped past the
//!    client's deadline (scheduling skew) increments `served_late`.
//!
//! ## Replication
//!
//! A replica's connection upgrades with the `REPL <last_seq>` verb: the
//! reactor answers `OK repl <seq>` and from then on pushes binary
//! frames — sealed WAL records from [`Store::repl_backlog`] (group-
//! commit batches forwarded verbatim), or a full checkpoint when the
//! replica is too far behind — and parses `ACK <seq>` frames coming
//! back to maintain the `repl_lag` gauge (primary seq − slowest replica
//! seq). A store commit watcher pokes the wake token, so records flow
//! the moment a batch publishes instead of on the next poll tick.

use crate::reactor::{self, PollFd, WakeReader, WakeToken, POLLERR, POLLHUP, POLLIN, POLLOUT};
use crate::store::{ReplBacklog, Store, StoreError};
use crate::wire::{self, QueryOpts, Request};
use dco_analysis::cost;
use dco_core::guard::GuardLimits;
use dco_core::prelude::eval_config;
use dco_encoding::relation_from_json_str;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A connection whose write buffer holds more than this many bytes is
/// backpressured: no more reads, no more dispatch, no more replication
/// pumping until the peer drains it.
pub const WRITE_BUF_CAP: usize = 1 << 20;

/// Maximum parsed-but-undispatched requests buffered per connection
/// before reads are gated (bounds memory under pipelining abuse).
const PENDING_CAP: usize = 256;

/// Soft per-tick read budget per connection: fairness, not a limit.
const RBUF_SOFT_CAP: usize = 1 << 20;

/// Idle connections (no traffic, nothing queued, not a replication
/// stream) are closed after this long.
const IDLE_TIMEOUT: Duration = Duration::from_secs(300);

/// Poll tick: upper bound on how stale the idle sweep and any missed
/// wakeup can get. Readiness and wake-token events interrupt it.
const POLL_TICK_MS: i32 = 100;

/// Server-side cap on any single evaluation's wall clock. Every query
/// runs under `min(client deadline − queue wait, this cap)` — a client
/// that sends no deadline still cannot pin a worker forever.
pub const SERVER_DEADLINE_CAP: Duration = Duration::from_secs(30);

/// Queue high-water mark, per worker: past `workers × this`, new
/// queries are shed with `OVERLOADED` regardless of their deadline.
/// This is the last-ditch guard against a runaway queue, not the
/// primary shedding signal (deadline projection is) — it sits well
/// above the reactor's documented burst scale (a thousand simultaneous
/// connections, one in-flight request each), which must queue, not
/// shed.
const HIGH_WATER_PER_WORKER: u64 = 1024;

/// Max sealed records fetched from the backlog per replication frame.
const REPL_CHUNK: usize = 256;

/// Soft byte budget per replication batch frame (a single oversized
/// record still goes out alone).
const REPL_BATCH_BYTES: usize = 1 << 20;

fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(unix)]
fn os_fd<T: std::os::fd::AsRawFd>(t: &T) -> reactor::OsFd {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn os_fd<T>(_t: &T) -> reactor::OsFd {
    -1
}

/// Serving/replication counters, shared between the reactor, the worker
/// pool, and `STATS` rendering. The metric handles register into the
/// served store's registry, so a `METRICS` scrape covers the serving
/// layer alongside the store's own instruments.
pub(crate) struct ServeCounters {
    conns_open: AtomicU64,
    conns_total: AtomicU64,
    queued: AtomicU64,
    backpressure_stalls: AtomicU64,
    repl_streams: AtomicU64,
    repl_lag: AtomicU64,
    repl_bytes: AtomicU64,
    /// Requests shed with `OVERLOADED` (admission or cost projection).
    shed_overload: AtomicU64,
    /// Requests whose deadline elapsed in the queue (never evaluated).
    expired_deadline: AtomicU64,
    /// Successful replies that still slipped past their deadline.
    served_late: AtomicU64,
    /// Worker-pool size, for queue-wait projection.
    workers: AtomicU64,
    /// EWMA of per-job service time in ns (all verbs).
    ewma_job_ns: AtomicU64,
    /// EWMA of evaluation ns per planner cost unit (calibration for the
    /// cost-aware shed decision); 0 = not yet calibrated.
    ewma_cost_ns: AtomicU64,
    /// Server start instant, for `VERSION` uptime.
    started: Instant,
    /// `server.requests` — jobs dequeued by the worker pool. Recorded at
    /// the same site as `h_queue_wait`, so the counter always equals the
    /// queue-wait histogram's total count.
    requests: Arc<dco_obs::Counter>,
    /// `server.queue_wait` — ns each job waited before a worker took it.
    h_queue_wait: Arc<dco_obs::Histogram>,
    /// `server.eval` — ns a worker spent computing each reply.
    h_eval: Arc<dco_obs::Histogram>,
    /// `server.repl.lag` — commit seqs the slowest replica trails by,
    /// sampled once per reactor tick while any stream is attached (a
    /// *seq* histogram, not a latency one).
    h_repl_lag: Arc<dco_obs::Histogram>,
    /// `server.backpressure.stall` — ns each gated connection spent
    /// stalled before dispatch resumed.
    h_stall: Arc<dco_obs::Histogram>,
}

impl ServeCounters {
    fn new(registry: &dco_obs::Registry) -> ServeCounters {
        ServeCounters {
            conns_open: AtomicU64::new(0),
            conns_total: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            backpressure_stalls: AtomicU64::new(0),
            repl_streams: AtomicU64::new(0),
            repl_lag: AtomicU64::new(0),
            repl_bytes: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            expired_deadline: AtomicU64::new(0),
            served_late: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            ewma_job_ns: AtomicU64::new(0),
            ewma_cost_ns: AtomicU64::new(0),
            started: Instant::now(),
            requests: registry.counter("server.requests"),
            h_queue_wait: registry.histogram("server.queue_wait"),
            h_eval: registry.histogram("server.eval"),
            h_repl_lag: registry.histogram("server.repl.lag"),
            h_stall: registry.histogram("server.backpressure.stall"),
        }
    }
}

impl Default for ServeCounters {
    /// Counters wired to a private throwaway registry — for tests and
    /// in-process callers that never scrape `METRICS`.
    fn default() -> ServeCounters {
        ServeCounters::new(&dco_obs::Registry::new())
    }
}

/// Decaying average with 1/8 gain; the first sample seeds it outright.
/// Relaxed load/store races can drop an update — these are heuristics,
/// not ledgers.
fn ewma_update(cell: &AtomicU64, sample: u64) {
    let old = cell.load(Ordering::Relaxed);
    let new = if old == 0 {
        sample
    } else {
        old - old / 8 + sample / 8
    };
    cell.store(new.max(1), Ordering::Relaxed);
}

/// Suggested client backoff: the projected time for the current queue
/// to drain (plus `floor` for cost-shed requests), clamped to [1 ms, 5 s].
fn retry_hint(counters: &ServeCounters, floor: Duration) -> u64 {
    let queued = counters.queued.load(Ordering::Relaxed);
    let workers = counters.workers.load(Ordering::Relaxed).max(1);
    let drain_ms =
        queued.saturating_mul(counters.ewma_job_ns.load(Ordering::Relaxed)) / workers / 1_000_000;
    drain_ms.max(floor.as_millis() as u64).clamp(1, 5_000)
}

/// The reactor-side shed decision, made before a query is queued: shed
/// when the queue is past its high-water mark, or when the projected
/// queue wait alone already exceeds the request's whole deadline. Cheap
/// on purpose — two atomic loads — because it runs on the event loop.
fn admission_shed(opts: &QueryOpts, counters: &ServeCounters) -> Option<StoreError> {
    let queued = counters.queued.load(Ordering::Relaxed);
    let workers = counters.workers.load(Ordering::Relaxed).max(1);
    if queued >= workers.saturating_mul(HIGH_WATER_PER_WORKER) {
        return Some(StoreError::Overloaded {
            retry_after_ms: retry_hint(counters, Duration::ZERO),
        });
    }
    if let Some(d) = opts.deadline_ms {
        let wait_ms = queued.saturating_mul(counters.ewma_job_ns.load(Ordering::Relaxed))
            / workers
            / 1_000_000;
        if wait_ms >= d {
            return Some(StoreError::Overloaded {
                retry_after_ms: retry_hint(counters, Duration::ZERO),
            });
        }
    }
    None
}

/// One request handed to the worker pool: (connection id, command line,
/// enqueue instant — the queue-wait clock for deadline propagation).
type Job = (u64, String, Instant);

/// One finished request: (connection id, reply, close-after-reply).
type Completion = (u64, String, bool);

/// Shared state between the reactor and the evaluator workers.
struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    completions: Mutex<Vec<Completion>>,
    stop: AtomicBool,
}

impl JobQueue {
    fn push(&self, job: Job) {
        plock(&self.jobs).push_back(job);
        self.available.notify_one();
    }

    fn pop(&self) -> Option<Job> {
        let mut jobs = plock(&self.jobs);
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            jobs = self.available.wait(jobs).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn complete(&self, done: Completion) {
        plock(&self.completions).push(done);
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }
}

/// Per-connection replication state: the next seq to stream and the
/// last seq the replica acknowledged.
struct ReplConn {
    next_seq: u64,
    acked_seq: u64,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    pending: VecDeque<String>,
    in_flight: bool,
    closed_read: bool,
    close_after_flush: bool,
    /// When dispatch last gated on backpressure: set the moment a
    /// pending request could not be queued because the write buffer was
    /// over its cap, cleared (and its duration recorded) when the
    /// reactor unstalls the connection.
    stalled_since: Option<Instant>,
    last_active: Instant,
    repl: Option<ReplConn>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: VecDeque::new(),
            in_flight: false,
            closed_read: false,
            close_after_flush: false,
            stalled_since: None,
            last_active: Instant::now(),
            repl: None,
        }
    }

    /// Unflushed bytes queued for the peer.
    fn buffered(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Over the backpressure threshold: stop reading and dispatching.
    fn gated(&self) -> bool {
        self.buffered() >= WRITE_BUF_CAP
    }

    fn wants_read(&self) -> bool {
        !self.closed_read
            && !self.close_after_flush
            && !self.gated()
            && self.pending.len() < PENDING_CAP
    }

    fn wants_write(&self) -> bool {
        self.buffered() > 0
    }

    /// Nothing left to do for this peer.
    fn is_done(&self) -> bool {
        if self.close_after_flush && self.buffered() == 0 {
            return true;
        }
        self.closed_read
            && self.buffered() == 0
            && !self.in_flight
            && self.pending.is_empty()
            && self.repl.is_none()
    }

    /// Frame a reply (text or binary) onto the write buffer.
    fn push_frame(&mut self, payload: &[u8]) -> Result<(), ()> {
        if payload.len() > wire::MAX_FRAME {
            return Err(());
        }
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.wbuf.extend_from_slice(payload);
        Ok(())
    }

    /// Nonblocking read into `rbuf`. Returns `Ok(true)` at EOF.
    fn fill(&mut self) -> io::Result<bool> {
        let mut chunk = [0u8; 16 * 1024];
        let start = self.rbuf.len();
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(true),
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_active = Instant::now();
                    if self.rbuf.len() - start >= RBUF_SOFT_CAP {
                        return Ok(false); // yield to other connections
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Nonblocking flush of the write buffer.
    fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.wpos += n;
                    self.last_active = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > RBUF_SOFT_CAP {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }
}

/// Handle to a running server. Dropping it does *not* stop the server;
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    wake: Arc<WakeToken>,
    reactor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the reactor and join it. In-flight requests finish in the
    /// worker pool (writes are acknowledged durable before any reply is
    /// sent), but their connections are closed without the final reply.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake.notify();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Serve `store` on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
/// Returns once the listener is bound; the reactor and its evaluator
/// worker pool run on background threads until [`ServerHandle::shutdown`].
pub fn serve(store: Store, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let (wake, wake_reader) = reactor::wake_pair()?;

    let reactor = {
        let stop = stop.clone();
        let wake = wake.clone();
        std::thread::spawn(move || {
            reactor_loop(store, listener, stop, wake, wake_reader);
        })
    };

    Ok(ServerHandle {
        addr: bound,
        stop,
        wake,
        reactor: Some(reactor),
    })
}

/// Spawn the evaluator worker pool: a few threads draining the job
/// queue through [`respond_ctx`]. Sized by the evaluator's thread
/// budget — the reactor multiplexes any number of connections onto it.
fn spawn_workers(
    store: &Store,
    jobs: &Arc<JobQueue>,
    counters: &Arc<ServeCounters>,
    wake: &Arc<WakeToken>,
) -> Vec<JoinHandle<()>> {
    let n = eval_config().effective_threads().max(2);
    counters.workers.store(n as u64, Ordering::Relaxed);
    (0..n)
        .map(|_| {
            let store = store.clone();
            let jobs = jobs.clone();
            let counters = counters.clone();
            let wake = wake.clone();
            std::thread::spawn(move || {
                while let Some((conn_id, line, enqueued)) = jobs.pop() {
                    // One dequeue = one request served: the counter and
                    // the queue-wait sample move together, so scrapes
                    // can assert `requests == queue_wait count`. The
                    // wait is also handed to the tracing layer, where
                    // the store turns it into the leading span.
                    let waited = enqueued.elapsed();
                    counters.requests.inc();
                    counters.h_queue_wait.record_duration(waited);
                    dco_obs::trace::note_queue_wait(waited);
                    let started = Instant::now();
                    let (reply, close) =
                        respond_timed(&store, &line, Some(&counters), Some(enqueued));
                    let served = started.elapsed();
                    counters.h_eval.record_duration(served);
                    ewma_update(&counters.ewma_job_ns, served.as_nanos() as u64);
                    jobs.complete((conn_id, reply, close));
                    wake.notify();
                }
            })
        })
        .collect()
}

/// The reactor: the single thread that owns the listener, every
/// connection, and the wake pipe.
fn reactor_loop(
    store: Store,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    wake: Arc<WakeToken>,
    mut wake_reader: WakeReader,
) {
    let counters = Arc::new(ServeCounters::new(&store.registry()));
    let jobs = Arc::new(JobQueue {
        jobs: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        completions: Mutex::new(Vec::new()),
        stop: AtomicBool::new(false),
    });
    let workers = spawn_workers(&store, &jobs, &counters, &wake);
    // Committed batches wake the reactor so replication frames flow
    // immediately, not on the next poll tick.
    let watcher_id = store.on_commit({
        let wake = wake.clone();
        move |_| wake.notify()
    });

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 1;

    loop {
        // Registration set: wake pipe, listener, then every connection.
        let mut fds = Vec::with_capacity(conns.len() + 2);
        fds.push(PollFd::new(wake_reader.fd(), POLLIN));
        fds.push(PollFd::new(os_fd(&listener), POLLIN));
        let mut order = Vec::with_capacity(conns.len());
        for (&id, c) in conns.iter() {
            let mut events = 0i16;
            if c.wants_read() {
                events |= POLLIN;
            }
            if c.wants_write() {
                events |= POLLOUT;
            }
            order.push(id);
            fds.push(PollFd::new(os_fd(&c.stream), events));
        }
        if reactor::poll(&mut fds, POLL_TICK_MS).is_err() {
            break; // poll itself failing is unrecoverable
        }
        if fds[0].ready(POLLIN) {
            wake_reader.drain(&wake);
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }

        let mut dead: Vec<u64> = Vec::new();

        // Finished evaluations: frame the reply, dispatch the next
        // queued request on that connection.
        let done = std::mem::take(&mut *plock(&jobs.completions));
        for (id, reply, close) in done {
            counters.queued.fetch_sub(1, Ordering::Relaxed);
            let Some(conn) = conns.get_mut(&id) else {
                continue; // connection died while the request ran
            };
            conn.in_flight = false;
            if conn.push_frame(reply.as_bytes()).is_err() {
                dead.push(id);
                continue;
            }
            if close {
                conn.close_after_flush = true;
                conn.pending.clear();
            } else {
                dispatch(&store, conn, id, &jobs, &counters);
            }
        }

        // New connections: accept until the backlog is dry.
        if fds[1].ready(POLLIN) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        conns.insert(next_id, Conn::new(stream));
                        next_id += 1;
                        counters.conns_open.fetch_add(1, Ordering::Relaxed);
                        counters.conns_total.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }

        // Readable connections: pull bytes, pop frames, queue requests.
        for (i, &id) in order.iter().enumerate() {
            let pfd = &fds[i + 2];
            if !pfd.ready(POLLIN | POLLHUP | POLLERR) {
                continue;
            }
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if pfd.ready(POLLERR) {
                dead.push(id);
                continue;
            }
            if !conn.wants_read() {
                continue;
            }
            match conn.fill() {
                Ok(eof) => conn.closed_read |= eof,
                Err(_) => {
                    dead.push(id);
                    continue;
                }
            }
            if drain_frames(&store, conn, id, &jobs, &counters).is_err() {
                dead.push(id);
            }
        }

        // Replication: push whatever each stream is owed, within its
        // write budget; recompute the lag gauge.
        pump_replication(&store, &mut conns, &counters, &mut dead);

        // Flush + lifecycle sweep. Opportunistic write on every
        // connection with buffered output (not just POLLOUT-flagged
        // ones): a freshly framed reply almost always fits the socket
        // buffer, and waiting a tick would add up to 100 ms latency.
        let now = Instant::now();
        for (&id, conn) in conns.iter_mut() {
            if conn.wants_write() && conn.flush().is_err() {
                dead.push(id);
                continue;
            }
            if let Some(since) = conn.stalled_since {
                if !conn.gated() {
                    counters.h_stall.record_duration(since.elapsed());
                    conn.stalled_since = None;
                    dispatch(&store, conn, id, &jobs, &counters);
                }
            }
            let idle = conn.repl.is_none()
                && !conn.in_flight
                && conn.pending.is_empty()
                && conn.buffered() == 0
                && now.duration_since(conn.last_active) > IDLE_TIMEOUT;
            if conn.is_done() || idle {
                dead.push(id);
            }
        }

        for id in dead {
            if let Some(conn) = conns.remove(&id) {
                counters.conns_open.fetch_sub(1, Ordering::Relaxed);
                if conn.repl.is_some() {
                    counters.repl_streams.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
    }

    store.remove_commit_watcher(watcher_id);
    drop(conns); // RST/close every socket before the workers drain
    jobs.shutdown();
    for w in workers {
        let _ = w.join();
    }
}

/// Pop every complete frame from `conn.rbuf` and route it: `ACK`s on
/// replication streams update the acked seq; everything else joins the
/// pending request queue. `Err` means protocol violation → close.
fn drain_frames(
    store: &Store,
    conn: &mut Conn,
    id: u64,
    jobs: &Arc<JobQueue>,
    counters: &Arc<ServeCounters>,
) -> Result<(), ()> {
    loop {
        let frame = match wire::take_frame(&mut conn.rbuf) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()),
            Err(_) => return Err(()),
        };
        let Ok(text) = String::from_utf8(frame) else {
            return Err(()); // requests and ACKs are text; binary is ours to send
        };
        if conn.repl.is_some() {
            let Some(repl) = conn.repl.as_mut() else {
                return Err(());
            };
            match text.trim().strip_prefix("ACK ") {
                Some(rest) => match rest.trim().parse::<u64>() {
                    Ok(seq) => repl.acked_seq = repl.acked_seq.max(seq),
                    Err(_) => return Err(()),
                },
                None => return Err(()), // a replica speaks only ACK
            }
            continue;
        }
        if conn.pending.len() >= PENDING_CAP {
            return Err(()); // peer ignored the read gate by miles
        }
        conn.pending.push_back(text);
        dispatch(store, conn, id, jobs, counters);
    }
}

/// Move queued requests toward the worker pool: at most one in flight
/// per connection (response order == request order), none while the
/// write buffer is over its cap. `HELLO` and `REPL` never reach the
/// pool — they are connection-state transitions the reactor answers
/// inline, in queue order.
fn dispatch(
    store: &Store,
    conn: &mut Conn,
    id: u64,
    jobs: &Arc<JobQueue>,
    counters: &Arc<ServeCounters>,
) {
    while !conn.in_flight && !conn.close_after_flush && conn.repl.is_none() {
        if conn.gated() {
            if conn.stalled_since.is_none() && !conn.pending.is_empty() {
                conn.stalled_since = Some(Instant::now());
                counters.backpressure_stalls.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        let Some(line) = conn.pending.pop_front() else {
            return;
        };
        match wire::parse_request(&line) {
            Ok(Request::Hello(proto, codec)) => {
                let ours = (wire::PROTOCOL_VERSION, crate::codec::FORMAT_VERSION);
                if (proto, codec) == ours {
                    let reply = format!("OK {proto} {codec}");
                    let _ = conn.push_frame(reply.as_bytes());
                } else {
                    let err = StoreError::VersionMismatch {
                        ours,
                        theirs: (proto, codec),
                    };
                    let _ = conn.push_frame(format!("ERR {err}").as_bytes());
                    conn.close_after_flush = true;
                    conn.pending.clear();
                    return;
                }
            }
            Ok(Request::Repl(last_seq)) => {
                // The OK carries our current seq; the stream itself is
                // pushed by the replication pump.
                let reply = format!("OK repl {}", store.read().seq);
                let _ = conn.push_frame(reply.as_bytes());
                conn.repl = Some(ReplConn {
                    next_seq: last_seq + 1,
                    acked_seq: last_seq,
                });
                conn.pending.clear(); // a replica sends no further requests
                counters.repl_streams.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Ok(Request::Query(opts, _)) | Ok(Request::Explain(opts, _)) => {
                // Cost-aware admission: shed now, with a typed reply and
                // a retry hint, rather than queue work that cannot make
                // its deadline. Shed replies keep request order — the
                // loop only runs while nothing is in flight.
                if let Some(err) = admission_shed(&opts, counters) {
                    counters.shed_overload.fetch_add(1, Ordering::Relaxed);
                    if conn.push_frame(format!("ERR {err}").as_bytes()).is_err() {
                        conn.close_after_flush = true;
                        return;
                    }
                    continue;
                }
                conn.in_flight = true;
                counters.queued.fetch_add(1, Ordering::Relaxed);
                jobs.push((id, line, Instant::now()));
                return;
            }
            _ => {
                // Everything else (including parse errors, which the
                // worker turns into `ERR …`) evaluates off-thread.
                conn.in_flight = true;
                counters.queued.fetch_add(1, Ordering::Relaxed);
                jobs.push((id, line, Instant::now()));
                return;
            }
        }
    }
}

/// Stream backlog to every replication connection with write-buffer
/// room, then refresh the lag gauge.
fn pump_replication(
    store: &Store,
    conns: &mut HashMap<u64, Conn>,
    counters: &Arc<ServeCounters>,
    dead: &mut Vec<u64>,
) {
    let mut have_repl = false;
    let mut min_acked = u64::MAX;
    for (&id, conn) in conns.iter_mut() {
        if conn.repl.is_none() {
            continue;
        }
        have_repl = true;
        if pump_one(store, conn, counters).is_err() {
            dead.push(id);
            continue;
        }
        if let Some(repl) = conn.repl.as_ref() {
            min_acked = min_acked.min(repl.acked_seq);
        }
    }
    let lag = if have_repl && min_acked != u64::MAX {
        store.read().seq.saturating_sub(min_acked)
    } else {
        0
    };
    counters.repl_lag.store(lag, Ordering::Relaxed);
    if have_repl {
        // One lag sample per reactor tick with streams attached: the
        // histogram shows the lag *distribution* over time, while the
        // gauge above keeps only the latest value.
        counters.h_repl_lag.record(lag);
    }
}

/// Push frames at one replication connection until it is caught up or
/// its write buffer is full. `Err` = the stream is broken (replica from
/// a different history, or a frame that cannot be framed) → close.
fn pump_one(store: &Store, conn: &mut Conn, counters: &Arc<ServeCounters>) -> Result<(), ()> {
    loop {
        if conn.gated() {
            return Ok(());
        }
        let Some(next_seq) = conn.repl.as_ref().map(|r| r.next_seq) else {
            return Ok(());
        };
        if next_seq > store.read().seq {
            return Ok(()); // caught up
        }
        let advanced_to = match store.repl_backlog(next_seq, REPL_CHUNK) {
            Ok(ReplBacklog::Records { records, .. }) => {
                if records.is_empty() {
                    return Ok(());
                }
                // Records are contiguous from `next_seq`; include a
                // byte-budgeted prefix and advance by that many.
                let mut payload = vec![wire::REPL_FRAME_BATCH];
                let mut included = 0u64;
                for rec in &records {
                    if included > 0 && payload.len() + rec.len() > REPL_BATCH_BYTES {
                        break;
                    }
                    payload.extend_from_slice(rec);
                    included += 1;
                }
                conn.push_frame(&payload)?;
                counters
                    .repl_bytes
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                next_seq + included
            }
            Ok(ReplBacklog::Checkpoint { seq, bytes }) => {
                let mut payload = Vec::with_capacity(bytes.len() + 1);
                payload.push(wire::REPL_FRAME_CHECKPOINT);
                payload.extend_from_slice(&bytes);
                conn.push_frame(&payload)?;
                counters
                    .repl_bytes
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                seq + 1
            }
            Err(_) => return Err(()),
        };
        if let Some(repl) = conn.repl.as_mut() {
            repl.next_seq = advanced_to;
        }
    }
}

/// Compute the response for one request line. Pure with respect to the
/// connection: also the in-process entry point the tests use.
pub fn respond(store: &Store, line: &str) -> (String, bool) {
    respond_ctx(store, line, None)
}

/// [`respond`] with the serving counters in scope (the worker-pool
/// entry point): `STATS` then includes the serving/replication section.
fn respond_ctx(store: &Store, line: &str, serve: Option<&ServeCounters>) -> (String, bool) {
    respond_timed(store, line, serve, None)
}

/// Evaluate a `QUERY`/`EXPLAIN` under the request's deadline/budget
/// options. `enqueued` (when known) is the queue-wait clock: a request
/// whose deadline elapsed while queued is rejected without evaluating,
/// and the evaluation guard gets the *remaining* deadline, capped by
/// [`SERVER_DEADLINE_CAP`]. With calibrated cost data, a query whose
/// projected evaluation cannot finish in the remainder is shed instead
/// of started (unless the prepared cache already holds its answer).
fn run_read(
    store: &Store,
    opts: QueryOpts,
    src: &str,
    serve: Option<&ServeCounters>,
    enqueued: Option<Instant>,
) -> Result<String, StoreError> {
    let waited = enqueued.map_or(Duration::ZERO, |t| t.elapsed());
    if let Some(d) = opts.deadline_ms {
        if waited >= Duration::from_millis(d) {
            if let Some(c) = serve {
                c.expired_deadline.fetch_add(1, Ordering::Relaxed);
            }
            return Err(StoreError::DeadlineExceeded {
                elapsed_ms: waited.as_millis() as u64,
                limit_ms: d,
            });
        }
    }
    let budget = opts
        .deadline_ms
        .map_or(SERVER_DEADLINE_CAP, |d| {
            Duration::from_millis(d).saturating_sub(waited)
        })
        .min(SERVER_DEADLINE_CAP);
    let formula = dco_logic::parse_formula(src).map_err(|e| StoreError::Parse(e.to_string()))?;
    let est = store.estimate_query_cost(&formula);
    if let Some(c) = serve {
        let rate = c.ewma_cost_ns.load(Ordering::Relaxed);
        if rate > 0 && !store.has_prepared(&formula) {
            let projected = cost::projected_eval_time(est, rate);
            if projected > budget {
                c.shed_overload.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::Overloaded {
                    retry_after_ms: retry_hint(c, projected.saturating_sub(budget)),
                });
            }
        }
    }
    let started = Instant::now();
    let mut limits = GuardLimits::none().with_deadline(budget);
    if let Some(n) = opts.max_tuples {
        limits = limits.with_max_tuples(n);
    }
    if let Some(n) = opts.max_atoms {
        limits = limits.with_max_atoms(n);
    }
    let out = store.query_formula_limited(&formula, limits)?;
    if let Some(c) = serve {
        if !out.cached {
            let per_unit = started.elapsed().as_nanos() as f64 / est.max(1.0);
            ewma_update(&c.ewma_cost_ns, per_unit as u64);
        }
        if let Some(d) = opts.deadline_ms {
            let total = enqueued.map_or_else(|| started.elapsed(), |t| t.elapsed());
            if total > Duration::from_millis(d) {
                c.served_late.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    Ok(wire::query_output_to_json(&out))
}

/// `EXPLAIN` under the same admission rules as [`run_read`] — deadline
/// expiry is honored at dequeue, but the plan measurement itself runs
/// unguarded (EXPLAIN is for inspection, not serving).
fn run_explain(
    store: &Store,
    opts: QueryOpts,
    src: &str,
    serve: Option<&ServeCounters>,
    enqueued: Option<Instant>,
) -> Result<String, StoreError> {
    let waited = enqueued.map_or(Duration::ZERO, |t| t.elapsed());
    if let Some(d) = opts.deadline_ms {
        if waited >= Duration::from_millis(d) {
            if let Some(c) = serve {
                c.expired_deadline.fetch_add(1, Ordering::Relaxed);
            }
            return Err(StoreError::DeadlineExceeded {
                elapsed_ms: waited.as_millis() as u64,
                limit_ms: d,
            });
        }
    }
    store
        .query_explain(src)
        .map(|out| wire::explain_output_to_json(&out))
}

/// [`respond_ctx`] with the enqueue instant in scope — the full serving
/// path, including deadline expiry, cost-aware shedding, and late-reply
/// accounting for `QUERY`/`EXPLAIN`.
fn respond_timed(
    store: &Store,
    line: &str,
    serve: Option<&ServeCounters>,
    enqueued: Option<Instant>,
) -> (String, bool) {
    let request = match wire::parse_request(line) {
        Ok(r) => r,
        Err(e) => return (format!("ERR {e}"), false),
    };
    let reply = match request {
        Request::Hello(proto, codec) => {
            let ours = (wire::PROTOCOL_VERSION, crate::codec::FORMAT_VERSION);
            if (proto, codec) == ours {
                Ok(format!("{proto} {codec}"))
            } else {
                let err = StoreError::VersionMismatch {
                    ours,
                    theirs: (proto, codec),
                };
                return (format!("ERR {err}"), true);
            }
        }
        Request::Ping => Ok("pong".to_string()),
        Request::Close => return ("OK bye".to_string(), true),
        Request::Query(opts, src) => run_read(store, opts, &src, serve, enqueued),
        Request::Explain(opts, src) => run_explain(store, opts, &src, serve, enqueued),
        Request::Create(name, arity) => store.create(&name, arity).map(|seq| seq.to_string()),
        Request::Drop(name) => store.drop_relation(&name).map(|seq| seq.to_string()),
        Request::Insert(name, body) => with_relation(&body, |rel| store.insert(&name, rel)),
        Request::Remove(name, body) => {
            with_relation(&body, |rel| store.remove_subsumed(&name, rel))
        }
        Request::Replace(name, body) => with_relation(&body, |rel| store.replace(&name, rel)),
        Request::Snapshot => store.snapshot().map(|bytes| bytes.to_string()),
        Request::Stats => Ok(stats_json(store, serve)),
        Request::Metrics => Ok(metrics_text(store, serve)),
        Request::Version => Ok(version_json(serve)),
        Request::Slowlog => Ok(slowlog_json(store)),
        Request::Repl(_) => Err(StoreError::Invalid(
            "REPL requires a streaming server connection".into(),
        )),
    };
    match reply {
        Ok(body) => (format!("OK {body}"), false),
        Err(e) => (format!("ERR {e}"), false),
    }
}

fn with_relation(
    body: &str,
    f: impl FnOnce(dco_core::prelude::GeneralizedRelation) -> Result<u64, StoreError>,
) -> Result<String, StoreError> {
    let rel = relation_from_json_str(body)
        .map_err(|e| StoreError::Invalid(format!("bad relation JSON: {e}")))?;
    f(rel).map(|seq| seq.to_string())
}

fn stats_json(store: &Store, serve: Option<&ServeCounters>) -> String {
    use dco_encoding::Json;
    let s = store.stats();
    let mut fields = vec![
        ("generation".into(), Json::Num(s.generation as f64)),
        ("relations".into(), Json::Num(s.relations as f64)),
        ("shards".into(), Json::Num(s.shards as f64)),
        ("commits".into(), Json::Num(s.commits as f64)),
        ("batches".into(), Json::Num(s.batches as f64)),
        ("fsyncs".into(), Json::Num(s.fsyncs as f64)),
        (
            "commit_batch_max".into(),
            Json::Num(s.commit_batch_max as f64),
        ),
        ("cache_hits".into(), Json::Num(s.cache_hits as f64)),
        ("cache_misses".into(), Json::Num(s.cache_misses as f64)),
        ("cache_entries".into(), Json::Num(s.cache_entries as f64)),
    ];
    if let Some(c) = serve {
        let n = |v: &AtomicU64| Json::Num(v.load(Ordering::Relaxed) as f64);
        fields.extend([
            ("conns_open".into(), n(&c.conns_open)),
            ("conns_total".into(), n(&c.conns_total)),
            ("queued_requests".into(), n(&c.queued)),
            ("backpressure_stalls".into(), n(&c.backpressure_stalls)),
            ("shed_overload".into(), n(&c.shed_overload)),
            ("expired_deadline".into(), n(&c.expired_deadline)),
            ("served_late".into(), n(&c.served_late)),
            ("repl_streams".into(), n(&c.repl_streams)),
            ("repl_lag".into(), n(&c.repl_lag)),
            ("repl_bytes".into(), n(&c.repl_bytes)),
        ]);
    }
    Json::Obj(fields).compact()
}

/// The `METRICS` exposition: mirror the serving/replication counters
/// into gauges on the store's registry (the counters predate the
/// registry and stay authoritative for `STATS`), then render the whole
/// registry — store write path, query path, WAL, and serving layer in
/// one scrape. Frames tolerate newlines, so the multi-line text rides
/// an ordinary `OK ` reply.
fn metrics_text(store: &Store, serve: Option<&ServeCounters>) -> String {
    if let Some(c) = serve {
        let r = store.registry();
        let g = |name: &str, v: &AtomicU64| r.set_gauge(name, v.load(Ordering::Relaxed));
        g("server.conns.open", &c.conns_open);
        g("server.conns.total", &c.conns_total);
        g("server.queued", &c.queued);
        g("server.backpressure.stalls", &c.backpressure_stalls);
        g("server.shed.overload", &c.shed_overload);
        g("server.expired.deadline", &c.expired_deadline);
        g("server.served.late", &c.served_late);
        g("server.repl.streams", &c.repl_streams);
        g("server.repl.lag_now", &c.repl_lag);
        g("server.repl.bytes", &c.repl_bytes);
        g("server.workers", &c.workers);
    }
    store.metrics_text()
}

/// The `VERSION` reply: what this server was built as and how long it
/// has been up. Uptime is 0 outside a serving context (in-process
/// `respond` calls have no server start instant).
fn version_json(serve: Option<&ServeCounters>) -> String {
    use dco_encoding::Json;
    let uptime_ms = serve.map_or(0, |c| c.started.elapsed().as_millis() as u64);
    Json::Obj(vec![
        (
            "version".into(),
            Json::Str(env!("CARGO_PKG_VERSION").into()),
        ),
        ("protocol".into(), Json::Num(wire::PROTOCOL_VERSION as f64)),
        (
            "format".into(),
            Json::Num(crate::codec::FORMAT_VERSION as f64),
        ),
        ("uptime_ms".into(), Json::Num(uptime_ms as f64)),
    ])
    .compact()
}

/// The `SLOWLOG` reply: the store's slow-query log as a JSON array,
/// oldest first, each entry carrying the rendered span tree and EXPLAIN
/// plan (multi-line strings, JSON-escaped).
fn slowlog_json(store: &Store) -> String {
    use dco_encoding::Json;
    Json::Arr(
        store
            .slow_queries()
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("ms".into(), Json::Num(e.total_ms())),
                    ("query".into(), Json::Str(e.query.clone())),
                    ("trace".into(), Json::Str(e.trace.clone())),
                    ("plan".into(), Json::Str(e.plan.clone())),
                ])
            })
            .collect(),
    )
    .compact()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::store::StoreOptions;
    use dco_core::prelude::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dco-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn respond_covers_the_command_surface() {
        let dir = tmpdir("respond");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let (r, _) = respond(&store, "PING");
        assert_eq!(r, "OK pong");
        let (r, _) = respond(&store, "CREATE r 2");
        assert_eq!(r, "OK 1");
        let rel = GeneralizedRelation::from_raw(
            2,
            vec![RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1))],
        );
        let (r, _) = respond(
            &store,
            &format!("INSERT r {}", dco_encoding::relation_to_json_str(&rel)),
        );
        assert_eq!(r, "OK 2");
        let (r, _) = respond(&store, "QUERY r(x, y) & x < y");
        assert!(r.starts_with("OK {"), "got {r}");
        let out = wire::query_output_from_json(&r[3..]).unwrap();
        assert_eq!(out.generation, 2);
        assert_eq!(out.columns, vec!["x", "y"]);
        assert_eq!(out.relation, rel);
        let (r, _) = respond(&store, "QUERY r(x, y, z)");
        assert!(r.starts_with("ERR query rejected"), "got {r}");
        let (r, _) = respond(&store, "EXPLAIN r(x, y) & x < y");
        assert!(r.starts_with("OK {"), "got {r}");
        assert!(r.contains("\"est\":") && r.contains("\"act\":"), "got {r}");
        assert!(!r.contains("\"act\":-1"), "every node measured: {r}");
        let (r, _) = respond(&store, "EXPLAIN");
        assert!(r.starts_with("ERR"), "got {r}");
        let (r, _) = respond(&store, "STATS");
        assert!(r.contains("\"cache_misses\":1"), "got {r}");
        assert!(r.contains("\"shards\":"), "got {r}");
        assert!(r.contains("\"commits\":2"), "got {r}");
        assert!(r.contains("\"fsyncs\":"), "got {r}");
        assert!(r.contains("\"commit_batch_max\":1"), "got {r}");
        let (r, _) = respond(&store, "METRICS");
        assert!(
            r.starts_with("OK # TYPE") || r.starts_with("OK dco_"),
            "got {r}"
        );
        assert!(r.contains("dco_store_query_total_count"), "got {r}");
        let (r, _) = respond(&store, "VERSION");
        assert!(r.contains("\"protocol\":4"), "got {r}");
        assert!(r.contains("\"version\":"), "got {r}");
        assert!(r.contains("\"uptime_ms\":"), "got {r}");
        let (r, _) = respond(&store, "SLOWLOG");
        assert!(r.starts_with("OK ["), "got {r}");
        let (r, close) = respond(&store, "CLOSE");
        assert_eq!((r.as_str(), close), ("OK bye", true));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A deliberately slow query (threshold forced to zero) lands in the
    /// slow-query log carrying both the span tree and the EXPLAIN plan
    /// with estimated and measured-root cardinalities.
    #[test]
    fn slow_queries_are_logged_with_span_tree_and_plan() {
        let dir = tmpdir("slowlog");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.set_slow_query_threshold(Duration::ZERO);
        respond(&store, "CREATE r 2");
        let rel = GeneralizedRelation::from_raw(
            2,
            vec![RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1))],
        );
        respond(
            &store,
            &format!("INSERT r {}", dco_encoding::relation_to_json_str(&rel)),
        );
        let (r, _) = respond(&store, "QUERY exists y . (r(x, y) & x < y)");
        assert!(r.starts_with("OK {"), "got {r}");

        let entries = store.slow_queries();
        assert!(!entries.is_empty(), "threshold 0 logs every query");
        let e = entries.last().unwrap();
        assert!(e.query.contains("r(x, y)"), "got {}", e.query);
        assert!(e.trace.contains("preflight"), "span tree: {}", e.trace);
        assert!(e.trace.contains("plan"), "span tree: {}", e.trace);
        assert!(e.trace.contains("eval"), "span tree: {}", e.trace);
        assert!(
            e.trace.contains("probe "),
            "guard probes fan into the trace: {}",
            e.trace
        );
        assert!(e.plan.contains("est="), "plan: {}", e.plan);
        assert!(e.plan.contains("act=1"), "root actual: {}", e.plan);
        assert!(e.plan.contains("exists"), "plan tree: {}", e.plan);

        // The wire verb carries the same entries as JSON.
        let (r, _) = respond(&store, "SLOWLOG");
        assert!(r.contains("\"trace\":"), "got {r}");
        assert!(r.contains("\"plan\":"), "got {r}");
        assert!(r.contains("est="), "got {r}");

        // The trace ring holds the span records too.
        let traces = store.recent_traces();
        assert!(!traces.is_empty());
        assert!(traces
            .iter()
            .any(|t| t.spans.iter().any(|s| s.name == "eval")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Tracing off (per-store switch or global kill switch) still
    /// answers queries identically and records nothing.
    #[test]
    fn tracing_switch_disables_trace_and_slowlog_capture() {
        let dir = tmpdir("traceoff");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        store.set_slow_query_threshold(Duration::ZERO);
        store.set_tracing(false);
        respond(&store, "CREATE r 1");
        let (r, _) = respond(&store, "QUERY r(x)");
        assert!(r.starts_with("OK {"), "got {r}");
        assert!(store.slow_queries().is_empty(), "no trace, no slow entry");
        assert!(store.recent_traces().is_empty());
        // Histograms still record (they are gated only globally).
        let text = store.metrics_text();
        assert!(text.contains("dco_store_query_total_count 1"), "got {text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hello_handshake_accepts_matching_versions_and_refuses_others() {
        let dir = tmpdir("hello");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let line = format!(
            "HELLO {} {}",
            wire::PROTOCOL_VERSION,
            crate::codec::FORMAT_VERSION
        );
        let (r, close) = respond(&store, &line);
        assert_eq!(
            r,
            format!(
                "OK {} {}",
                wire::PROTOCOL_VERSION,
                crate::codec::FORMAT_VERSION
            )
        );
        assert!(!close);
        // Wrong protocol: typed version mismatch, connection closes.
        let (r, close) = respond(&store, "HELLO 999 1");
        assert!(r.starts_with("ERR version mismatch"), "got {r}");
        assert!(r.contains("999"), "mismatch names the peer's version: {r}");
        assert!(close, "a mismatched peer must be hung up on");
        // Wrong codec version: same treatment.
        let line = format!("HELLO {} 99", wire::PROTOCOL_VERSION);
        let (r, close) = respond(&store, &line);
        assert!(r.starts_with("ERR version mismatch"), "got {r}");
        assert!(close);
        // REPL outside a server connection is a typed refusal, not a hang.
        let (r, close) = respond(&store, "REPL 0");
        assert!(r.starts_with("ERR invalid operation"), "got {r}");
        assert!(!close);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deadline_and_budget_options_produce_typed_errors() {
        let dir = tmpdir("deadline");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let (r, _) = respond(&store, "CREATE r 2");
        assert_eq!(r, "OK 1");
        let rel = GeneralizedRelation::from_raw(
            2,
            vec![RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1))],
        );
        let (r, _) = respond(
            &store,
            &format!("INSERT r {}", dco_encoding::relation_to_json_str(&rel)),
        );
        assert_eq!(r, "OK 2");
        // A zero deadline has already elapsed: rejected before eval,
        // with the machine-readable token leading the message.
        let counters = ServeCounters::default();
        let (r, close) = respond_timed(
            &store,
            "QUERY @deadline_ms=0 r(x, y)",
            Some(&counters),
            Some(Instant::now()),
        );
        assert!(r.starts_with("ERR DEADLINE_EXCEEDED"), "got {r}");
        assert!(!close);
        assert_eq!(counters.expired_deadline.load(Ordering::Relaxed), 1);
        // A starved tuple budget trips the guard, typed as a fault.
        let (r, _) = respond(&store, "QUERY @max_tuples=1 !(r(x, y) | r(y, x) | x < y)");
        assert!(r.starts_with("ERR"), "got {r}");
        assert!(r.contains("budget exceeded"), "got {r}");
        // A generous deadline changes nothing about the answer.
        let (r, _) = respond(&store, "QUERY @deadline_ms=60000 r(x, y) & x < y");
        assert!(r.starts_with("OK {"), "got {r}");
        let out = wire::query_output_from_json(&r[3..]).unwrap();
        assert_eq!(out.relation, rel);
        // EXPLAIN honors deadline expiry the same way.
        let (r, _) = respond_timed(
            &store,
            "EXPLAIN @deadline_ms=0 r(x, y)",
            Some(&counters),
            Some(Instant::now()),
        );
        assert!(r.starts_with("ERR DEADLINE_EXCEEDED"), "got {r}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overloaded_error_renders_a_machine_readable_retry_hint() {
        let counters = ServeCounters::default();
        counters.workers.store(2, Ordering::Relaxed);
        counters
            .queued
            .store(2 * HIGH_WATER_PER_WORKER, Ordering::Relaxed);
        counters.ewma_job_ns.store(1_000_000, Ordering::Relaxed); // 1 ms/job
        let err = admission_shed(&QueryOpts::none(), &counters).expect("past high water");
        let msg = format!("ERR {err}");
        assert!(
            msg.starts_with("ERR OVERLOADED retry_after_ms="),
            "got {msg}"
        );
        // Below high water, a request with no deadline is admitted …
        counters.queued.store(8, Ordering::Relaxed);
        assert!(admission_shed(&QueryOpts::none(), &counters).is_none());
        // … but one whose whole deadline is eaten by queue wait is shed.
        let tight = QueryOpts::none().with_deadline_ms(3);
        assert!(
            admission_shed(&tight, &counters).is_some(),
            "8 jobs × 1 ms / 2 workers = 4 ms wait > 3 ms deadline"
        );
        let loose = QueryOpts::none().with_deadline_ms(100);
        assert!(admission_shed(&loose, &counters).is_none());
    }

    #[test]
    fn stats_includes_serving_counters_when_in_server_context() {
        let dir = tmpdir("servestats");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let counters = ServeCounters::default();
        counters.conns_open.store(3, Ordering::Relaxed);
        counters.repl_lag.store(7, Ordering::Relaxed);
        let (r, _) = respond_ctx(&store, "STATS", Some(&counters));
        for key in [
            "\"conns_open\":3",
            "\"conns_total\":",
            "\"queued_requests\":",
            "\"backpressure_stalls\":",
            "\"shed_overload\":",
            "\"expired_deadline\":",
            "\"served_late\":",
            "\"repl_streams\":",
            "\"repl_lag\":7",
            "\"repl_bytes\":",
        ] {
            assert!(r.contains(key), "missing {key} in {r}");
        }
        // Plain respond (no server) keeps the original surface only.
        let (r, _) = respond(&store, "STATS");
        assert!(!r.contains("conns_open"), "got {r}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
