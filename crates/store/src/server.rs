//! Multi-client TCP query server.
//!
//! Dependency-free `std::net`: one acceptor thread plus one thread per
//! connection, with the number of simultaneously *served* connections
//! capped by the session's parallel-evaluation configuration
//! ([`EvalConfig::effective_threads`]) — the same knob that sizes the
//! evaluator's worker pool, so a saturated server cannot oversubscribe
//! the machine. Excess connections queue on a condvar, not in the
//! kernel backlog.
//!
//! Each request is served against whatever generation is current when it
//! arrives (snapshot isolation per request); writes go through the one
//! serialized store write path. Shutdown is cooperative: the handle
//! flips a flag and pokes the listener with a loopback connection so
//! `accept` wakes up.

use crate::store::{Store, StoreError};
use crate::wire::{self, Request};
use dco_core::prelude::eval_config;
use dco_encoding::relation_from_json_str;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Simple counting semaphore (std has none): caps concurrently served
/// connections at the evaluator's thread budget.
struct ConnGate {
    slots: Mutex<usize>,
    freed: Condvar,
}

impl ConnGate {
    fn new(cap: usize) -> ConnGate {
        ConnGate {
            slots: Mutex::new(cap),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        while *slots == 0 {
            slots = self.freed.wait(slots).unwrap_or_else(|p| p.into_inner());
        }
        *slots -= 1;
    }

    fn release(&self) {
        let mut slots = self.slots.lock().unwrap_or_else(|p| p.into_inner());
        *slots += 1;
        self.freed.notify_one();
    }
}

/// Handle to a running server. Dropping it does *not* stop the server;
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the acceptor thread.
    /// In-flight connections finish their current request and then see
    /// the connection closed.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Serve `store` on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
/// Returns once the listener is bound; connections are handled on
/// background threads until [`ServerHandle::shutdown`].
pub fn serve(store: Store, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let gate = Arc::new(ConnGate::new(eval_config().effective_threads().max(2)));

    let acceptor = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let store = store.clone();
                let gate = gate.clone();
                std::thread::spawn(move || {
                    gate.acquire();
                    let _ = handle_connection(&store, stream);
                    gate.release();
                });
            }
        })
    };

    Ok(ServerHandle {
        addr: bound,
        stop,
        acceptor: Some(acceptor),
    })
}

fn handle_connection(store: &Store, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    while let Some(line) = wire::read_frame(&mut reader)? {
        let (reply, close) = respond(store, &line);
        wire::write_frame(&mut writer, &reply)?;
        if close {
            break;
        }
    }
    Ok(())
}

/// Compute the response for one request line. Pure with respect to the
/// connection: also the in-process entry point the tests use.
pub fn respond(store: &Store, line: &str) -> (String, bool) {
    let request = match wire::parse_request(line) {
        Ok(r) => r,
        Err(e) => return (format!("ERR {e}"), false),
    };
    let reply = match request {
        Request::Ping => Ok("pong".to_string()),
        Request::Close => return ("OK bye".to_string(), true),
        Request::Query(src) => store
            .query(&src)
            .map(|out| wire::query_output_to_json(&out)),
        Request::Explain(src) => store
            .query_explain(&src)
            .map(|out| wire::explain_output_to_json(&out)),
        Request::Create(name, arity) => store.create(&name, arity).map(|seq| seq.to_string()),
        Request::Drop(name) => store.drop_relation(&name).map(|seq| seq.to_string()),
        Request::Insert(name, body) => with_relation(&body, |rel| store.insert(&name, rel)),
        Request::Remove(name, body) => {
            with_relation(&body, |rel| store.remove_subsumed(&name, rel))
        }
        Request::Replace(name, body) => with_relation(&body, |rel| store.replace(&name, rel)),
        Request::Snapshot => store.snapshot().map(|bytes| bytes.to_string()),
        Request::Stats => Ok(stats_json(store)),
    };
    match reply {
        Ok(body) => (format!("OK {body}"), false),
        Err(e) => (format!("ERR {e}"), false),
    }
}

fn with_relation(
    body: &str,
    f: impl FnOnce(dco_core::prelude::GeneralizedRelation) -> Result<u64, StoreError>,
) -> Result<String, StoreError> {
    let rel = relation_from_json_str(body)
        .map_err(|e| StoreError::Invalid(format!("bad relation JSON: {e}")))?;
    f(rel).map(|seq| seq.to_string())
}

fn stats_json(store: &Store) -> String {
    use dco_encoding::Json;
    let s = store.stats();
    Json::Obj(vec![
        ("generation".into(), Json::Num(s.generation as f64)),
        ("relations".into(), Json::Num(s.relations as f64)),
        ("shards".into(), Json::Num(s.shards as f64)),
        ("commits".into(), Json::Num(s.commits as f64)),
        ("batches".into(), Json::Num(s.batches as f64)),
        ("fsyncs".into(), Json::Num(s.fsyncs as f64)),
        (
            "commit_batch_max".into(),
            Json::Num(s.commit_batch_max as f64),
        ),
        ("cache_hits".into(), Json::Num(s.cache_hits as f64)),
        ("cache_misses".into(), Json::Num(s.cache_misses as f64)),
        ("cache_entries".into(), Json::Num(s.cache_entries as f64)),
    ])
    .compact()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::store::StoreOptions;
    use dco_core::prelude::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dco-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn respond_covers_the_command_surface() {
        let dir = tmpdir("respond");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let (r, _) = respond(&store, "PING");
        assert_eq!(r, "OK pong");
        let (r, _) = respond(&store, "CREATE r 2");
        assert_eq!(r, "OK 1");
        let rel = GeneralizedRelation::from_raw(
            2,
            vec![RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1))],
        );
        let (r, _) = respond(
            &store,
            &format!("INSERT r {}", dco_encoding::relation_to_json_str(&rel)),
        );
        assert_eq!(r, "OK 2");
        let (r, _) = respond(&store, "QUERY r(x, y) & x < y");
        assert!(r.starts_with("OK {"), "got {r}");
        let out = wire::query_output_from_json(&r[3..]).unwrap();
        assert_eq!(out.generation, 2);
        assert_eq!(out.columns, vec!["x", "y"]);
        assert_eq!(out.relation, rel);
        let (r, _) = respond(&store, "QUERY r(x, y, z)");
        assert!(r.starts_with("ERR query rejected"), "got {r}");
        let (r, _) = respond(&store, "EXPLAIN r(x, y) & x < y");
        assert!(r.starts_with("OK {"), "got {r}");
        assert!(r.contains("\"est\":") && r.contains("\"act\":"), "got {r}");
        assert!(!r.contains("\"act\":-1"), "every node measured: {r}");
        let (r, _) = respond(&store, "EXPLAIN");
        assert!(r.starts_with("ERR"), "got {r}");
        let (r, _) = respond(&store, "STATS");
        assert!(r.contains("\"cache_misses\":1"), "got {r}");
        assert!(r.contains("\"shards\":"), "got {r}");
        assert!(r.contains("\"commits\":2"), "got {r}");
        assert!(r.contains("\"fsyncs\":"), "got {r}");
        assert!(r.contains("\"commit_batch_max\":1"), "got {r}");
        let (r, close) = respond(&store, "CLOSE");
        assert_eq!((r.as_str(), close), ("OK bye", true));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
