//! Append-only write-ahead log of catalog updates.
//!
//! Durability protocol: every mutation is first appended to `wal.log` as
//! a sealed [`codec`](crate::codec) record (so each entry carries its own
//! CRC), *then* fsynced, and only then applied to the in-memory catalog.
//! On open, the log is replayed in order on top of the latest snapshot;
//! replay stops at the first record that is torn, corrupt, or breaks the
//! sequence-number chain, and the torn tail is truncated — a crashed
//! append can never resurrect as data.
//!
//! Group commit: [`Wal::append_records`] writes a whole *batch* of
//! pre-sealed records with one write pass and one fsync. The store's
//! commit leader drains the shared commit queue into it, so under
//! contention the fsync cost is amortized over every committer in the
//! batch, while a single writer degenerates to the classic one-fsync-
//! per-commit discipline. Replay needs no batch awareness: records are
//! self-delimiting and written in seq order, so a crash mid-batch leaves
//! a (possibly torn) seq-prefix exactly like a crash mid-record.
//!
//! The durability-critical instants carry [`guard`] probes so the chaos
//! suite can crash the process *exactly there*:
//!
//! * [`ProbeSite::WalAppend`] — after part of the first record of the
//!   batch is on disk but before the rest (produces a torn record);
//! * [`ProbeSite::GroupCommitFsync`] — after every record of the batch
//!   is written but before the single batch fsync;
//! * [`ProbeSite::WalFsync`] — immediately before the durability point
//!   (kept distinct from the batch probe for single-writer chaos cases).

use crate::codec::{open_record, seal_record, ByteReader, ByteWriter, CodecError, RecordKind};
use dco_core::guard::{self, ProbeSite};
use dco_core::prelude::GeneralizedRelation;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File-header magic for `wal.log` — identifies the file and its layout
/// revision independently of the per-record envelopes.
pub const WAL_MAGIC: &[u8; 8] = b"DCOWAL01";

/// One logged catalog update. This is the store's *entire* write
/// vocabulary: anything not expressible here is not durable.
#[derive(Debug, Clone, PartialEq)]
pub enum LogOp {
    /// Declare a new empty relation.
    Create {
        /// Relation name.
        name: String,
        /// Declared arity.
        arity: u32,
    },
    /// Remove a relation and its instance from the catalog.
    Drop {
        /// Relation name.
        name: String,
    },
    /// Union the given generalized tuples into an existing relation.
    InsertTuples {
        /// Relation name.
        name: String,
        /// Tuples to add, as a relation of the same arity.
        rel: GeneralizedRelation,
    },
    /// Delete every stored tuple subsumed by some tuple of `rel`
    /// (constraint-level deletion: "remove everything inside this region").
    RemoveSubsumed {
        /// Relation name.
        name: String,
        /// Deletion regions, as a relation of the same arity.
        rel: GeneralizedRelation,
    },
    /// Replace a relation's instance wholesale.
    Replace {
        /// Relation name.
        name: String,
        /// The new instance.
        rel: GeneralizedRelation,
    },
}

impl LogOp {
    fn tag(&self) -> u8 {
        match self {
            LogOp::Create { .. } => 1,
            LogOp::Drop { .. } => 2,
            LogOp::InsertTuples { .. } => 3,
            LogOp::RemoveSubsumed { .. } => 4,
            LogOp::Replace { .. } => 5,
        }
    }

    /// Name of the relation this op targets.
    pub fn target(&self) -> &str {
        match self {
            LogOp::Create { name, .. }
            | LogOp::Drop { name }
            | LogOp::InsertTuples { name, .. }
            | LogOp::RemoveSubsumed { name, .. }
            | LogOp::Replace { name, .. } => name,
        }
    }

    /// Serialize into `w` (payload only; no envelope, no seq).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(&[self.tag()]);
        match self {
            LogOp::Create { name, arity } => {
                w.put_str(name);
                w.put_varint(*arity as u128);
            }
            LogOp::Drop { name } => w.put_str(name),
            LogOp::InsertTuples { name, rel }
            | LogOp::RemoveSubsumed { name, rel }
            | LogOp::Replace { name, rel } => {
                w.put_str(name);
                crate::codec::put_relation(w, rel);
            }
        }
    }

    /// Inverse of [`LogOp::encode`].
    pub fn decode(r: &mut ByteReader) -> Result<LogOp, CodecError> {
        let tag = r.get_bytes(1)?[0];
        Ok(match tag {
            1 => LogOp::Create {
                name: r.get_str()?,
                arity: r.get_varint()? as u32,
            },
            2 => LogOp::Drop { name: r.get_str()? },
            3 => LogOp::InsertTuples {
                name: r.get_str()?,
                rel: crate::codec::get_relation(r)?,
            },
            4 => LogOp::RemoveSubsumed {
                name: r.get_str()?,
                rel: crate::codec::get_relation(r)?,
            },
            5 => LogOp::Replace {
                name: r.get_str()?,
                rel: crate::codec::get_relation(r)?,
            },
            _ => return Err(CodecError::BadPayload(format!("unknown log op tag {tag}"))),
        })
    }
}

/// A sequenced log entry as stored on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Monotone sequence number (1-based; snapshot covers `..= seq`).
    pub seq: u64,
    /// The operation.
    pub op: LogOp,
}

fn encode_entry(entry: &LogEntry) -> Vec<u8> {
    let mut w = ByteWriter::new();
    entry.op.encode(&mut w);
    seal_entry(entry.seq, &w.into_bytes())
}

/// Encode an op's payload bytes (no seq, no envelope). Committers do
/// this expensive part outside the commit queue lock; sealing with the
/// assigned seq ([`seal_entry`]) happens once the seq is known.
pub fn encode_op(op: &LogOp) -> Vec<u8> {
    let mut w = ByteWriter::new();
    op.encode(&mut w);
    w.into_bytes()
}

/// Seal a pre-encoded op payload (from [`encode_op`]) with its assigned
/// seq into a complete on-disk WAL record.
pub fn seal_entry(seq: u64, op_payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(seq);
    w.put_bytes(op_payload);
    seal_record(RecordKind::WalOp, &w.into_bytes())
}

/// Decode one sealed WAL record from the front of `bytes`, returning
/// the entry and the number of bytes it occupied. Also the unit the
/// replication path validates records with before applying them.
pub(crate) fn decode_entry(bytes: &[u8]) -> Result<(LogEntry, usize), CodecError> {
    let (payload, consumed) = open_record(bytes, RecordKind::WalOp)?;
    let mut r = ByteReader::new(payload);
    let seq = r.get_u64()?;
    let op = LogOp::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::BadPayload("trailing bytes after log op".into()));
    }
    Ok((LogEntry { seq, op }, consumed))
}

/// Split a byte stream of concatenated sealed WAL records — the payload
/// of a replication batch frame — into individual records, validating
/// each envelope (magic, version, CRC) along the way. A torn or corrupt
/// record surfaces as the codec error it is, *before* anything is
/// applied.
pub fn split_records(bytes: &[u8]) -> Result<Vec<Vec<u8>>, CodecError> {
    let mut out = Vec::new();
    let mut rest = bytes;
    while !rest.is_empty() {
        let (_, consumed) = decode_entry(rest)?;
        out.push(rest[..consumed].to_vec());
        rest = &rest[consumed..];
    }
    Ok(out)
}

/// Apply one op to a map of shared relation instances, as both replay
/// and the live per-shard write path do. The map is self-describing — a
/// created relation is present (possibly empty) until dropped, and its
/// handle carries its arity — so no separate schema is threaded through.
/// Untouched relations are shared by `Arc`, not copied. Returns an error
/// string for ops invalid against the current map (replay treats these
/// as corruption; the live path validates before logging).
pub fn apply_op(
    relations: &mut BTreeMap<String, Arc<GeneralizedRelation>>,
    op: &LogOp,
) -> Result<(), String> {
    match op {
        LogOp::Create { name, arity } => {
            if relations.contains_key(name) {
                return Err(format!("create: relation `{name}` already exists"));
            }
            relations.insert(name.clone(), Arc::new(GeneralizedRelation::empty(*arity)));
            Ok(())
        }
        LogOp::Drop { name } => {
            if relations.remove(name).is_none() {
                return Err(format!("drop: unknown relation `{name}`"));
            }
            Ok(())
        }
        LogOp::InsertTuples { name, rel }
        | LogOp::RemoveSubsumed { name, rel }
        | LogOp::Replace { name, rel } => {
            let current = relations
                .get(name)
                .ok_or_else(|| format!("update: unknown relation `{name}`"))?;
            let declared = current.arity();
            if declared != rel.arity() {
                return Err(format!(
                    "update: relation `{name}` has arity {declared}, got {}",
                    rel.arity()
                ));
            }
            let next = match op {
                LogOp::InsertTuples { .. } => current.union(rel),
                LogOp::RemoveSubsumed { .. } => GeneralizedRelation::from_tuples(
                    declared,
                    current
                        .tuples()
                        .iter()
                        .filter(|t| !rel.tuples().iter().any(|d| d.subsumes(t)))
                        .cloned(),
                ),
                LogOp::Replace { .. } => rel.clone(),
                _ => unreachable!(),
            };
            relations.insert(name.clone(), Arc::new(next));
            Ok(())
        }
    }
}

/// The append side of the log: an open file handle plus the next seq.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    next_seq: u64,
    fsync: bool,
    /// When set, every batch fsync's wall time is recorded here
    /// (`store.wal.fsync`, nanoseconds). Optional so the WAL stays
    /// usable in contexts with no metrics registry (recovery tools).
    fsync_hist: Option<Arc<dco_obs::Histogram>>,
}

/// Outcome of scanning a log file on open.
#[derive(Debug)]
pub struct WalScan {
    /// Every valid entry, in order.
    pub entries: Vec<LogEntry>,
    /// Byte offset of the end of the last valid record — anything past
    /// this is a torn tail to truncate.
    pub valid_len: u64,
    /// Whether a torn/corrupt tail was found (and must be truncated).
    pub torn: bool,
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending.
    /// Scans existing content, truncates any torn tail, and returns the
    /// handle together with the surviving entries.
    pub fn open(path: &Path, fsync: bool) -> std::io::Result<(Wal, WalScan)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let scan = if bytes.is_empty() {
            file.write_all(WAL_MAGIC)?;
            file.sync_data()?;
            WalScan {
                entries: Vec::new(),
                valid_len: WAL_MAGIC.len() as u64,
                torn: false,
            }
        } else if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "wal.log: bad file magic",
            ));
        } else {
            Self::scan(&bytes[WAL_MAGIC.len()..], WAL_MAGIC.len() as u64)
        };

        if scan.torn {
            file.set_len(scan.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scan.valid_len))?;

        let next_seq = scan.entries.last().map_or(1, |e| e.seq + 1);
        Ok((
            Wal {
                path: path.to_path_buf(),
                file,
                next_seq,
                fsync,
                fsync_hist: None,
            },
            scan,
        ))
    }

    fn scan(mut bytes: &[u8], mut offset: u64) -> WalScan {
        let mut entries: Vec<LogEntry> = Vec::new();
        let mut torn = false;
        while !bytes.is_empty() {
            match decode_entry(bytes) {
                Ok((entry, consumed)) => {
                    let expected = entries.last().map_or(entry.seq, |e| e.seq + 1);
                    if entry.seq != expected && !entries.is_empty() {
                        // A seq break means the tail was written against a
                        // different history (e.g. partial truncation): stop.
                        torn = true;
                        break;
                    }
                    offset += consumed as u64;
                    entries.push(entry);
                    bytes = &bytes[consumed..];
                }
                Err(_) => {
                    // Torn, corrupt, or foreign record: the valid prefix
                    // ends here. Recovery keeps everything before it.
                    torn = true;
                    break;
                }
            }
        }
        WalScan {
            entries,
            valid_len: offset,
            torn,
        }
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Route batch-fsync latencies into `hist` (nanoseconds per fsync).
    pub fn set_fsync_histogram(&mut self, hist: Arc<dco_obs::Histogram>) {
        self.fsync_hist = Some(hist);
    }

    /// Force the next append to use `seq` (used after snapshot-only
    /// recovery so seq numbers stay monotone across truncations).
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// Append one op, returning its sequence number: a group-commit
    /// batch of one (see [`Wal::append_records`] for the probe layout).
    ///
    /// On any error the log file state is unspecified; the caller must
    /// mark the store unhealthy and force a reopen (which truncates).
    pub fn append(&mut self, op: &LogOp) -> std::io::Result<u64> {
        let seq = self.next_seq;
        let record = encode_entry(&LogEntry {
            seq,
            op: op.clone(),
        });
        self.append_records(std::iter::once(record.as_slice()))?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Append a batch of pre-sealed records (from [`seal_entry`], in seq
    /// order) with one write pass and one fsync — the group-commit
    /// durability primitive. Probe layout, in order:
    ///
    /// 1. [`ProbeSite::WalAppend`] fires after the first half of the
    ///    first record is on disk (a fault leaves a *torn* record,
    ///    exactly like a crash mid-write);
    /// 2. [`ProbeSite::GroupCommitFsync`] fires after every record of
    ///    the batch is written, before the batch fsync;
    /// 3. [`ProbeSite::WalFsync`] fires immediately before the fsync
    ///    itself (the single-writer chaos site, kept for batch-of-one
    ///    compatibility).
    ///
    /// On any error the log file state is unspecified; the caller must
    /// mark the store unhealthy and force a reopen (which truncates).
    pub fn append_records<'a>(
        &mut self,
        records: impl Iterator<Item = &'a [u8]>,
    ) -> std::io::Result<()> {
        let mut first = true;
        for record in records {
            if first {
                // Two-phase write with a probe in the gap.
                let split = record.len() / 2;
                self.file.write_all(&record[..split])?;
                guard::probe(ProbeSite::WalAppend);
                self.file.write_all(&record[split..])?;
                first = false;
            } else {
                self.file.write_all(record)?;
            }
        }
        guard::probe(ProbeSite::GroupCommitFsync);
        guard::probe(ProbeSite::WalFsync);
        if self.fsync {
            let t0 = std::time::Instant::now();
            self.file.sync_data()?;
            if let Some(h) = &self.fsync_hist {
                h.record_duration(t0.elapsed());
            }
        }
        Ok(())
    }

    /// Truncate the log to empty (after a snapshot has made it
    /// redundant). Sequence numbering continues from where it was.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use dco_core::prelude::*;
    use std::collections::BTreeMap;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dco-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn halfplane() -> GeneralizedRelation {
        GeneralizedRelation::from_raw(2, vec![RawAtom::new(Term::var(0), RawOp::Lt, Term::var(1))])
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let ops = vec![
            LogOp::Create {
                name: "r".into(),
                arity: 2,
            },
            LogOp::InsertTuples {
                name: "r".into(),
                rel: halfplane(),
            },
            LogOp::Drop { name: "r".into() },
        ];
        {
            let (mut wal, scan) = Wal::open(&path, true).unwrap();
            assert!(scan.entries.is_empty());
            for op in &ops {
                wal.append(op).unwrap();
            }
        }
        let (_, scan) = Wal::open(&path, true).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.entries.len(), 3);
        assert_eq!(
            scan.entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(
            scan.entries
                .iter()
                .map(|e| e.op.clone())
                .collect::<Vec<_>>(),
            ops
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path, true).unwrap();
            wal.append(&LogOp::Create {
                name: "r".into(),
                arity: 2,
            })
            .unwrap();
            wal.append(&LogOp::InsertTuples {
                name: "r".into(),
                rel: halfplane(),
            })
            .unwrap();
        }
        // Tear the final record by chopping off its last 5 bytes.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let (mut wal, scan) = Wal::open(&path, true).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.entries.len(), 1, "only the intact record survives");
        // The file was truncated to the valid prefix; appending works.
        let seq = wal.append(&LogOp::Drop { name: "r".into() }).unwrap();
        assert_eq!(seq, 2);
        let (_, rescan) = Wal::open(&path, true).unwrap();
        assert!(!rescan.torn);
        assert_eq!(rescan.entries.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn apply_op_full_vocabulary() {
        let mut rels = BTreeMap::new();
        apply_op(
            &mut rels,
            &LogOp::Create {
                name: "r".into(),
                arity: 2,
            },
        )
        .unwrap();
        apply_op(
            &mut rels,
            &LogOp::InsertTuples {
                name: "r".into(),
                rel: halfplane(),
            },
        )
        .unwrap();
        assert!(!rels["r"].is_empty());
        // Arity mismatches are rejected against the live instance.
        assert!(apply_op(
            &mut rels,
            &LogOp::InsertTuples {
                name: "r".into(),
                rel: GeneralizedRelation::empty(3),
            },
        )
        .is_err());
        // Removing the exact same region empties the relation.
        apply_op(
            &mut rels,
            &LogOp::RemoveSubsumed {
                name: "r".into(),
                rel: halfplane(),
            },
        )
        .unwrap();
        assert!(rels["r"].is_empty());
        apply_op(&mut rels, &LogOp::Drop { name: "r".into() }).unwrap();
        assert!(!rels.contains_key("r"));
        assert!(apply_op(&mut rels, &LogOp::Drop { name: "r".into() }).is_err());
    }

    #[test]
    fn batch_append_scans_like_sequential_appends() {
        let dir = tmpdir("batch");
        let path = dir.join("wal.log");
        let ops = vec![
            LogOp::Create {
                name: "r".into(),
                arity: 2,
            },
            LogOp::InsertTuples {
                name: "r".into(),
                rel: halfplane(),
            },
            LogOp::Drop { name: "r".into() },
        ];
        {
            let (mut wal, _) = Wal::open(&path, true).unwrap();
            let records: Vec<Vec<u8>> = ops
                .iter()
                .enumerate()
                .map(|(i, op)| seal_entry(1 + i as u64, &encode_op(op)))
                .collect();
            wal.append_records(records.iter().map(|r| r.as_slice()))
                .unwrap();
        }
        let (_, scan) = Wal::open(&path, true).unwrap();
        assert!(!scan.torn);
        assert_eq!(
            scan.entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(
            scan.entries
                .iter()
                .map(|e| e.op.clone())
                .collect::<Vec<_>>(),
            ops
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_batch_tail_recovers_the_record_prefix() {
        let dir = tmpdir("tornbatch");
        let path = dir.join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path, true).unwrap();
            let records: Vec<Vec<u8>> = (0..3)
                .map(|i| {
                    seal_entry(
                        1 + i as u64,
                        &encode_op(&LogOp::Create {
                            name: format!("r{i}"),
                            arity: 1,
                        }),
                    )
                })
                .collect();
            wal.append_records(records.iter().map(|r| r.as_slice()))
                .unwrap();
        }
        // Tear the last record of the batch: the first two must survive.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 4).unwrap();
        drop(f);
        let (_, scan) = Wal::open(&path, true).unwrap();
        assert!(scan.torn);
        assert_eq!(
            scan.entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2],
            "a torn batch must recover as a seq-prefix"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
