//! TCP client mirroring the server's command surface.
//!
//! One [`Client`] wraps one connection; it is intentionally *not*
//! thread-safe (the protocol is strictly request/response per
//! connection) — open one client per thread, which is also how the
//! concurrency tests exercise the server.

use crate::store::QueryOutput;
use crate::wire::{self};
use dco_core::prelude::GeneralizedRelation;
use dco_encoding::relation_to_json_str;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

/// Client-side errors: transport failures vs. server `ERR` replies.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or the framing was violated.
    Io(io::Error),
    /// The server answered `ERR <message>`.
    Server(String),
    /// The server's `OK` payload did not have the expected shape.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connect to a serving store and perform the version handshake:
    /// the first frame announces this build's protocol and WAL codec
    /// versions, and a server speaking a different dialect answers with
    /// a typed `version mismatch` error (surfaced as
    /// [`ClientError::Server`]) instead of silently misparsing frames.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client { stream };
        let ours = format!(
            "{} {}",
            wire::PROTOCOL_VERSION,
            crate::codec::FORMAT_VERSION
        );
        let echoed = client.call(&format!("HELLO {ours}"))?;
        if echoed != ours {
            return Err(ClientError::Protocol(format!(
                "handshake answered `{echoed}`, expected `{ours}`"
            )));
        }
        Ok(client)
    }

    /// Send one raw command line and return the server's `OK` payload.
    pub fn call(&mut self, line: &str) -> Result<String, ClientError> {
        wire::write_frame(&mut self.stream, line)?;
        let reply = wire::read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        if let Some(body) = reply.strip_prefix("OK") {
            Ok(body.trim_start().to_string())
        } else if let Some(msg) = reply.strip_prefix("ERR") {
            Err(ClientError::Server(msg.trim_start().to_string()))
        } else {
            Err(ClientError::Protocol(format!("malformed reply: {reply}")))
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call("PING").map(drop)
    }

    /// Evaluate a formula; the result is tagged with the generation it
    /// was computed against and whether the server's prepared-query
    /// cache answered it.
    pub fn query(&mut self, formula: &str) -> Result<QueryOutput, ClientError> {
        let body = self.call(&format!("QUERY {formula}"))?;
        wire::query_output_from_json(&body).map_err(ClientError::Protocol)
    }

    /// Plan and evaluate a formula, returning the server's measured plan
    /// tree (estimated and actual cardinality per node) as compact JSON.
    pub fn explain(&mut self, formula: &str) -> Result<String, ClientError> {
        self.call(&format!("EXPLAIN {formula}"))
    }

    /// Declare a relation; returns the committed WAL seq.
    pub fn create(&mut self, name: &str, arity: u32) -> Result<u64, ClientError> {
        self.call(&format!("CREATE {name} {arity}"))
            .and_then(parse_seq)
    }

    /// Drop a relation; returns the committed WAL seq.
    pub fn drop_relation(&mut self, name: &str) -> Result<u64, ClientError> {
        self.call(&format!("DROP {name}")).and_then(parse_seq)
    }

    /// Union tuples into a relation; returns the committed WAL seq.
    pub fn insert(&mut self, name: &str, rel: &GeneralizedRelation) -> Result<u64, ClientError> {
        self.call(&format!("INSERT {name} {}", relation_to_json_str(rel)))
            .and_then(parse_seq)
    }

    /// Remove subsumed tuples; returns the committed WAL seq.
    pub fn remove_subsumed(
        &mut self,
        name: &str,
        rel: &GeneralizedRelation,
    ) -> Result<u64, ClientError> {
        self.call(&format!("REMOVE {name} {}", relation_to_json_str(rel)))
            .and_then(parse_seq)
    }

    /// Replace a relation's instance; returns the committed WAL seq.
    pub fn replace(&mut self, name: &str, rel: &GeneralizedRelation) -> Result<u64, ClientError> {
        self.call(&format!("REPLACE {name} {}", relation_to_json_str(rel)))
            .and_then(parse_seq)
    }

    /// Force a snapshot; returns its on-disk size in bytes.
    pub fn snapshot(&mut self) -> Result<u64, ClientError> {
        self.call("SNAPSHOT").and_then(parse_seq)
    }

    /// Fetch the server's counters as compact JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.call("STATS")
    }

    /// Polite hangup.
    pub fn close(mut self) -> Result<(), ClientError> {
        self.call("CLOSE").map(drop)
    }
}

fn parse_seq(body: String) -> Result<u64, ClientError> {
    body.parse()
        .map_err(|_| ClientError::Protocol(format!("expected a number, got `{body}`")))
}
