//! TCP client mirroring the server's command surface, with the
//! resilience half of the request lifecycle.
//!
//! One [`Client`] wraps one connection; it is intentionally *not*
//! thread-safe (the protocol is strictly request/response per
//! connection) — open one client per thread, which is also how the
//! concurrency tests exercise the server.
//!
//! ## Timeouts, retries, and the circuit breaker
//!
//! Every connection is dialed with a connect timeout and reads under a
//! read timeout, so a dead or wedged peer surfaces as a typed
//! [`ClientError::Timeout`] instead of a hang. Idempotent reads
//! (`PING`, `QUERY`, `EXPLAIN`, `STATS`) retry through
//! [`Client::call_with_retry`]: capped exponential backoff with
//! deterministic seeded jitter, honoring the server's
//! `retry_after_ms` hint on [`ClientError::Overloaded`] and never
//! sleeping past the request's own deadline. Transport failures feed a
//! per-endpoint circuit breaker (closed → open → half-open): after
//! [`BreakerOptions::failure_threshold`] consecutive failures the
//! breaker opens and reads fail fast with [`ClientError::CircuitOpen`]
//! until a cooldown elapses, then a single half-open probe decides
//! whether to close it again. Writes never retry (they are not known
//! idempotent at this layer) and never consult the breaker.

use crate::store::QueryOutput;
use crate::wire::{self, QueryOpts};
use dco_core::prelude::GeneralizedRelation;
use dco_encoding::relation_to_json_str;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Retry policy for idempotent reads: `attempts` tries total, sleeping
/// `min(cap, base × 2^n)` × jitter between them. Jitter is drawn from a
/// seeded splitmix64 stream, so a fixed seed replays the exact same
/// backoff schedule — which is what makes the chaos suites
/// deterministic.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub attempts: u32,
    /// First backoff.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x5EED_C0DE,
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerOptions {
    /// Consecutive transport failures that open the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing one half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerOptions {
    fn default() -> BreakerOptions {
        BreakerOptions {
            failure_threshold: 5,
            cooldown: Duration::from_secs(1),
        }
    }
}

/// Connection and resilience options.
#[derive(Debug, Clone, Copy)]
pub struct ClientOptions {
    /// Dial timeout per resolved address.
    pub connect_timeout: Duration,
    /// Socket read timeout (`None` = block forever; the default bounds
    /// every read so a silent peer becomes [`ClientError::Timeout`]).
    pub read_timeout: Option<Duration>,
    /// Retry policy for idempotent reads.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning for this endpoint.
    pub breaker: BreakerOptions,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::default(),
            breaker: BreakerOptions::default(),
        }
    }
}

/// splitmix64 — the same scatter function the chaos suites use, so a
/// pinned seed reproduces the whole jitter schedule.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic backoff for attempt `n` (0-based): `min(cap, base·2ⁿ)`
/// scaled by a jitter factor in [0.5, 1.5) drawn from the seeded
/// stream.
pub fn backoff_with_jitter(policy: &RetryPolicy, attempt: u32, jitter_state: &mut u64) -> Duration {
    let exp = policy
        .base
        .saturating_mul(1u32 << attempt.min(16))
        .min(policy.cap);
    let factor = 0.5 + (splitmix(jitter_state) as f64 / u64::MAX as f64);
    Duration::from_nanos((exp.as_nanos() as f64 * factor).min(u64::MAX as f64) as u64)
}

/// Per-endpoint circuit breaker: closed → open (after consecutive
/// transport failures) → half-open (one probe after the cooldown) →
/// closed again on success, re-open on failure.
#[derive(Debug)]
struct Breaker {
    opts: BreakerOptions,
    failures: u32,
    open_until: Option<Instant>,
    half_open: bool,
}

impl Breaker {
    fn new(opts: BreakerOptions) -> Breaker {
        Breaker {
            opts,
            failures: 0,
            open_until: None,
            half_open: false,
        }
    }

    /// Gate a read. `Err` = fail fast, the breaker is open.
    fn admit(&mut self) -> Result<(), ClientError> {
        if let Some(until) = self.open_until {
            if Instant::now() < until {
                return Err(ClientError::CircuitOpen);
            }
            // Cooldown over: allow exactly one half-open probe.
            self.open_until = None;
            self.half_open = true;
        }
        Ok(())
    }

    fn record_success(&mut self) {
        self.failures = 0;
        self.half_open = false;
        self.open_until = None;
    }

    fn record_failure(&mut self) {
        self.failures += 1;
        if self.half_open || self.failures >= self.opts.failure_threshold {
            self.half_open = false;
            self.failures = 0;
            self.open_until = Some(Instant::now() + self.opts.cooldown);
        }
    }
}

/// A connected client.
#[derive(Debug)]
pub struct Client {
    conn: Option<TcpStream>,
    /// Redial target — known when connected via an address string;
    /// `None` disables reconnection (single-shot semantics).
    addr: Option<String>,
    opts: ClientOptions,
    breaker: Breaker,
    jitter_state: u64,
}

/// Client-side errors: transport failures vs. typed server replies.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or the framing was violated.
    Io(io::Error),
    /// A connect or read timed out (dead peer, slow-loris server).
    Timeout(String),
    /// The server shed the request before evaluating it; retry after
    /// the hinted backoff.
    Overloaded {
        /// The server's suggested backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's propagated deadline elapsed (queued too long or
    /// the evaluation guard tripped it).
    DeadlineExceeded(String),
    /// The per-endpoint circuit breaker is open: recent calls failed at
    /// the transport layer, so this one failed fast without touching
    /// the network.
    CircuitOpen,
    /// The server answered `ERR <message>` (any other message).
    Server(String),
    /// The server's `OK` payload did not have the expected shape.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Timeout(m) => write!(f, "timeout: {m}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded: retry after {retry_after_ms} ms")
            }
            ClientError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            ClientError::CircuitOpen => f.write_str("circuit breaker open: failing fast"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        if matches!(
            e.kind(),
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        ) {
            ClientError::Timeout(e.to_string())
        } else {
            ClientError::Io(e)
        }
    }
}

/// Classify a server `ERR` payload into the typed error surface. The
/// machine-readable tokens (`DEADLINE_EXCEEDED`, `OVERLOADED
/// retry_after_ms=…`) lead the message, so no prose parsing is needed.
fn classify_err(msg: &str) -> ClientError {
    if msg.starts_with("DEADLINE_EXCEEDED") {
        return ClientError::DeadlineExceeded(msg.to_string());
    }
    if let Some(rest) = msg.strip_prefix("OVERLOADED") {
        let retry_after_ms = rest
            .split_whitespace()
            .find_map(|w| w.strip_prefix("retry_after_ms="))
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        return ClientError::Overloaded { retry_after_ms };
    }
    ClientError::Server(msg.to_string())
}

/// Dial with a connect timeout against every resolved address, then arm
/// the read timeout. The untimed `TcpStream::connect` can block for
/// minutes on an unroutable peer; this bounds it.
fn dial(addr: impl ToSocketAddrs, opts: &ClientOptions) -> Result<TcpStream, ClientError> {
    let mut last: Option<io::Error> = None;
    for sockaddr in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sockaddr, opts.connect_timeout) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(opts.read_timeout)?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last.map_or_else(
        || ClientError::Protocol("address resolved to nothing".into()),
        ClientError::from,
    ))
}

/// One request/response exchange on a raw stream.
fn raw_call(stream: &mut TcpStream, line: &str) -> Result<String, ClientError> {
    wire::write_frame(stream, line)?;
    let reply = wire::read_frame(stream)?
        .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
    if let Some(body) = reply.strip_prefix("OK") {
        Ok(body.trim_start().to_string())
    } else if let Some(msg) = reply.strip_prefix("ERR") {
        Err(classify_err(msg.trim_start()))
    } else {
        Err(ClientError::Protocol(format!("malformed reply: {reply}")))
    }
}

impl Client {
    /// Connect to a serving store with default options and perform the
    /// version handshake: the first frame announces this build's
    /// protocol and WAL codec versions, and a server speaking a
    /// different dialect answers with a typed `version mismatch` error
    /// (surfaced as [`ClientError::Server`]) instead of silently
    /// misparsing frames.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let opts = ClientOptions::default();
        let stream = dial(addr, &opts)?;
        let mut client = Client {
            conn: Some(stream),
            addr: None,
            jitter_state: opts.retry.seed,
            breaker: Breaker::new(opts.breaker),
            opts,
        };
        client.handshake()?;
        Ok(client)
    }

    /// [`Client::connect`] with explicit options and a string address,
    /// which also enables transparent redial inside
    /// [`Client::call_with_retry`].
    pub fn connect_with(addr: &str, opts: ClientOptions) -> Result<Client, ClientError> {
        let stream = dial(addr, &opts)?;
        let mut client = Client {
            conn: Some(stream),
            addr: Some(addr.to_string()),
            jitter_state: opts.retry.seed,
            breaker: Breaker::new(opts.breaker),
            opts,
        };
        client.handshake()?;
        Ok(client)
    }

    fn handshake(&mut self) -> Result<(), ClientError> {
        let ours = format!(
            "{} {}",
            wire::PROTOCOL_VERSION,
            crate::codec::FORMAT_VERSION
        );
        let echoed = self.call(&format!("HELLO {ours}"))?;
        if echoed != ours {
            return Err(ClientError::Protocol(format!(
                "handshake answered `{echoed}`, expected `{ours}`"
            )));
        }
        Ok(())
    }

    /// Redial and re-handshake if the connection was torn down by an
    /// earlier transport failure.
    fn ensure_conn(&mut self) -> Result<(), ClientError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let addr = self.addr.clone().ok_or_else(|| {
            ClientError::Protocol("connection lost and no redial address known".into())
        })?;
        self.conn = Some(dial(addr.as_str(), &self.opts)?);
        if let Err(e) = self.handshake() {
            self.conn = None;
            return Err(e);
        }
        Ok(())
    }

    /// Send one raw command line and return the server's `OK` payload.
    /// Single attempt; a transport failure tears the connection down so
    /// the next retrying call redials.
    pub fn call(&mut self, line: &str) -> Result<String, ClientError> {
        self.ensure_conn()?;
        let Some(stream) = self.conn.as_mut() else {
            return Err(ClientError::Protocol("no live connection".into()));
        };
        let out = raw_call(stream, line);
        if matches!(out, Err(ClientError::Io(_)) | Err(ClientError::Timeout(_))) {
            self.conn = None;
        }
        out
    }

    /// [`Client::call`] under the retry policy and circuit breaker, for
    /// idempotent requests only. Retries transport failures, timeouts,
    /// and `OVERLOADED` sheds; backoff is capped-exponential with
    /// deterministic seeded jitter, raised to the server's
    /// `retry_after_ms` hint when one is given, and never sleeps past
    /// `deadline`.
    pub fn call_with_retry(
        &mut self,
        line: &str,
        deadline: Option<Instant>,
    ) -> Result<String, ClientError> {
        self.breaker.admit()?;
        let attempts = self.opts.retry.attempts.max(1);
        let mut attempt = 0u32;
        loop {
            let out = self.call(line);
            match &out {
                Ok(_) => {
                    self.breaker.record_success();
                    return out;
                }
                Err(ClientError::Io(_)) | Err(ClientError::Timeout(_)) => {
                    self.breaker.record_failure()
                }
                // Overloaded is the server protecting itself, not the
                // endpoint dying: it does not open the breaker.
                Err(_) => {}
            }
            let retryable = matches!(
                out,
                Err(ClientError::Io(_))
                    | Err(ClientError::Timeout(_))
                    | Err(ClientError::Overloaded { .. })
            );
            attempt += 1;
            if !retryable || attempt >= attempts || (self.addr.is_none() && self.conn.is_none()) {
                return out;
            }
            let mut pause =
                backoff_with_jitter(&self.opts.retry, attempt - 1, &mut self.jitter_state);
            if let Err(ClientError::Overloaded { retry_after_ms }) = &out {
                pause = pause.max(Duration::from_millis(*retry_after_ms));
            }
            if let Some(d) = deadline {
                let now = Instant::now();
                if now + pause >= d {
                    return out; // no budget left to retry in
                }
            }
            std::thread::sleep(pause);
            if self.breaker.admit().is_err() {
                return out; // breaker opened mid-loop: surface the real error
            }
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call("PING").map(drop)
    }

    /// Evaluate a formula; the result is tagged with the generation it
    /// was computed against and whether the server's prepared-query
    /// cache answered it.
    pub fn query(&mut self, formula: &str) -> Result<QueryOutput, ClientError> {
        self.query_with(formula, QueryOpts::none())
    }

    /// [`Client::query`] with per-request options: the deadline and
    /// budgets propagate to the server (which derives the evaluation
    /// guard from them), and the retry loop treats the deadline as its
    /// own budget — it never sleeps past it.
    pub fn query_with(
        &mut self,
        formula: &str,
        opts: QueryOpts,
    ) -> Result<QueryOutput, ClientError> {
        let deadline = opts
            .deadline_ms
            .map(|d| Instant::now() + Duration::from_millis(d));
        let body = self.call_with_retry(&format!("QUERY {}{formula}", opts.render()), deadline)?;
        wire::query_output_from_json(&body).map_err(ClientError::Protocol)
    }

    /// Plan and evaluate a formula, returning the server's measured plan
    /// tree (estimated and actual cardinality per node) as compact JSON.
    pub fn explain(&mut self, formula: &str) -> Result<String, ClientError> {
        self.call_with_retry(&format!("EXPLAIN {formula}"), None)
    }

    /// Declare a relation; returns the committed WAL seq.
    pub fn create(&mut self, name: &str, arity: u32) -> Result<u64, ClientError> {
        self.call(&format!("CREATE {name} {arity}"))
            .and_then(parse_seq)
    }

    /// Drop a relation; returns the committed WAL seq.
    pub fn drop_relation(&mut self, name: &str) -> Result<u64, ClientError> {
        self.call(&format!("DROP {name}")).and_then(parse_seq)
    }

    /// Union tuples into a relation; returns the committed WAL seq.
    pub fn insert(&mut self, name: &str, rel: &GeneralizedRelation) -> Result<u64, ClientError> {
        self.call(&format!("INSERT {name} {}", relation_to_json_str(rel)))
            .and_then(parse_seq)
    }

    /// Remove subsumed tuples; returns the committed WAL seq.
    pub fn remove_subsumed(
        &mut self,
        name: &str,
        rel: &GeneralizedRelation,
    ) -> Result<u64, ClientError> {
        self.call(&format!("REMOVE {name} {}", relation_to_json_str(rel)))
            .and_then(parse_seq)
    }

    /// Replace a relation's instance; returns the committed WAL seq.
    pub fn replace(&mut self, name: &str, rel: &GeneralizedRelation) -> Result<u64, ClientError> {
        self.call(&format!("REPLACE {name} {}", relation_to_json_str(rel)))
            .and_then(parse_seq)
    }

    /// Force a snapshot; returns its on-disk size in bytes.
    pub fn snapshot(&mut self) -> Result<u64, ClientError> {
        self.call("SNAPSHOT").and_then(parse_seq)
    }

    /// Fetch the server's counters as compact JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.call("STATS")
    }

    /// Fetch the Prometheus-style text exposition of every metric the
    /// store and its serving stack registered.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.call("METRICS")
    }

    /// Fetch build information (crate version, protocol version, WAL
    /// codec version, uptime) as compact JSON.
    pub fn version(&mut self) -> Result<String, ClientError> {
        self.call("VERSION")
    }

    /// Fetch the server's slow-query log as a compact JSON array,
    /// oldest first; each entry carries the query text, total latency,
    /// rendered span tree, and EXPLAIN plan.
    pub fn slowlog(&mut self) -> Result<String, ClientError> {
        self.call("SLOWLOG")
    }

    /// Polite hangup.
    pub fn close(mut self) -> Result<(), ClientError> {
        self.call("CLOSE").map(drop)
    }
}

fn parse_seq(body: String) -> Result<u64, ClientError> {
    body.parse()
        .map_err(|_| ClientError::Protocol(format!("expected a number, got `{body}`")))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy::default();
        let mut a = policy.seed;
        let mut b = policy.seed;
        let s1: Vec<Duration> = (0..6)
            .map(|n| backoff_with_jitter(&policy, n, &mut a))
            .collect();
        let s2: Vec<Duration> = (0..6)
            .map(|n| backoff_with_jitter(&policy, n, &mut b))
            .collect();
        assert_eq!(s1, s2, "same seed, same schedule");
        for (n, d) in s1.iter().enumerate() {
            let nominal = policy.base.saturating_mul(1 << n).min(policy.cap);
            assert!(
                *d >= nominal / 2 && *d < nominal * 3 / 2,
                "attempt {n}: {d:?} outside jitter band of {nominal:?}"
            );
        }
        let mut c = policy.seed ^ 1;
        let other: Vec<Duration> = (0..6)
            .map(|n| backoff_with_jitter(&policy, n, &mut c))
            .collect();
        assert_ne!(s1, other, "different seed, different jitter");
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let mut b = Breaker::new(BreakerOptions {
            failure_threshold: 2,
            cooldown: Duration::from_millis(20),
        });
        assert!(b.admit().is_ok());
        b.record_failure();
        assert!(b.admit().is_ok(), "one failure: still closed");
        b.record_failure();
        assert!(
            matches!(b.admit(), Err(ClientError::CircuitOpen)),
            "threshold reached: open"
        );
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit().is_ok(), "cooldown over: half-open probe allowed");
        b.record_failure();
        assert!(
            matches!(b.admit(), Err(ClientError::CircuitOpen)),
            "half-open probe failed: open again"
        );
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit().is_ok());
        b.record_success();
        assert!(b.admit().is_ok(), "half-open probe succeeded: closed");
        b.record_failure();
        assert!(b.admit().is_ok(), "success reset the failure count");
    }

    #[test]
    fn err_classification_reads_the_typed_tokens() {
        assert!(matches!(
            classify_err("DEADLINE_EXCEEDED 12 ms elapsed of 10 ms allowed"),
            ClientError::DeadlineExceeded(_)
        ));
        match classify_err("OVERLOADED retry_after_ms=250 server shed this request") {
            ClientError::Overloaded { retry_after_ms } => assert_eq!(retry_after_ms, 250),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert!(matches!(
            classify_err("invalid operation: nope"),
            ClientError::Server(_)
        ));
    }
}
