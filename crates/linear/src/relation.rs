//! Linear generalized relations: finite unions of linear tuples.
//!
//! The FO+ analogue of `dco-core`'s [`GeneralizedRelation`]: a DNF of linear
//! constraints, closed under the full algebra (union, intersection,
//! complement, projection via Fourier–Motzkin). Conversion to and from the
//! dense-order representation is provided for the order-definable fragment,
//! which is how the cross-language experiments compare FO and FO+ answers.

use crate::atom::{LinAtom, NormalizedAtom};
use crate::tuple::LinTuple;
use dco_core::par::{eval_config, par_map, par_map_when, should_parallelize};
use dco_core::prelude::{Atom, GeneralizedRelation, GeneralizedTuple, Rational, Term};

use std::fmt;

/// A finite union of satisfiable linear tuples of fixed arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LinRelation {
    arity: u32,
    tuples: Vec<LinTuple>,
}

impl LinRelation {
    /// The empty relation.
    pub fn empty(arity: u32) -> LinRelation {
        LinRelation {
            arity,
            tuples: Vec::new(),
        }
    }

    /// All of `Q^arity`.
    pub fn universe(arity: u32) -> LinRelation {
        LinRelation {
            arity,
            tuples: vec![LinTuple::top(arity)],
        }
    }

    /// Build from tuples, dropping unsatisfiable ones.
    pub fn from_tuples(arity: u32, tuples: impl IntoIterator<Item = LinTuple>) -> LinRelation {
        let mut r = LinRelation::empty(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Number of columns.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// The disjuncts.
    pub fn tuples(&self) -> &[LinTuple] {
        &self.tuples
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Denotes the empty set?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Representation size (atom count).
    pub fn size(&self) -> usize {
        self.tuples.iter().map(|t| t.len().max(1)).sum()
    }

    /// Insert a tuple if satisfiable, pruning by syntactic subsumption.
    pub fn insert(&mut self, t: LinTuple) {
        assert_eq!(t.arity(), self.arity);
        if t.is_satisfiable() {
            self.insert_satisfiable(t);
        }
    }

    /// Insert a tuple already known satisfiable, pruning disjuncts subsumed
    /// in either direction (syntactic check only — see
    /// [`LinTuple::subsumes_syntactic`]). Equal tuples subsume each other,
    /// so this also deduplicates.
    pub fn insert_satisfiable(&mut self, t: LinTuple) {
        debug_assert_eq!(t.arity(), self.arity);
        if self.tuples.iter().any(|u| u.subsumes_syntactic(&t)) {
            return;
        }
        self.tuples.retain(|u| !t.subsumes_syntactic(u));
        self.tuples.push(t);
    }

    /// Point membership.
    pub fn contains_point(&self, point: &[Rational]) -> bool {
        self.tuples.iter().any(|t| t.contains_point(point))
    }

    /// Union.
    pub fn union(&self, other: &LinRelation) -> LinRelation {
        assert_eq!(self.arity, other.arity);
        let mut r = self.clone();
        for t in &other.tuples {
            r.insert(t.clone());
        }
        r
    }

    /// Intersection. The pairwise conjoin-prune-decide work runs in
    /// parallel over `self`'s disjuncts when the pair count clears the
    /// configured threshold; the subsumption merge stays sequential and
    /// order-preserving.
    pub fn intersect(&self, other: &LinRelation) -> LinRelation {
        assert_eq!(self.arity, other.arity);
        let pairs = self.tuples.len().saturating_mul(other.tuples.len());
        let chunks = par_map_when(should_parallelize(pairs), &self.tuples, |a| {
            let prune = eval_config().prune_boxes;
            other
                .tuples
                .iter()
                // Box-disjoint pairs conjoin to an unsatisfiable tuple the
                // downstream filter would discard anyway; skip them before
                // paying for conjoin + Fourier–Motzkin.
                .filter(|b| !prune || !a.box_disjoint(b))
                .map(|b| a.conjoin(b).pruned())
                .filter(|t| t.is_satisfiable())
                .collect::<Vec<_>>()
        });
        let mut r = LinRelation::empty(self.arity);
        for t in chunks.into_iter().flatten() {
            r.insert_satisfiable(t);
        }
        r
    }

    /// Complement via incremental negation-distribution with satisfiability
    /// pruning (the linear counterpart of the dense-order complement).
    pub fn complement(&self) -> LinRelation {
        let mut acc: Vec<LinTuple> = vec![LinTuple::top(self.arity)];
        for t in &self.tuples {
            if t.is_empty() {
                return LinRelation::empty(self.arity);
            }
            let alts: Vec<LinAtom> = t.atoms().iter().flat_map(|a| a.negate()).collect();
            // Parallel distribution with satisfiability filtering, then a
            // sequential order-preserving subsumption merge (which also
            // deduplicates).
            let work = acc.len().saturating_mul(alts.len());
            let sat_cands = par_map_when(should_parallelize(work), &acc, |partial| {
                alts.iter()
                    .filter_map(|alt| {
                        let mut cand = partial.clone();
                        cand.push(alt.clone());
                        let cand = cand.pruned();
                        cand.is_satisfiable().then_some(cand)
                    })
                    .collect::<Vec<_>>()
            });
            let mut next: Vec<LinTuple> = Vec::new();
            for cand in sat_cands.into_iter().flatten() {
                if next.iter().any(|u| u.subsumes_syntactic(&cand)) {
                    continue;
                }
                next.retain(|u| !cand.subsumes_syntactic(u));
                next.push(cand);
            }
            acc = next;
            if acc.is_empty() {
                break;
            }
        }
        LinRelation {
            arity: self.arity,
            tuples: acc,
        }
    }

    /// Difference.
    pub fn difference(&self, other: &LinRelation) -> LinRelation {
        self.intersect(&other.complement())
    }

    /// Existential projection of one column (Fourier–Motzkin per disjunct;
    /// `∃` distributes over `∨`, so disjuncts eliminate independently and
    /// in parallel).
    pub fn project_out(&self, j: usize) -> LinRelation {
        let eliminated = par_map(&self.tuples, |t| {
            t.eliminate(j).filter(|e| e.is_satisfiable())
        });
        let mut r = LinRelation::empty(self.arity);
        for e in eliminated.into_iter().flatten() {
            r.insert_satisfiable(e);
        }
        r
    }

    /// Widen to a larger arity.
    pub fn widen(&self, new_arity: u32) -> LinRelation {
        LinRelation {
            arity: new_arity,
            tuples: self.tuples.iter().map(|t| t.widen(new_arity)).collect(),
        }
    }

    /// Rename columns into a target arity.
    pub fn rename(&self, new_arity: u32, f: impl Fn(u32) -> u32 + Copy) -> LinRelation {
        LinRelation::from_tuples(
            new_arity,
            self.tuples.iter().map(|t| t.rename(new_arity, f)),
        )
    }

    /// Drop trailing columns (which must be unconstrained — i.e. zero
    /// coefficients everywhere).
    pub fn narrow(&self, new_arity: u32) -> LinRelation {
        assert!(new_arity <= self.arity);
        let mut out = LinRelation::empty(new_arity);
        for t in &self.tuples {
            let atoms: Vec<LinAtom> = t
                .atoms()
                .iter()
                .map(|a| {
                    for j in new_arity as usize..self.arity as usize {
                        assert!(!a.mentions(j), "narrow would drop constrained column {j}");
                    }
                    a.rename(new_arity, |i| i)
                })
                .collect();
            out.insert(LinTuple::from_atoms(new_arity, atoms));
        }
        out
    }

    /// Inclusion `self ⊆ other`: syntactic single-disjunct cover first,
    /// complement-based refutation only for the leftover disjuncts.
    pub fn is_subset(&self, other: &LinRelation) -> bool {
        let leftover: Vec<LinTuple> = self
            .tuples
            .iter()
            .filter(|t| !other.tuples.iter().any(|u| u.subsumes_syntactic(t)))
            .cloned()
            .collect();
        if leftover.is_empty() {
            return true;
        }
        let rest = LinRelation {
            arity: self.arity,
            tuples: leftover,
        };
        rest.difference(other).is_empty()
    }

    /// Semantic equivalence.
    pub fn equivalent(&self, other: &LinRelation) -> bool {
        self.is_subset(other) && other.is_subset(self)
    }

    /// Convert a dense-order relation into linear form (always possible).
    pub fn from_dense(rel: &GeneralizedRelation) -> LinRelation {
        let arity = rel.arity();
        let term_expr = |t: &Term, coeffs: &mut Vec<Rational>, k: &mut Rational, sign: i64| match t
        {
            Term::Var(v) => {
                let c = coeffs[v.index()] + Rational::from_int(sign);
                coeffs[v.index()] = c;
            }
            Term::Const(c) => {
                *k = *k + (c * &Rational::from_int(sign));
            }
        };
        let mut out = LinRelation::empty(arity);
        for t in rel.tuples() {
            let mut atoms = Vec::new();
            for a in t.atoms() {
                // lhs - rhs (op) 0
                let mut coeffs = vec![Rational::ZERO; arity as usize];
                let mut k = Rational::ZERO;
                let (lhs, rhs) = (a.lhs(), a.rhs());
                term_expr(&lhs, &mut coeffs, &mut k, 1);
                term_expr(&rhs, &mut coeffs, &mut k, -1);
                match LinAtom::normalize(coeffs, k, a.op()) {
                    NormalizedAtom::True => {}
                    NormalizedAtom::False => {
                        atoms.clear();
                        break;
                    }
                    NormalizedAtom::Atom(la) => atoms.push(la),
                }
            }
            out.insert(LinTuple::from_atoms(arity, atoms));
        }
        out
    }

    /// Convert to a dense-order relation, if every atom is an order atom
    /// (coefficients in {0, ±1}, at most one variable per side). Returns
    /// `None` when genuine arithmetic is present.
    pub fn to_dense(&self) -> Option<GeneralizedRelation> {
        let mut out = GeneralizedRelation::empty(self.arity);
        for t in &self.tuples {
            let mut atoms: Vec<Atom> = Vec::new();
            for a in t.atoms() {
                if !a.is_order_atom() {
                    return None;
                }
                let nz: Vec<(usize, &Rational)> = a
                    .coeffs()
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !c.is_zero())
                    .collect();
                let (lhs, rhs) = match nz.as_slice() {
                    [(i, c)] => {
                        // c·x_i + k (op) 0
                        if c.is_positive() {
                            // x_i op -k
                            (Term::var(*i as u32), Term::Const(-*a.constant()))
                        } else {
                            // -x_i + k op 0 → k op x_i... careful with Eq
                            (Term::Const(*a.constant()), Term::var(*i as u32))
                        }
                    }
                    [(i, ci), (j, _)] => {
                        if ci.is_positive() {
                            (Term::var(*i as u32), Term::var(*j as u32))
                        } else {
                            (Term::var(*j as u32), Term::var(*i as u32))
                        }
                    }
                    _ => return None,
                };
                match Atom::normalized(lhs, a.op(), rhs) {
                    None => {
                        atoms.clear();
                        break;
                    }
                    Some(v) => atoms.extend(v),
                }
            }
            out.insert(GeneralizedTuple::from_atoms(self.arity, atoms));
        }
        Some(out)
    }
}

impl fmt::Display for LinRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.tuples.is_empty() {
            return write!(f, "⊥/{}", self.arity);
        }
        let parts: Vec<String> = self.tuples.iter().map(|t| format!("({t})")).collect();
        write!(f, "{}", parts.join(" | "))
    }
}

// Re-export Var for callers that index columns.
pub use dco_core::prelude::Var as Column;

#[cfg(test)]
mod tests {
    use super::*;
    use dco_core::prelude::{rat, CompOp, RawAtom, RawOp};

    fn atom(coeffs: &[i64], k: i64, op: CompOp) -> LinAtom {
        LinAtom::new(
            coeffs.iter().map(|&c| rat(c as i128, 1)).collect(),
            rat(k as i128, 1),
            op,
        )
    }

    fn pt(v: &[i64]) -> Vec<Rational> {
        v.iter().map(|&x| rat(x as i128, 1)).collect()
    }

    fn halfplane() -> LinRelation {
        // x + y <= 1
        LinRelation::from_tuples(
            2,
            vec![LinTuple::from_atoms(2, vec![atom(&[1, 1], -1, CompOp::Le)])],
        )
    }

    #[test]
    fn complement_of_halfplane() {
        let h = halfplane();
        let c = h.complement();
        assert!(c.contains_point(&pt(&[1, 1])));
        assert!(!c.contains_point(&pt(&[0, 0])));
        assert!(c.complement().equivalent(&h));
    }

    #[test]
    fn projection_of_simplex() {
        // x >= 0, y >= 0, x + y <= 1; project y: [0, 1]
        let s = LinRelation::from_tuples(
            2,
            vec![LinTuple::from_atoms(
                2,
                vec![
                    atom(&[-1, 0], 0, CompOp::Le),
                    atom(&[0, -1], 0, CompOp::Le),
                    atom(&[1, 1], -1, CompOp::Le),
                ],
            )],
        );
        let p = s.project_out(1);
        assert!(p.contains_point(&pt(&[1, 99])));
        assert!(!p.contains_point(&pt(&[2, 0])));
    }

    #[test]
    fn inclusion_and_equivalence() {
        // {x+y <= 1} ⊆ {x+y <= 2}
        let small = halfplane();
        let big = LinRelation::from_tuples(
            2,
            vec![LinTuple::from_atoms(2, vec![atom(&[1, 1], -2, CompOp::Le)])],
        );
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
    }

    #[test]
    fn dense_roundtrip() {
        let tri = GeneralizedRelation::from_raw(
            2,
            vec![
                RawAtom::new(Term::cst(rat(0, 1)), RawOp::Le, Term::var(0)),
                RawAtom::new(Term::var(0), RawOp::Le, Term::var(1)),
                RawAtom::new(Term::var(1), RawOp::Le, Term::cst(rat(10, 1))),
            ],
        );
        let lin = LinRelation::from_dense(&tri);
        assert!(lin.contains_point(&pt(&[1, 2])));
        assert!(!lin.contains_point(&pt(&[2, 1])));
        let back = lin.to_dense().expect("order fragment");
        assert!(back.equivalent(&tri));
    }

    #[test]
    fn to_dense_rejects_arithmetic() {
        let h = halfplane();
        assert!(h.to_dense().is_none());
    }

    #[test]
    fn diagonal_strip_requires_addition() {
        // |x - y| < 1 as two linear atoms; a genuinely linear (non-order) set?
        // x - y < 1 and y - x < 1 — these ARE order-expressible? No: x - y < 1
        // has constant 1 with two variables — not an order atom.
        let strip = LinRelation::from_tuples(
            2,
            vec![LinTuple::from_atoms(
                2,
                vec![
                    atom(&[1, -1], -1, CompOp::Lt),
                    atom(&[-1, 1], -1, CompOp::Lt),
                ],
            )],
        );
        assert!(strip.contains_point(&pt(&[5, 5])));
        assert!(!strip.contains_point(&pt(&[0, 2])));
        assert!(strip.to_dense().is_none());
    }

    #[test]
    fn union_dedup() {
        let a = halfplane();
        let b = halfplane();
        assert_eq!(a.union(&b).len(), 1);
    }
}
